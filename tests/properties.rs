//! Property-based integration tests: random legal configurations, random id
//! workloads, random adversaries — the four renaming properties must hold
//! in every sampled universe.

use opr::prelude::*;
use proptest::prelude::*;

/// Strategy: a legal (n, t) for the given regime, with t ≥ 1 so the
/// adversary is never vacuous.
fn config_for(regime: Regime) -> impl Strategy<Value = (usize, usize)> {
    (1usize..=3).prop_flat_map(move |t| {
        let min_n = SystemConfig::minimal_n(t, regime);
        (min_n..min_n + 6).prop_map(move |n| (n, t))
    })
}

fn adversary_for(regime: Regime) -> impl Strategy<Value = AdversarySpec> {
    let suite: Vec<AdversarySpec> = AdversarySpec::suite(regime).to_vec();
    proptest::sample::select(suite)
}

fn distribution() -> impl Strategy<Value = IdDistribution> {
    proptest::sample::select(IdDistribution::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alg1_log_time_upholds_renaming_properties(
        (n, t) in config_for(Regime::LogTime),
        spec in adversary_for(Regime::LogTime),
        dist in distribution(),
        seed in 0u64..1000,
    ) {
        let cfg = SystemConfig::new(n, t).unwrap();
        let ids = dist.generate(n - t, seed);
        let out = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids)
            .adversary(spec, t)
            .seed(seed)
            .run()
            .unwrap();
        let violations = out.outcome.verify(cfg.namespace_bound(Regime::LogTime));
        prop_assert!(violations.is_empty(), "{spec}/{dist}: {violations:?}");
    }

    #[test]
    fn alg1_constant_time_is_strong(
        (n, t) in config_for(Regime::ConstantTime),
        spec in adversary_for(Regime::ConstantTime),
        dist in distribution(),
        seed in 0u64..1000,
    ) {
        let cfg = SystemConfig::new(n, t).unwrap();
        let ids = dist.generate(n - t, seed);
        let out = RenamingRun::builder(cfg, Regime::ConstantTime)
            .correct_ids(ids)
            .adversary(spec, t)
            .seed(seed)
            .run()
            .unwrap();
        // Strong renaming: the namespace is exactly N (Lemma V.1).
        let violations = out.outcome.verify(n as u64);
        prop_assert!(violations.is_empty(), "{spec}/{dist}: {violations:?}");
        prop_assert_eq!(out.stats.rounds, 8);
    }

    #[test]
    fn two_step_upholds_renaming_properties(
        (n, t) in config_for(Regime::TwoStep),
        spec in adversary_for(Regime::TwoStep),
        dist in distribution(),
        seed in 0u64..1000,
    ) {
        let cfg = SystemConfig::new(n, t).unwrap();
        let ids = dist.generate(n - t, seed);
        let out = RenamingRun::builder(cfg, Regime::TwoStep)
            .correct_ids(ids)
            .adversary(spec, t)
            .seed(seed)
            .run()
            .unwrap();
        let violations = out.outcome.verify((n as u64) * (n as u64));
        prop_assert!(violations.is_empty(), "{spec}/{dist}: {violations:?}");
        prop_assert_eq!(out.stats.rounds, 2);
    }

    #[test]
    fn alg1_namespace_bound_is_n_plus_t_minus_1(
        (n, t) in config_for(Regime::LogTime),
        seed in 0u64..1000,
    ) {
        // Even under the id-forging adversary, no name exceeds N + t − 1
        // (Theorem IV.10's validity property).
        let cfg = SystemConfig::new(n, t).unwrap();
        let ids = IdDistribution::EvenSpaced.generate(n - t, seed);
        let out = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids)
            .adversary(AdversarySpec::IdForge, t)
            .seed(seed)
            .run()
            .unwrap();
        let max = out.stats.max_name.unwrap();
        prop_assert!(max <= (n + t - 1) as i64, "max name {max}");
    }

    #[test]
    fn outcome_checker_catches_planted_inversions(
        names in proptest::collection::btree_set(1i64..100, 2..10),
    ) {
        // Meta-test of the verifier itself: take a valid outcome and swap
        // two names — the checker must flag it.
        let sorted: Vec<i64> = names.into_iter().collect();
        let ids: Vec<OriginalId> =
            (0..sorted.len()).map(|i| OriginalId::new((i as u64 + 1) * 10)).collect();
        let good = RenamingOutcome::new(
            ids.iter().zip(&sorted).map(|(&id, &n)| (id, Some(NewName::new(n)))),
        );
        prop_assert!(good.verify(100).is_empty());
        let mut swapped = sorted.clone();
        swapped.swap(0, sorted.len() - 1);
        let bad = RenamingOutcome::new(
            ids.iter().zip(&swapped).map(|(&id, &n)| (id, Some(NewName::new(n)))),
        );
        prop_assert!(!bad.verify(100).is_empty());
    }
}
