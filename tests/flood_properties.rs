//! Property tests of the id-selection substrate and the voting core under
//! randomized Byzantine behaviour — the invariants behind Lemmas IV.1–IV.3
//! must hold for *arbitrary* (not only scripted) faulty messages.

use opr::core::ranks::{approximate, RankVector};
use opr::core::runner::{run_alg1, Alg1Options};
use opr::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn rank_vector(ids: &[u64], values: &[f64]) -> RankVector {
    ids.iter()
        .zip(values)
        .map(|(&id, &v)| (OriginalId::new(id), Rank::new(v)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Algorithm 3's output for every id stays inside the convex hull of
    /// the votes that survive trimming — hence inside the correct votes'
    /// hull whenever at most t are Byzantine (the DLPSW guarantee lifted to
    /// the per-id vector setting).
    #[test]
    fn approximate_outputs_stay_in_vote_hull(
        correct_values in proptest::collection::vec(0.0f64..100.0, 5..9),
        byz_value in -1e6f64..1e6,
    ) {
        let t = 1usize;
        let n = correct_values.len() + t;
        prop_assume!(n > 3 * t);
        let id = 7u64;
        let accepted: BTreeSet<OriginalId> = [OriginalId::new(id)].into();
        let mine = rank_vector(&[id], &correct_values[..1]);
        let mut votes: Vec<RankVector> = correct_values
            .iter()
            .map(|&v| rank_vector(&[id], &[v]))
            .collect();
        votes.push(rank_vector(&[id], &[byz_value]));
        let (new_ranks, _) = approximate(&mine, &accepted, &votes, n, t);
        let out = new_ranks.get(OriginalId::new(id)).unwrap().value();
        let lo = correct_values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = correct_values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(out >= lo - 1e-9 && out <= hi + 1e-9, "{out} outside [{lo}, {hi}]");
    }

    /// Vote order must not matter: approximate is a function of the vote
    /// *multiset*.
    #[test]
    fn approximate_is_permutation_invariant(
        values in proptest::collection::vec(0.0f64..50.0, 4..8),
        swap_a in 0usize..8,
        swap_b in 0usize..8,
    ) {
        let t = 1usize;
        let n = values.len();
        prop_assume!(n > 3 * t);
        let id = 3u64;
        let accepted: BTreeSet<OriginalId> = [OriginalId::new(id)].into();
        let mine = rank_vector(&[id], &values[..1]);
        let votes: Vec<RankVector> =
            values.iter().map(|&v| rank_vector(&[id], &[v])).collect();
        let mut shuffled = votes.clone();
        shuffled.swap(swap_a % n, swap_b % n);
        let (a, _) = approximate(&mine, &accepted, &votes, n, t);
        let (b, _) = approximate(&mine, &accepted, &shuffled, n, t);
        prop_assert_eq!(a, b);
    }

    /// Unanimous votes are a fixed point — the foundation of the
    /// early-output rule.
    #[test]
    fn approximate_fixed_point_on_unanimous_votes(
        raw_ids in proptest::collection::btree_set(1u64..1000, 2..8),
        t in 1usize..3,
    ) {
        let ids: Vec<u64> = raw_ids.into_iter().collect();
        let n = 3 * t + ids.len();
        let accepted: BTreeSet<OriginalId> =
            ids.iter().map(|&i| OriginalId::new(i)).collect();
        let delta = 1.0 + 1.0 / (3.0 * n as f64);
        let mine = RankVector::from_accepted(&accepted, delta);
        let votes: Vec<RankVector> = (0..n - t).map(|_| mine.clone()).collect();
        let (new_ranks, new_accepted) = approximate(&mine, &accepted, &votes, n, t);
        prop_assert_eq!(new_accepted, accepted);
        for (id, rank) in new_ranks.iter() {
            prop_assert!(rank.distance(mine.get(id).unwrap()) < 1e-12);
        }
    }

    /// The full protocol under a *randomly chosen* adversary and fault
    /// count must uphold the containment structure of Lemmas IV.1/IV.2,
    /// not just the outcome properties.
    #[test]
    fn containment_invariants_hold_under_random_adversaries(
        spec_idx in 0usize..9,
        faulty in 1usize..3,
        seed in 0u64..500,
    ) {
        let cfg = SystemConfig::new(10, 3).unwrap();
        let spec = AdversarySpec::ALG1[spec_idx % AdversarySpec::ALG1.len()];
        let ids = IdDistribution::SparseRandom.generate(10 - faulty, seed);
        let result = run_alg1(
            cfg,
            Regime::LogTime,
            &ids,
            faulty,
            |env| spec.build_alg1(env),
            Alg1Options { seed, ..Alg1Options::default() },
        ).unwrap();
        prop_assert_eq!(result.probe.containment_violations(), 0, "{}", spec);
        // Every correct id is timely everywhere.
        for p in &result.probe.processes {
            let first = p.snapshots.first().unwrap();
            for id in &ids {
                prop_assert!(first.timely.contains(id));
            }
            // And the accepted bound holds at every snapshot.
            for snap in &p.snapshots {
                prop_assert!(snap.accepted.len() <= cfg.accepted_bound());
            }
        }
    }

    /// In the constant-time (strong) regime the accepted sets never exceed
    /// N (Lemma V.1's capacity argument), under any suite adversary.
    #[test]
    fn strong_regime_accepted_sets_never_exceed_n(
        spec_idx in 0usize..9,
        seed in 0u64..200,
    ) {
        let cfg = SystemConfig::new(16, 3).unwrap();
        let spec = AdversarySpec::ALG1[spec_idx % AdversarySpec::ALG1.len()];
        let ids = IdDistribution::EvenSpaced.generate(13, seed);
        let result = run_alg1(
            cfg,
            Regime::ConstantTime,
            &ids,
            3,
            |env| spec.build_alg1(env),
            Alg1Options { seed, ..Alg1Options::default() },
        ).unwrap();
        for size in result.probe.accepted_sizes() {
            prop_assert!(size <= 16, "{}: accepted {} > N", spec, size);
        }
        prop_assert!(result.outcome.verify(16).is_empty());
    }
}
