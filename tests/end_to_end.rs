//! End-to-end integration: every regime × adversary × id layout, through
//! the public facade.

use opr::prelude::*;

fn check(cfg: SystemConfig, regime: Regime, spec: AdversarySpec, dist: IdDistribution, seed: u64) {
    let ids = dist.generate(cfg.n() - cfg.t(), seed + 1);
    let out = RenamingRun::builder(cfg, regime)
        .correct_ids(ids)
        .adversary(spec, cfg.t())
        .seed(seed)
        .run()
        .unwrap_or_else(|e| panic!("{regime:?}/{spec}/{dist}: {e}"));
    let violations = out.outcome.verify(cfg.namespace_bound(regime));
    assert!(
        violations.is_empty(),
        "{regime:?}/{spec}/{dist} seed {seed}: {violations:?}"
    );
    assert_eq!(out.stats.rounds, cfg.total_steps(regime));
}

#[test]
fn log_time_regime_full_matrix() {
    let cfg = SystemConfig::new(7, 2).unwrap();
    for spec in AdversarySpec::ALG1 {
        for dist in IdDistribution::ALL {
            check(cfg, Regime::LogTime, spec, dist, 3);
        }
    }
}

#[test]
fn constant_time_regime_full_matrix() {
    let cfg = SystemConfig::new(16, 3).unwrap();
    for spec in AdversarySpec::ALG1 {
        for dist in [IdDistribution::EvenSpaced, IdDistribution::SparseRandom] {
            check(cfg, Regime::ConstantTime, spec, dist, 5);
        }
    }
}

#[test]
fn two_step_regime_full_matrix() {
    let cfg = SystemConfig::new(11, 2).unwrap();
    for spec in AdversarySpec::TWO_STEP {
        for dist in IdDistribution::ALL {
            check(cfg, Regime::TwoStep, spec, dist, 7);
        }
    }
}

#[test]
fn minimal_resilience_configurations() {
    // The tightest N for each regime, under the hardest applicable attack.
    for t in 1..=3usize {
        let cfg = SystemConfig::new(3 * t + 1, t).unwrap();
        check(
            cfg,
            Regime::LogTime,
            AdversarySpec::EchoSplit,
            IdDistribution::EvenSpaced,
            11,
        );
        check(
            cfg,
            Regime::LogTime,
            AdversarySpec::RankSkew,
            IdDistribution::EvenSpaced,
            11,
        );

        let cfg = SystemConfig::new(t * t + 2 * t + 1, t).unwrap();
        check(
            cfg,
            Regime::ConstantTime,
            AdversarySpec::RankSkew,
            IdDistribution::EvenSpaced,
            11,
        );

        let cfg = SystemConfig::new(2 * t * t + t + 1, t).unwrap();
        check(
            cfg,
            Regime::TwoStep,
            AdversarySpec::FakeFlood,
            IdDistribution::EvenSpaced,
            11,
        );
    }
}

#[test]
fn fewer_faulty_actors_than_t_is_fine() {
    // t bounds the faults; actual faults f < t must also work (and f = 0).
    let cfg = SystemConfig::new(10, 3).unwrap();
    for f in 0..=3usize {
        let ids = IdDistribution::SparseRandom.generate(10 - f, 13);
        let out = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids)
            .adversary(AdversarySpec::IdForge, f)
            .seed(1)
            .run()
            .unwrap();
        assert_eq!(out.stats.violations, 0, "f={f}");
    }
}

#[test]
fn seeds_change_topology_but_never_outcome_properties() {
    let cfg = SystemConfig::new(10, 3).unwrap();
    let ids = IdDistribution::Clustered.generate(7, 2);
    for seed in 0..20u64 {
        let out = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids.clone())
            .adversary(AdversarySpec::EchoSplit, 3)
            .seed(seed)
            .run()
            .unwrap();
        assert_eq!(out.stats.violations, 0, "seed {seed}");
    }
}

#[test]
fn identical_runs_are_bit_identical() {
    let cfg = SystemConfig::new(7, 2).unwrap();
    let ids = IdDistribution::SparseRandom.generate(5, 8);
    let run = || {
        RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids.clone())
            .adversary(AdversarySpec::RandomNoise, 2)
            .seed(77)
            .run()
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.outcome, b.outcome, "determinism is part of the contract");
    assert_eq!(a.stats.messages, b.stats.messages);
    assert_eq!(a.stats.bits, b.stats.bits);
}

#[test]
fn large_system_smoke() {
    // N = 64, t = 10 — a larger run exercising the full pipeline.
    let cfg = SystemConfig::new(64, 10).unwrap();
    let ids = IdDistribution::SparseRandom.generate(54, 4);
    let out = RenamingRun::builder(cfg, Regime::LogTime)
        .correct_ids(ids)
        .adversary(AdversarySpec::RankSkew, 10)
        .seed(1)
        .run()
        .unwrap();
    assert_eq!(out.stats.violations, 0);
    assert_eq!(out.stats.rounds, cfg.total_steps(Regime::LogTime));
}
