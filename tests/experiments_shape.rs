//! Shape regression of the experiment tables: the qualitative claims the
//! paper makes (who wins, by what factor, which bounds are tight) must come
//! out of the regenerated tables.

use opr::workload::experiments;

#[test]
fn t1_paper_algorithms_beat_consensus_in_rounds_for_large_t() {
    let table = experiments::t1::run();
    // At t = 4: alg1-log = 13 < b2-consensus = 14; alg4 = 2 beats all.
    let mut alg1_t4 = None;
    let mut b2_t4 = None;
    for row in &table.rows {
        if row[0] == "4" && row[1] == "alg1-log" {
            alg1_t4 = Some(row[3].parse::<u32>().unwrap());
        }
        if row[0] == "4" && row[1] == "b2-consensus" {
            b2_t4 = Some(row[3].parse::<u32>().unwrap());
        }
    }
    assert!(alg1_t4.unwrap() < b2_t4.unwrap());
}

#[test]
fn t1_log_schedule_grows_logarithmically() {
    let table = experiments::t1::run();
    let alg1: Vec<u32> = table
        .rows
        .iter()
        .filter(|r| r[1] == "alg1-log")
        .map(|r| r[3].parse().unwrap())
        .collect();
    // t = 1, 2, 3, 4 → 7, 10, 13, 13: plateaus between powers of two.
    assert_eq!(alg1, vec![7, 10, 13, 13]);
}

#[test]
fn t2_bounds_hold_with_the_paper_ordering() {
    let table = experiments::t2::run();
    let get = |alg: &str, col: usize| -> i64 {
        table
            .rows
            .iter()
            .find(|r| r[0] == alg)
            .unwrap_or_else(|| panic!("{alg} missing"))[col]
            .parse()
            .unwrap()
    };
    // Strong renaming is tight; the general algorithm may exceed N but not
    // N + t − 1; the 2-step pays quadratically (bound column).
    assert!(get("alg1-const", 4) == 16);
    assert!(get("alg1-log", 4) == 12);
    assert!(get("alg4-2step", 4) == 121);
}

#[test]
fn t5_legal_side_of_the_boundary_is_clean() {
    let table = experiments::t5::run();
    for row in &table.rows {
        if row[2] == "true" {
            assert_eq!(row[4], "0", "violations at legal config: {row:?}");
        }
    }
}

#[test]
fn f1_converges_below_rounding_threshold() {
    let table = experiments::f1::run();
    let last = table.rows.last().unwrap();
    let spread: f64 = last[1].parse().unwrap();
    assert!(spread < 1.0 / (6.0 * 17.0));
    // And the series must contract from its start.
    let first: f64 = table.rows[0][1].parse().unwrap();
    assert!(spread < first || first == 0.0);
}

#[test]
fn f3_gap_grows_with_t() {
    let table = experiments::f3::run();
    let gaps: Vec<i64> = table
        .rows
        .iter()
        .map(|r| r[3].parse::<i64>().unwrap() - r[2].parse::<i64>().unwrap())
        .collect();
    assert!(gaps.last().unwrap() > gaps.first().unwrap());
}

#[test]
fn f4_discrepancy_under_quadratic_bound() {
    let table = experiments::f4::run();
    for row in &table.rows {
        let delta: i64 = row[2].parse().unwrap();
        let bound: i64 = row[3].parse().unwrap();
        assert!(delta <= bound, "t={}", row[0]);
    }
}
