//! The service soak gate: a seeded 1000-epoch run with recycling across 4
//! shards must complete oracle-clean and be bit-identical across worker
//! counts and execution backends.
//!
//! This is the acceptance gate for the service layer: within-epoch
//! uniqueness/order/namespace discipline plus cross-epoch uniqueness over
//! thousands of protocol instances, with names cycling through the shard
//! pools the whole time, and `jobs`/backend demoted to pure execution
//! strategy (the `ServiceReport` — ledger included — is compared with
//! `==`).

use opr::prelude::*;
use opr::service::{judge_ledger, ServiceConfig, ServiceSpec};
use opr::types::Regime;

/// The soak spec: 4 shards, `(N, t) = (7, 2)` log-time instances with 2
/// silent Byzantine actors each, 16 arrivals per epoch over a 4000-client
/// universe (clients wrap, so returning clients re-acquire after releasing)
/// and holds of 1–3 epochs, so the pools recycle constantly.
fn soak_spec(epochs: u64, backend: BackendKind, jobs: usize) -> ServiceSpec {
    ServiceSpec {
        service: ServiceConfig {
            shards: 4,
            epoch_cfg: SystemConfig::new(7, 2).unwrap(),
            regime: Regime::LogTime,
            byzantine: 2,
            adversary: AdversarySpec::Silent,
            backend,
            queue_capacity: 64,
            shard_span: 64,
            seed: 0x5eed,
        },
        workload: ServiceWorkload {
            clients: 4000,
            epochs,
            arrivals_per_epoch: 16,
            max_hold: 3,
            seed: 7,
        },
        jobs,
    }
}

#[test]
fn thousand_epoch_soak_is_oracle_clean_and_recycles() {
    let spec = soak_spec(1000, BackendKind::Sim, 1);
    let report = spec.run().unwrap();
    assert_eq!(report.epochs, 1000);
    let violations = judge_ledger(&spec.service, &report.ledger);
    assert!(violations.is_empty(), "{violations:?}");
    // The run actually exercised the service: a healthy majority of the
    // open-loop demand was granted, names were released back, and the
    // pools re-issued previously-used names.
    assert!(report.grants > 10_000, "grants = {}", report.grants);
    assert!(report.releases > 5_000, "releases = {}", report.releases);
    assert!(report.recycled > 1_000, "recycled = {}", report.recycled);
    // All four shards served grants.
    for shard in 0..spec.service.shards {
        assert!(
            report.ledger.iter().any(|e| match e {
                opr::service::LedgerEvent::Grant(g) => g.shard == shard,
                _ => false,
            }),
            "shard {shard} never granted"
        );
    }
}

#[test]
fn soak_report_is_bit_identical_across_jobs_and_backends() {
    // Full 1000 epochs on the simulator across worker counts; the threaded
    // backend (7 OS threads per instance, thousands of instances) runs a
    // shorter schedule to keep the suite CI-sized — the backends' per-run
    // equivalence is already property-gated in `service_reduction.rs`.
    let reference = soak_spec(1000, BackendKind::Sim, 1).run().unwrap();
    let parallel = soak_spec(1000, BackendKind::Sim, 4).run().unwrap();
    assert_eq!(reference, parallel, "jobs must be unobservable");

    let short_sim = soak_spec(120, BackendKind::Sim, 1).run().unwrap();
    for (backend, jobs) in [
        (BackendKind::Sim, 4),
        (BackendKind::Threaded, 1),
        (BackendKind::Threaded, 4),
    ] {
        let other = soak_spec(120, backend, jobs).run().unwrap();
        assert_eq!(
            short_sim, other,
            "backend {backend:?} jobs {jobs} diverged from the sim reference"
        );
    }
}
