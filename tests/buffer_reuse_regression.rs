//! Pins that sim-network round-buffer reuse changes zero observable
//! behaviour.
//!
//! `tests/data/chaos-repro.json` is a stored chaos reproducer (captured via
//! `chaos --self-test`), and `tests/data/chaos-repro.trace` is the full
//! rendering of its replay — every delivery event the network performed,
//! plus the diagnosis, metrics and verdict digest — recorded *before* the
//! network started reusing its per-round inbox/outbox buffers. Replaying
//! the repro now must reproduce that file byte-for-byte on both backends:
//! buffer reuse is an allocation strategy, not a semantic change, and this
//! gate is what makes that claim checkable instead of asserted.
//!
//! To re-bless after an *intentional* observable change (message format,
//! delivery order, metrics definition), run with `BLESS_TRACE=1` and commit
//! the regenerated golden file.

use opr::chaos::engine::{execute_schedule, judge_executed};
use opr::chaos::{standard_suite, Repro};
use opr::transport::BackendKind;
use opr::workload::DiagnosedRun;
use std::fmt::Write as _;

const REPRO: &str = include_str!("data/chaos-repro.json");
const GOLDEN_PATH: &str = "tests/data/chaos-repro.trace";
const TRACE_CAPACITY: usize = 1 << 20;

/// Renders everything observable about a traced replay, one stable line at
/// a time, so a diff of golden vs current reads like a protocol log.
fn render(backend: BackendKind, run: &DiagnosedRun) -> String {
    let mut out = String::new();
    let trace = run.trace.as_ref().expect("trace requested");
    writeln!(out, "# backend={backend:?}").unwrap();
    writeln!(
        out,
        "# rounds={} digest={}",
        run.rounds,
        run.degraded.digest()
    )
    .unwrap();
    writeln!(
        out,
        "# messages={} bits={} max_message_bits={}",
        run.metrics.messages_correct(),
        run.metrics.bits_correct(),
        run.metrics.max_message_bits()
    )
    .unwrap();
    writeln!(
        out,
        "# malformed={} excluded={} effective_faults={}",
        run.malformed.len(),
        run.excluded.len(),
        run.effective_faults()
    )
    .unwrap();
    writeln!(
        out,
        "# events={} dropped={}",
        trace.events().len(),
        trace.dropped()
    )
    .unwrap();
    for event in trace.events() {
        writeln!(out, "{event}").unwrap();
    }
    out
}

fn replay_rendering() -> String {
    let repro = Repro::from_json(REPRO).expect("stored repro must parse");
    let mut out = String::new();
    for backend in BackendKind::ALL {
        let run = repro
            .schedule
            .run_traced(backend, TRACE_CAPACITY)
            .expect("stored repro must replay");
        out.push_str(&render(backend, &run));
    }
    out
}

#[test]
fn replayed_repro_trace_matches_the_pre_reuse_golden_file() {
    let current = replay_rendering();
    if std::env::var_os("BLESS_TRACE").is_some() {
        std::fs::write(GOLDEN_PATH, &current).expect("write golden trace");
        return;
    }
    let golden = include_str!("data/chaos-repro.trace");
    assert_eq!(
        golden, current,
        "replayed delivery stream diverged from the golden trace \
         (if the change was intentional, re-bless with BLESS_TRACE=1)"
    );
}

/// The repro's verdict digest is part of the pinned surface too: replaying
/// through the normal (untraced) engine path must keep reproducing the
/// recorded failure.
#[test]
fn replayed_repro_keeps_its_recorded_digest() {
    let repro = Repro::from_json(REPRO).expect("stored repro must parse");
    let oracles = standard_suite();
    let verdict = match execute_schedule(&repro.schedule, repro.backend) {
        Ok(run) => judge_executed(&repro.schedule, repro.backend, &run, &oracles),
        Err(verdict) => verdict,
    };
    let digest = verdict.digest();
    assert!(
        digest
            .split('+')
            .any(|kind| repro.digest.split('+').any(|k| k == kind)),
        "replay digest '{digest}' shares no kind with recorded '{}'",
        repro.digest
    );
}

/// Tracing itself must be an observer, not a participant: the traced and
/// untraced replays of the same schedule agree on every judged observable.
#[test]
fn tracing_does_not_perturb_the_replay() {
    let repro = Repro::from_json(REPRO).expect("stored repro must parse");
    let (reference, _) = repro.backend.backends();
    let traced = repro
        .schedule
        .run_traced(reference, TRACE_CAPACITY)
        .expect("replay");
    let untraced = repro.schedule.run_on(reference).expect("replay");
    assert!(untraced.trace.is_none());
    assert_eq!(untraced.degraded, traced.degraded);
    assert_eq!(untraced.full_outcome, traced.full_outcome);
    assert_eq!(untraced.metrics, traced.metrics);
    assert_eq!(untraced.malformed, traced.malformed);
}
