//! Acceptance gates of the guided adversary search:
//!
//! * the search is a pure function of its seed — bit-identical outcome
//!   across worker counts and across backends,
//! * guided beats (or ties) the unguided random baseline at an equal
//!   evaluation budget,
//! * every committed `tests/data/worst-*.json` regression seed replays
//!   green with its recorded digest *and* fitness, on both backends,
//! * emitted top-K repros round-trip through JSON and replay
//!   bit-identically,
//! * a search-found schedule still shrinks.

use opr::chaos::engine::judge_schedule;
use opr::chaos::{
    evaluate, random_search_on, repro_for, run_search_on, shrink, standard_suite, BackendChoice,
    BudgetRegime, FitnessKind, Repro, SearchConfig,
};
use opr::exec::RunPool;

/// The fixed configuration the gates below pin. Small enough for CI,
/// large enough that guided selection has generations to work with.
fn gate_config() -> SearchConfig {
    SearchConfig {
        seed: 42,
        budget: BudgetRegime::AtBudget,
        backend: BackendChoice::Sim,
        fitness: FitnessKind::Margin,
        beam: 3,
        generations: 4,
        evals: 48,
        init: 12,
        top_k: 3,
        jobs: 1,
    }
}

#[test]
fn search_outcome_is_identical_across_worker_counts() {
    let config = gate_config();
    let serial = run_search_on(&RunPool::new(1), &config);
    let parallel = run_search_on(&RunPool::new(4), &config);
    assert_eq!(
        serial.outcome, parallel.outcome,
        "jobs must only change wall-clock time"
    );
}

#[test]
fn search_outcome_is_identical_across_backends() {
    // Every fitness signal is a function of backend-invariant observables,
    // so the whole trajectory — selection included — must match.
    let pool = RunPool::new(2);
    let sim = run_search_on(&pool, &gate_config());
    let threaded = run_search_on(
        &pool,
        &SearchConfig {
            backend: BackendChoice::Threaded,
            ..gate_config()
        },
    );
    assert_eq!(sim.outcome, threaded.outcome);
}

#[test]
fn guided_search_beats_random_at_equal_eval_budget() {
    let config = gate_config();
    let pool = RunPool::new(2);
    let guided = run_search_on(&pool, &config);
    let random = random_search_on(&pool, &config);
    assert_eq!(
        guided.outcome.evaluated, random.outcome.evaluated,
        "the comparison is only fair at an equal budget"
    );
    let best_guided = guided.best().expect("guided top non-empty").fitness.0;
    let best_random = random.best().expect("random top non-empty").fitness.0;
    assert!(
        best_guided >= best_random,
        "guided ({best_guided}) must not lose to random ({best_random})"
    );
}

#[test]
fn committed_worst_seeds_replay_green_with_exact_fitness() {
    let oracles = standard_suite();
    let mut found = 0;
    for entry in std::fs::read_dir("tests/data").expect("tests/data exists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("worst-") || !name.ends_with(".json") {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).expect("readable seed");
        let repro = Repro::from_json(&text).expect("seed parses");
        // The digest reproduces and is green: these are regression seeds
        // pinning near-misses, not failures.
        let verdict = repro.replay(&oracles);
        assert_eq!(verdict.digest(), repro.digest, "{name}: digest drifted");
        assert!(
            !verdict.is_failure(repro.budget),
            "{name}: a committed worst seed must replay green"
        );
        // The recorded fitness reproduces exactly, on every backend.
        let record = repro.fitness.expect("search seeds carry fitness");
        for backend in [
            BackendChoice::Sim,
            BackendChoice::Threaded,
            BackendChoice::Pooled,
        ] {
            let (reference, _) = backend.backends();
            let run = repro
                .schedule
                .run_observed(reference, None)
                .expect("seed replays");
            let got = evaluate(record.kind, &repro.schedule, &run, reference).0;
            assert_eq!(
                got, record.score,
                "{name}: fitness {} drifted on {backend}",
                record.kind
            );
        }
    }
    assert!(found >= 3, "expected ≥ 3 committed worst-*.json seeds");
}

#[test]
fn top_k_repros_round_trip_and_replay_bit_identically() {
    let config = gate_config();
    let report = run_search_on(&RunPool::new(2), &config);
    assert!(!report.outcome.top.is_empty());
    let oracles = standard_suite();
    for (rank, scored) in report.outcome.top.iter().enumerate() {
        let repro = repro_for(&config, rank, scored);
        let reread = Repro::from_json(&repro.to_json()).expect("emitted repro parses");
        assert_eq!(reread, repro, "rank {rank} round-trip must be exact");
        // The recorded digest replays on both backends; bit-equality of
        // the two replays is the cross-backend oracle inside Both.
        let verdict = Repro {
            backend: BackendChoice::Both,
            ..reread.clone()
        }
        .replay(&oracles);
        assert_eq!(
            verdict.digest(),
            scored.digest,
            "rank {rank} digest must replay on both backends"
        );
    }
}

#[test]
fn search_found_schedules_still_shrink() {
    let config = gate_config();
    let report = run_search_on(&RunPool::new(2), &config);
    let best = report.best().expect("non-empty search");
    let oracles = standard_suite();
    // Shrink under "same digest" — the predicate a real triage would use.
    let digest = best.digest.clone();
    let result = shrink(&best.schedule, |candidate| {
        judge_schedule(candidate, config.backend, &oracles).digest() == digest
    });
    assert!(result.events <= result.original_events);
    assert_eq!(
        judge_schedule(&result.schedule, config.backend, &oracles).digest(),
        digest,
        "the shrunk schedule preserves the digest"
    );
}
