//! Gates for the telemetry layer's external artifacts.
//!
//! * The `chaos explain` waterfall for the committed repro file is pinned
//!   byte-for-byte against `tests/data/chaos-explain.golden` — the
//!   waterfall is a pure function of the repro, so any drift is either a
//!   deliberate renderer change (re-bless with `BLESS_EXPLAIN=1`) or a
//!   determinism regression.
//! * Both exporters must emit well-formed JSON: every JSONL line and the
//!   whole Perfetto trace-event document parse with the workspace's strict
//!   JSON reader.
//! * Wall-clock spans stay out of every deterministic artifact.

use opr::chaos::json::Json;
use opr::chaos::{explain_repro, render_waterfall, Repro};
use opr::obs::{render_jsonl, render_trace_json, shared_span_log, RunLog};
use opr::transport::BackendKind;

const REPRO_PATH: &str = "tests/data/chaos-repro.json";
const GOLDEN_PATH: &str = "tests/data/chaos-explain.golden";

fn committed_repro() -> Repro {
    let text = std::fs::read_to_string(REPRO_PATH).expect("committed repro file");
    Repro::from_json(&text).expect("committed repro parses")
}

fn observed_log() -> RunLog {
    committed_repro()
        .schedule
        .run_observed(BackendKind::Sim, None)
        .expect("committed repro replays")
        .events
        .expect("recorder attached")
}

/// The decision waterfall for the committed repro, byte-for-byte.
/// Re-bless after a deliberate renderer change with
/// `BLESS_EXPLAIN=1 cargo test --test observability`.
#[test]
fn explain_waterfall_matches_the_committed_golden() {
    let explained = explain_repro(&committed_repro()).expect("committed repro replays");
    if std::env::var_os("BLESS_EXPLAIN").is_some() {
        std::fs::write(GOLDEN_PATH, &explained.text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file committed (bless with BLESS_EXPLAIN=1)");
    assert_eq!(
        explained.text, golden,
        "waterfall drifted from {GOLDEN_PATH}; re-bless with BLESS_EXPLAIN=1 if deliberate"
    );
}

/// The waterfall is a pure function of (repro, run): rendering twice from
/// independent replays is byte-identical, on either backend.
#[test]
fn explain_waterfall_is_replay_invariant() {
    let repro = committed_repro();
    let render = |backend: BackendKind| {
        let run = repro.schedule.run_observed(backend, None).unwrap();
        render_waterfall(&repro, &run)
    };
    // The header names the reference backend, so compare each backend's
    // rendering against itself across replays; the event sections must
    // also agree across backends (strip the 'replayed:' header line).
    assert_eq!(render(BackendKind::Sim), render(BackendKind::Sim));
    let body = |text: String| -> String {
        text.lines()
            .filter(|line| !line.starts_with("replayed: "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        body(render(BackendKind::Sim)),
        body(render(BackendKind::Threaded))
    );
}

/// Every JSONL line is a standalone JSON object with the envelope fields.
#[test]
fn jsonl_export_is_line_wise_valid_json() {
    let rendered = render_jsonl(&observed_log());
    assert!(!rendered.is_empty());
    assert!(rendered.ends_with('\n'));
    for line in rendered.lines() {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line}: {e}"));
        for key in ["step", "process", "pid", "seq"] {
            assert!(
                doc.get(key).and_then(Json::as_u64).is_some(),
                "missing {key} in {line}"
            );
        }
        assert!(doc.get("kind").and_then(Json::as_str).is_some(), "{line}");
    }
}

/// The Perfetto export is one valid JSON document in trace-event shape:
/// a `traceEvents` array whose entries carry `ph`/`pid`/`name`, protocol
/// instants on pid 1 and (when spans are supplied) wall spans on pid 2.
#[test]
fn perfetto_export_is_valid_trace_event_json() {
    let log = observed_log();
    let spans = shared_span_log();
    spans
        .lock()
        .unwrap()
        .record_since("round 1", std::time::Instant::now());
    let span_vec = spans.lock().unwrap().spans().to_vec();
    let rendered = render_trace_json(&log, Some(&span_vec));
    let doc = Json::parse(&rendered).unwrap_or_else(|e| panic!("bad trace JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut protocol_instants = 0usize;
    let mut wall_spans = 0usize;
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph field");
        let pid = event.get("pid").and_then(Json::as_u64).expect("pid field");
        assert!(event.get("name").and_then(Json::as_str).is_some());
        match ph {
            "M" => assert_eq!(pid, 1, "metadata rides the protocol pid"),
            "i" => {
                assert_eq!(pid, 1, "protocol instants live on pid 1");
                protocol_instants += 1;
            }
            "X" => {
                assert_eq!(pid, 2, "wall spans live on pid 2");
                wall_spans += 1;
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(protocol_instants, log.len());
    assert_eq!(wall_spans, 1);
}

/// The deterministic exports never contain wall-clock material: rendering
/// the same log twice (with a fresh replay in between) is byte-identical.
#[test]
fn deterministic_exports_are_stable_across_replays() {
    let first = observed_log();
    let second = observed_log();
    assert_eq!(render_jsonl(&first), render_jsonl(&second));
    assert_eq!(
        render_trace_json(&first, None),
        render_trace_json(&second, None)
    );
}
