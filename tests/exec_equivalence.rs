//! The determinism-equivalence gate for parallel campaign execution.
//!
//! Every chaos run is a deterministic, share-nothing function of its
//! schedule, so farming runs out to a `RunPool` must be unobservable: a
//! campaign executed with `jobs = 4` must produce a **bit-identical**
//! sequence — same `DiagnosedRun`s, same outcomes, same metrics, in the
//! same submission order — as the serial run of the same seed and budget,
//! on both execution backends. This gate is what licenses `--jobs N` on
//! the chaos, sweep and tables binaries: parallelism is an execution
//! strategy, never an observable.

use opr::chaos::engine::{execute_campaign, per_run_seed, run_campaign};
use opr::chaos::{standard_suite, BackendChoice, BudgetRegime, CampaignConfig};
use opr::exec::RunPool;
use opr::obs::{render_jsonl, RunLog};
use opr::transport::BackendKind;
use proptest::prelude::*;
use proptest::sample::select;

/// The worker count the CI smoke step exercises.
const PARALLEL_JOBS: usize = 4;

fn config(
    seed: u64,
    runs: usize,
    budget: Option<BudgetRegime>,
    backend: BackendChoice,
    jobs: usize,
) -> CampaignConfig {
    CampaignConfig {
        seed,
        runs,
        budget,
        backend,
        jobs,
    }
}

/// Every budget regime, plus `None` (cycle through all three per run).
fn budgets() -> impl Strategy<Value = Option<BudgetRegime>> {
    select(vec![
        None,
        Some(BudgetRegime::InBudget),
        Some(BudgetRegime::AtBudget),
        Some(BudgetRegime::OverBudget),
    ])
}

/// `All` executes the simulator, the threaded backend *and* the pooled
/// backend per schedule, so these two choices cover every backend.
fn backends() -> impl Strategy<Value = BackendChoice> {
    select(vec![BackendChoice::Sim, BackendChoice::All])
}

proptest! {
    // Each case runs the campaign once serially and once on four workers
    // (and `Both` doubles the per-schedule cost), so keep the case count
    // CI-sized; the seed space still varies freely across cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The executed sequence — schedule, seed, budget and the full
    /// `DiagnosedRun` (outcome, metrics, diagnosis) per index — is
    /// bit-identical at any worker count.
    #[test]
    fn parallel_execution_is_bit_identical_to_serial(
        seed in 0u64..u64::MAX,
        runs in 4usize..10,
        budget in budgets(),
        backend in backends(),
    ) {
        let serial = execute_campaign(&config(seed, runs, budget, backend, 1));
        let parallel =
            execute_campaign(&config(seed, runs, budget, backend, PARALLEL_JOBS));
        prop_assert_eq!(serial, parallel);
    }

    /// The judged report is a pure function of the campaign config:
    /// clean/degraded tallies and the exact failure list are independent
    /// of `jobs`.
    #[test]
    fn campaign_reports_are_a_pure_function_of_the_config(
        seed in 0u64..u64::MAX,
        runs in 6usize..12,
        budget in budgets(),
        backend in backends(),
    ) {
        let oracles = standard_suite();
        let serial = run_campaign(&config(seed, runs, budget, backend, 1), &oracles);
        let parallel =
            run_campaign(&config(seed, runs, budget, backend, PARALLEL_JOBS), &oracles);
        prop_assert_eq!(serial.total, parallel.total);
        prop_assert_eq!(serial.clean, parallel.clean);
        prop_assert_eq!(serial.degraded, parallel.degraded);
        prop_assert_eq!(serial.failures, parallel.failures);
        prop_assert_eq!(serial.metrics, parallel.metrics);
    }

    /// The telemetry gate for parallel execution: recording protocol
    /// events on pool workers must be unobservable too. A batch of
    /// recorded runs yields bit-identical `RunLog`s — and byte-identical
    /// JSONL renderings — at one worker and at four.
    #[test]
    fn recorded_event_streams_are_identical_at_any_worker_count(
        seed in 0u64..u64::MAX,
        budget in select(BudgetRegime::ALL.to_vec()),
    ) {
        let schedules: Vec<_> = (0..6)
            .map(|index| opr::chaos::generate_schedule(per_run_seed(seed, index), budget))
            .collect();
        let run_all = |jobs: usize| -> Vec<RunLog> {
            let pool = RunPool::new(jobs);
            let tasks: Vec<_> = schedules
                .iter()
                .map(|schedule| {
                    let schedule = schedule.clone();
                    move || {
                        schedule
                            .run_observed(BackendKind::Sim, None)
                            .expect("chaos schedules are legal by construction")
                            .events
                            .expect("recorder attached")
                    }
                })
                .collect();
            pool.run_batch(tasks)
                .into_iter()
                .map(|slot| slot.expect("recorded runs do not panic"))
                .collect()
        };
        let serial = run_all(1);
        let parallel = run_all(PARALLEL_JOBS);
        prop_assert_eq!(&serial, &parallel);
        let rendered = |logs: &[RunLog]| -> Vec<String> {
            logs.iter().map(render_jsonl).collect()
        };
        prop_assert_eq!(rendered(&serial), rendered(&parallel));
    }

    /// The pooled substrate's *internal* worker pool is unobservable too:
    /// the same chaos schedule executed with the process-default worker
    /// count pinned to 1 and to `PARALLEL_JOBS` yields bit-identical
    /// `DiagnosedRun`s and telemetry. (Worker-count invariance is also a
    /// determinism property, so the global default racing with concurrent
    /// pooled runs in this binary cannot perturb their assertions.)
    #[test]
    fn pooled_substrate_is_bit_identical_across_worker_counts(
        seed in 0u64..100_000,
        budget in select(BudgetRegime::ALL.to_vec()),
    ) {
        use opr::transport::PooledBackend;
        let schedule = opr::chaos::generate_schedule(seed, budget);
        let run = |workers: usize| {
            PooledBackend::set_process_default_workers(workers);
            let observed = schedule
                .run_observed(BackendKind::Pooled, None)
                .expect("chaos schedules are legal by construction");
            PooledBackend::set_process_default_workers(0);
            observed
        };
        let one = run(1);
        let four = run(PARALLEL_JOBS);
        let tag = schedule.describe();
        prop_assert_eq!(&one, &four, "diagnosed run: {}", tag);
        let one_log = one.events.as_ref().expect("recorder attached");
        let four_log = four.events.as_ref().expect("recorder attached");
        prop_assert_eq!(one_log, four_log, "event streams: {}", tag);
        prop_assert_eq!(
            render_jsonl(one_log),
            render_jsonl(four_log),
            "JSONL bytes: {}",
            tag
        );
    }

    /// The deterministic service-level `MetricsSnapshot` is a pure function
    /// of the spec: `jobs = 1` and `jobs = 4` fold to bit-identical
    /// snapshots, with or without the wall-plane observation attached.
    #[test]
    fn service_metrics_snapshots_are_jobs_invariant(
        seed in 0u64..100_000,
        shards in 1usize..4,
    ) {
        use opr::adversary::AdversarySpec;
        use opr::metrics::{shared_flight_recorder, MetricsRegistry};
        use opr::service::{ServiceConfig, ServiceObs, ServiceSpec};
        use opr::types::{Regime, SystemConfig};
        use opr::workload::ServiceWorkload;
        let spec = |jobs: usize| ServiceSpec {
            service: ServiceConfig {
                shards,
                epoch_cfg: SystemConfig::new(7, 2).expect("legal config"),
                regime: Regime::LogTime,
                byzantine: 2,
                adversary: AdversarySpec::Silent,
                backend: BackendKind::Sim,
                queue_capacity: 32,
                shard_span: 16,
                seed,
            },
            workload: ServiceWorkload {
                clients: 64,
                epochs: 6,
                arrivals_per_epoch: 3 * shards,
                max_hold: 2,
                seed: seed ^ 0xabcd,
            },
            jobs,
        };
        let serial = spec(1).run().expect("clean spec").metrics_snapshot();
        let obs = ServiceObs {
            metrics: Some(MetricsRegistry::new()),
            flight: Some(shared_flight_recorder(4)),
            ..ServiceObs::default()
        };
        let parallel = spec(PARALLEL_JOBS)
            .run_observed(&obs)
            .expect("clean spec")
            .metrics_snapshot();
        prop_assert_eq!(serial, parallel, "seed {} shards {}", seed, shards);
    }
}
