//! Cross-crate lemma checks via the invariant probes — the structural
//! guarantees behind the headline theorems, observed on live runs.

use opr::core::runner::{run_alg1, run_two_step, Alg1Options};
use opr::prelude::*;
use std::collections::BTreeSet;

fn ids_of(raw: &[u64]) -> Vec<OriginalId> {
    raw.iter().map(|&x| OriginalId::new(x)).collect()
}

/// Lemmas IV.1 + IV.2: the timely/accepted containment structure.
#[test]
fn containment_structure_holds_under_every_attack() {
    let cfg = SystemConfig::new(10, 3).unwrap();
    let correct = ids_of(&[2, 30, 71, 102, 555, 7001, 90000]);
    for spec in AdversarySpec::ALG1 {
        for seed in 0..4u64 {
            let result = run_alg1(
                cfg,
                Regime::LogTime,
                &correct,
                3,
                |env| spec.build_alg1(env),
                Alg1Options {
                    seed,
                    ..Alg1Options::default()
                },
            )
            .unwrap();
            // IV.1: union of timely ⊆ every accepted.
            assert_eq!(
                result.probe.containment_violations(),
                0,
                "{spec} seed {seed}"
            );
            // IV.2: every correct id is timely at every correct process.
            for p in &result.probe.processes {
                let first = p.snapshots.first().unwrap();
                for id in &correct {
                    assert!(
                        first.timely.contains(id),
                        "{spec} seed {seed}: {id:?} not timely"
                    );
                }
            }
        }
    }
}

/// Lemma IV.3: |accepted| ≤ N + ⌊t²/(N−2t)⌋ — and the Theorem IV.10
/// corollary |accepted| ≤ N + t − 1.
#[test]
fn accepted_set_size_is_bounded() {
    for (n, t) in [(7usize, 2usize), (10, 3), (13, 4)] {
        let cfg = SystemConfig::new(n, t).unwrap();
        let correct = IdDistribution::EvenSpaced.generate(n - t, 5);
        for seed in 0..3u64 {
            let result = run_alg1(
                cfg,
                Regime::LogTime,
                &correct,
                t,
                |env| AdversarySpec::IdForge.build_alg1(env),
                Alg1Options {
                    seed,
                    ..Alg1Options::default()
                },
            )
            .unwrap();
            for size in result.probe.accepted_sizes() {
                assert!(size <= cfg.accepted_bound(), "N={n} t={t}: {size}");
                assert!(size < n + t, "N={n} t={t}: {size} > N+t−1");
            }
        }
    }
}

/// Corollary IV.6: ranks of correct ids stay δ-spaced at every step.
#[test]
fn correct_ids_stay_delta_spaced_through_voting() {
    let cfg = SystemConfig::new(7, 2).unwrap();
    let correct = ids_of(&[10, 20, 30, 40, 50]);
    let delta = cfg.delta();
    let result = run_alg1(
        cfg,
        Regime::LogTime,
        &correct,
        2,
        |env| AdversarySpec::RankSkew.build_alg1(env),
        Alg1Options::default(),
    )
    .unwrap();
    for p in &result.probe.processes {
        for snap in &p.snapshots {
            let ranks: Vec<_> = correct
                .iter()
                .filter_map(|&id| snap.ranks.get(id))
                .collect();
            assert_eq!(ranks.len(), correct.len(), "correct ids always ranked");
            for w in ranks.windows(2) {
                assert!(
                    w[0].spaced_at_least(w[1], delta),
                    "step {}: {} then {}",
                    snap.step,
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// Lemma IV.8's monotone contraction: the spread series never increases.
#[test]
fn spread_series_is_monotone_nonincreasing() {
    let cfg = SystemConfig::new(13, 4).unwrap();
    let correct = IdDistribution::EvenSpaced.generate(9, 2);
    for spec in [AdversarySpec::RankSkew, AdversarySpec::EchoSplit] {
        let result = run_alg1(
            cfg,
            Regime::LogTime,
            &correct,
            4,
            |env| spec.build_alg1(env),
            Alg1Options::default(),
        )
        .unwrap();
        let series = result.probe.spread_series();
        for w in series.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "{spec}: spread grew {} -> {}",
                w[0],
                w[1]
            );
        }
    }
}

/// Lemmas VI.1 + VI.2 on live two-step runs.
#[test]
fn two_step_discrepancy_vs_gap_mechanism() {
    let cfg = SystemConfig::new(11, 2).unwrap();
    let raw: Vec<u64> = (1..=9).map(|i| i * 100).collect();
    let correct: BTreeSet<OriginalId> = raw.iter().map(|&x| OriginalId::new(x)).collect();
    for spec in AdversarySpec::TWO_STEP {
        for seed in 0..4u64 {
            let result =
                run_two_step(cfg, &ids_of(&raw), 2, |env| spec.build_two_step(env), seed).unwrap();
            let delta = result.probe.max_discrepancy(&correct);
            let gap = result.probe.min_correct_gap(&correct);
            assert!(delta <= 8, "{spec}: Δ={delta} > 2t²");
            assert!(gap >= 9, "{spec}: gap {gap} < N−t");
            assert!(delta < gap, "{spec}: Δ={delta} ≥ gap={gap}");
        }
    }
}

/// The isValid filter earns its keep: under the order-inverting adversary,
/// rejections happen and order survives; under no adversary, none happen.
#[test]
fn is_valid_rejections_track_adversary_behaviour() {
    let cfg = SystemConfig::new(7, 2).unwrap();
    let correct = ids_of(&[3, 14, 15, 92, 65]);
    let hostile = run_alg1(
        cfg,
        Regime::LogTime,
        &correct,
        2,
        |env| AdversarySpec::OrderInvert.build_alg1(env),
        Alg1Options::default(),
    )
    .unwrap();
    assert!(hostile.probe.total_rejected_votes() > 0);

    let benign = run_alg1(
        cfg,
        Regime::LogTime,
        &correct,
        2,
        |_| None,
        Alg1Options::default(),
    )
    .unwrap();
    assert_eq!(benign.probe.total_rejected_votes(), 0);
}
