//! Tier-1 guarantees of the metrics plane:
//!
//! * histogram bucket boundaries are exact powers of two,
//! * sharded registry cells merge losslessly across threads,
//! * the deterministic `MetricsSnapshot` of a run and of a service schedule
//!   is bit-identical across all three backends and across `jobs` counts,
//! * the Prometheus rendering of the deterministic plane is pinned
//!   byte-for-byte against committed goldens (`tests/data/metrics.prom`,
//!   `tests/data/service-metrics.prom`; re-bless with `BLESS_METRICS=1`),
//! * the flight recorder retains exactly the last K epoch summaries and its
//!   dump renders them when an oracle violation is raised.

use opr::adversary::AdversarySpec;
use opr::metrics::{
    bucket_index, render_prometheus, shared_flight_recorder, validate_prometheus, MetricsRegistry,
    MetricsSnapshot, OVERFLOW_BUCKET,
};
use opr::service::{judge_ledger, LedgerEvent, ServiceConfig, ServiceObs, ServiceSpec};
use opr::transport::BackendKind;
use opr::types::{Regime, SystemConfig};
use opr::workload::ServiceWorkload;

const RUN_GOLDEN: &str = "tests/data/metrics.prom";
const SERVICE_GOLDEN: &str = "tests/data/service-metrics.prom";

fn small_service(backend: BackendKind, jobs: usize) -> ServiceSpec {
    ServiceSpec {
        service: ServiceConfig {
            shards: 2,
            epoch_cfg: SystemConfig::new(7, 2).expect("legal config"),
            regime: Regime::LogTime,
            byzantine: 2,
            adversary: AdversarySpec::Silent,
            backend,
            queue_capacity: 32,
            shard_span: 16,
            seed: 0xfeed,
        },
        workload: ServiceWorkload {
            clients: 64,
            epochs: 10,
            arrivals_per_epoch: 6,
            max_hold: 2,
            seed: 0x1234,
        },
        jobs,
    }
}

#[test]
fn histogram_buckets_sit_on_powers_of_two() {
    // Bucket k covers (2^(k-1), 2^k]; 0 and 1 land in bucket 0.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 0);
    assert_eq!(bucket_index(2), 1);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 2);
    assert_eq!(bucket_index(5), 3);
    for k in 3..63 {
        let bound = 1u64 << k;
        assert_eq!(bucket_index(bound), k, "2^{k} belongs to bucket {k}");
        assert_eq!(bucket_index(bound + 1), k + 1, "2^{k}+1 overflows to {k}");
    }
    assert_eq!(bucket_index(u64::MAX), OVERFLOW_BUCKET);
}

#[test]
fn sharded_cells_merge_losslessly_across_threads() {
    let registry = MetricsRegistry::new();
    let counter = registry.counter("x_total");
    let hist = registry.histogram("x_ns");
    let threads: Vec<_> = (0..8u64)
        .map(|i| {
            let counter = counter.clone();
            let hist = hist.clone();
            std::thread::spawn(move || {
                for v in 0..2_000u64 {
                    counter.add(1);
                    hist.record(i * 2_000 + v);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("x_total"), 16_000);
    let h = snap.histogram("x_ns").unwrap();
    assert_eq!(h.count, 16_000);
    assert_eq!(h.sum, (0..16_000u64).sum::<u64>());
}

/// The deterministic plane of a protocol run is a pure function of the
/// schedule: all three backends produce the same snapshot, and attaching a
/// live registry does not change it.
#[test]
fn run_snapshot_is_backend_invariant() {
    let schedule = opr::chaos::generate_schedule(11, opr::chaos::BudgetRegime::InBudget);
    let reference = schedule
        .run_observed(BackendKind::Sim, None)
        .expect("legal schedule")
        .metrics_snapshot();
    assert!(!reference.is_empty());
    assert!(reference.counter("opr_rounds_total") > 0);
    for backend in [BackendKind::Threaded, BackendKind::Pooled] {
        let other = schedule
            .run_observed(backend, None)
            .expect("legal schedule")
            .metrics_snapshot();
        assert_eq!(reference, other, "snapshot on {backend}");
    }
    let registry = MetricsRegistry::new();
    let instrumented = schedule
        .run_instrumented(BackendKind::Sim, None, Some(registry.clone()))
        .expect("legal schedule")
        .metrics_snapshot();
    assert_eq!(
        reference, instrumented,
        "live registry must be unobservable"
    );
    // ... and the fold mirrored the deterministic plane into the registry.
    let live = registry.snapshot();
    assert_eq!(
        live.counter("opr_rounds_total"),
        reference.counter("opr_rounds_total")
    );
}

/// The deterministic service snapshot is bit-identical across all three
/// backends and `jobs` counts, observed or not.
#[test]
fn service_snapshot_is_backend_and_jobs_invariant() {
    let reference = small_service(BackendKind::Sim, 1)
        .run()
        .expect("clean spec")
        .metrics_snapshot();
    assert!(reference.counter("opr_service_grants_total") > 0);
    for (backend, jobs) in [
        (BackendKind::Sim, 4),
        (BackendKind::Threaded, 1),
        (BackendKind::Threaded, 4),
        (BackendKind::Pooled, 1),
        (BackendKind::Pooled, 4),
    ] {
        let other = small_service(backend, jobs)
            .run()
            .expect("clean spec")
            .metrics_snapshot();
        assert_eq!(reference, other, "snapshot on {backend}/jobs{jobs}");
    }
    // Full observation attached: report (and so snapshot) unchanged.
    let obs = ServiceObs {
        metrics: Some(MetricsRegistry::new()),
        flight: Some(shared_flight_recorder(4)),
        ..ServiceObs::default()
    };
    let observed = small_service(BackendKind::Sim, 1)
        .run_observed(&obs)
        .expect("clean spec")
        .metrics_snapshot();
    assert_eq!(reference, observed, "observation must be unobservable");
}

fn check_golden(path: &str, rendered: &str) {
    if std::env::var_os("BLESS_METRICS").is_some() {
        std::fs::write(path, rendered).expect("write golden");
        return;
    }
    let golden =
        std::fs::read_to_string(path).expect("golden committed (bless with BLESS_METRICS=1)");
    assert_eq!(
        golden, rendered,
        "{path} drifted; re-bless with BLESS_METRICS=1 if deliberate"
    );
}

#[test]
fn prometheus_rendering_matches_the_run_golden() {
    let schedule = opr::chaos::generate_schedule(11, opr::chaos::BudgetRegime::InBudget);
    let snap = schedule
        .run_observed(BackendKind::Sim, None)
        .expect("legal schedule")
        .metrics_snapshot();
    let rendered = render_prometheus(&snap);
    validate_prometheus(&rendered).expect("structurally valid exposition");
    check_golden(RUN_GOLDEN, &rendered);
}

#[test]
fn prometheus_rendering_matches_the_service_golden() {
    let snap = small_service(BackendKind::Sim, 1)
        .run()
        .expect("clean spec")
        .metrics_snapshot();
    let rendered = render_prometheus(&snap);
    validate_prometheus(&rendered).expect("structurally valid exposition");
    check_golden(SERVICE_GOLDEN, &rendered);
}

/// A snapshot rendered and re-rendered is byte-stable, and histograms
/// satisfy the Prometheus cumulative-bucket contract.
#[test]
fn prometheus_rendering_is_stable_and_cumulative() {
    let mut snap = MetricsSnapshot::new();
    snap.add_counter("a_total", 3);
    snap.set_gauge("g", -7);
    for v in [1u64, 2, 3, 900, 5_000_000] {
        snap.record("h_ns", v);
    }
    let first = render_prometheus(&snap);
    assert_eq!(first, render_prometheus(&snap));
    validate_prometheus(&first).expect("valid");
    let mut last = 0u64;
    for line in first.lines().filter(|l| l.starts_with("h_ns_bucket")) {
        let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(v >= last, "buckets must be cumulative: {line}");
        last = v;
    }
    assert!(first.contains("h_ns_bucket{le=\"+Inf\"} 5"));
    assert!(first.contains("h_ns_count 5"));
}

/// The flight recorder keeps exactly the last K epoch summaries of a
/// service run, and the violation path renders them: injecting an oracle
/// violation into the judged ledger produces a dump carrying the ring.
#[test]
fn flight_recorder_dumps_last_k_on_injected_violation() {
    let flight = shared_flight_recorder(4);
    let obs = ServiceObs {
        flight: Some(flight.clone()),
        ..ServiceObs::default()
    };
    let spec = small_service(BackendKind::Sim, 1);
    let report = spec.run_observed(&obs).expect("clean spec");
    assert_eq!(report.epochs, 10);
    let summaries = flight.lock().unwrap().summaries();
    let epochs: Vec<u64> = summaries.iter().map(|s| s.epoch).collect();
    assert_eq!(epochs, vec![6, 7, 8, 9], "ring keeps the last 4 of 10");
    assert_eq!(flight.lock().unwrap().dropped(), 6);

    // Inject a violation the way a corrupted engine would surface one: a
    // duplicate in-epoch grant. The judged ledger trips the oracle, which
    // is the dump trigger the service bin wires to this render call.
    let mut ledger = report.ledger;
    let dup = *ledger
        .iter()
        .find(|e| matches!(e, LedgerEvent::Grant(_)))
        .expect("run granted at least once");
    ledger.push(dup);
    let violations = judge_ledger(&spec.service, &ledger);
    assert!(
        !violations.is_empty(),
        "injected duplicate must trip an oracle"
    );
    let dump = flight.lock().unwrap().render("oracle violation");
    assert!(dump.starts_with("flight recorder dump (oracle violation): last 4 of 10 epochs"));
    for epoch in 6..=9 {
        assert!(
            dump.lines()
                .any(|l| l.trim_start().starts_with(&format!("{epoch} "))),
            "epoch {epoch} row missing from dump:\n{dump}"
        );
    }
}
