//! Integration tests for the ablation knobs and the early-output extension
//! through the public facade.

use opr::core::runner::{run_alg1, run_two_step_clamped, Alg1Options};
use opr::core::Alg1Tweaks;
use opr::prelude::*;

/// Early output must be *outcome-equivalent* to the full schedule: the
/// frozen value is by construction the value the schedule would converge
/// to, so turning the knob on can change latency but never names.
#[test]
fn early_output_is_outcome_equivalent_to_full_schedule() {
    let cfg = SystemConfig::new(10, 3).unwrap();
    for spec in [
        AdversarySpec::Silent,
        AdversarySpec::CrashMidway,
        AdversarySpec::IdForge,
        AdversarySpec::EchoSplit,
        AdversarySpec::RankSkew,
        AdversarySpec::PairSqueeze,
    ] {
        for seed in 0..4u64 {
            let ids = IdDistribution::SparseRandom.generate(7, seed + 40);
            let run = |early: bool| {
                run_alg1(
                    cfg,
                    Regime::LogTime,
                    &ids,
                    3,
                    |env| spec.build_alg1(env),
                    Alg1Options {
                        seed,
                        allow_regime_violation: false,
                        tweaks: Alg1Tweaks {
                            early_output: early,
                            ..Alg1Tweaks::default()
                        },
                        ..Alg1Options::default()
                    },
                )
                .unwrap()
            };
            let normal = run(false);
            let early = run(true);
            assert_eq!(
                normal.outcome, early.outcome,
                "{spec} seed {seed}: early output changed the names"
            );
            // Early runs never decide later than the schedule.
            let last = early.probe.last_decision_step().unwrap();
            assert!(last <= cfg.total_steps(Regime::LogTime));
        }
    }
}

#[test]
fn early_output_fires_at_first_voting_step_without_active_faults() {
    let cfg = SystemConfig::new(7, 2).unwrap();
    let ids = IdDistribution::Dense.generate(5, 1);
    let result = run_alg1(
        cfg,
        Regime::LogTime,
        &ids,
        2,
        |_| None, // silent Byzantine
        Alg1Options {
            seed: 9,
            allow_regime_violation: false,
            tweaks: Alg1Tweaks {
                early_output: true,
                ..Alg1Tweaks::default()
            },
            ..Alg1Options::default()
        },
    )
    .unwrap();
    for step in result.probe.decision_steps() {
        assert_eq!(step, Some(5), "every process freezes at voting step 1");
    }
    assert!(result.outcome.verify(8).is_empty());
}

/// Extra voting steps are harmless (they only shrink the spread further).
#[test]
fn extra_voting_steps_preserve_correctness() {
    let cfg = SystemConfig::new(7, 2).unwrap();
    let ids = IdDistribution::EvenSpaced.generate(5, 3);
    for extra in [0u32, 1, 2, 5] {
        let out = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids.clone())
            .adversary(AdversarySpec::PairSqueeze, 2)
            .seed(4)
            .extra_voting_steps(extra)
            .run()
            .unwrap();
        assert_eq!(out.stats.violations, 0, "extra={extra}");
        assert_eq!(out.stats.rounds, cfg.total_steps(Regime::LogTime) + extra);
    }
}

/// The safe schedule (finding 1 in EXPERIMENTS.md) always reaches the
/// paper's (δ−1)/2 spread target, config by config.
#[test]
fn safe_voting_steps_meet_the_paper_spread_target() {
    for (n, t) in [(7usize, 2usize), (10, 3), (13, 4)] {
        let cfg = SystemConfig::new(n, t).unwrap();
        let ids = IdDistribution::EvenSpaced.generate(n - t, 5);
        let extra = cfg
            .safe_voting_steps()
            .saturating_sub(cfg.voting_steps(Regime::LogTime));
        let result = run_alg1(
            cfg,
            Regime::LogTime,
            &ids,
            t,
            |env| AdversarySpec::PairSqueeze.build_alg1(env),
            Alg1Options {
                seed: 6,
                allow_regime_violation: false,
                tweaks: Alg1Tweaks {
                    extra_voting_steps: extra,
                    ..Alg1Tweaks::default()
                },
                ..Alg1Options::default()
            },
        )
        .unwrap();
        let final_spread = *result.probe.spread_series().last().unwrap();
        assert!(
            final_spread < (cfg.delta() - 1.0) / 2.0,
            "N={n} t={t}: {final_spread}"
        );
    }
}

/// The clamp ablation through the public runner: the same adversary, the
/// clamp decides between correct and broken.
#[test]
fn clamp_toggles_half_echo_between_harmless_and_lethal() {
    let cfg = SystemConfig::new(11, 2).unwrap();
    let ids = IdDistribution::EvenSpaced.generate(9, 8);
    let clamped = run_two_step_clamped(
        cfg,
        &ids,
        2,
        |env| AdversarySpec::HalfEcho.build_two_step(env),
        1,
        true,
    )
    .unwrap();
    assert!(clamped.outcome.verify(121).is_empty());
    let unclamped = run_two_step_clamped(
        cfg,
        &ids,
        2,
        |env| AdversarySpec::HalfEcho.build_two_step(env),
        1,
        false,
    )
    .unwrap();
    assert!(
        !unclamped.outcome.verify(121).is_empty(),
        "without the clamp the half-echo adversary must break renaming"
    );
}
