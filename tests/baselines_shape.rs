//! Baseline-vs-paper shape claims: the comparisons the paper's introduction
//! and related-work section make, measured on our implementations.

use opr::prelude::*;

fn sparse_ids(count: usize, seed: u64) -> Vec<OriginalId> {
    IdDistribution::SparseRandom.generate(count, seed)
}

#[test]
fn byzantine_costs_match_crash_costs_in_rounds() {
    // The paper's first contribution: Algorithm 1 has the *same* step
    // complexity class as the crash-tolerant solution — O(log t) — despite
    // tolerating Byzantine faults. Measure both and compare growth.
    let mut alg1_rounds = Vec::new();
    let mut crash_rounds = Vec::new();
    for t in [1usize, 2, 4, 8] {
        let n = 3 * t + 1;
        let cfg = SystemConfig::new(n, t).unwrap();
        let ids = sparse_ids(n - t, 3);
        let a = Algorithm::Alg1LogTime
            .run(cfg, &ids, t, AdversarySpec::IdForge, 1)
            .unwrap();
        let c = Algorithm::CrashAa
            .run(cfg, &ids, t, AdversarySpec::Silent, 1)
            .unwrap();
        alg1_rounds.push(a.rounds);
        crash_rounds.push(c.rounds);
    }
    // Doubling t adds a constant to both (logarithmic growth).
    let alg1_deltas: Vec<i64> = alg1_rounds
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect();
    let crash_deltas: Vec<i64> = crash_rounds
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect();
    assert_eq!(
        alg1_deltas,
        vec![3, 3, 3],
        "3 extra steps per doubling of t"
    );
    assert_eq!(
        crash_deltas,
        vec![1, 1, 1],
        "1 extra step per doubling of t"
    );
}

#[test]
fn alg1_namespace_beats_translated_baseline() {
    // Improvement over [15]: N + t − 1 < 2N namespace.
    for t in [2usize, 3] {
        let n = 3 * t + 1;
        assert!(
            (n + t - 1) < 2 * n,
            "paper bound must beat the translation bound"
        );
        let cfg = SystemConfig::new(n, t).unwrap();
        let ids = sparse_ids(n - t, 7);
        let a = Algorithm::Alg1LogTime
            .run(cfg, &ids, t, AdversarySpec::IdForge, 2)
            .unwrap();
        assert!(a.max_name.unwrap() <= (n + t - 1) as i64);
        let b4 = Algorithm::Translated
            .run(cfg, &ids, t, AdversarySpec::Silent, 2)
            .unwrap();
        assert!(b4.max_name.unwrap() <= 2 * n as i64);
    }
}

#[test]
fn translated_baseline_doubles_round_cost_of_cht() {
    for t in [1usize, 2] {
        let n = 3 * t + 1 + 4;
        let cfg = SystemConfig::new(n, t).unwrap();
        let ids = sparse_ids(n - t, 5);
        let cht = Algorithm::Cht
            .run(cfg, &ids, t, AdversarySpec::Silent, 3)
            .unwrap();
        let translated = Algorithm::Translated
            .run(cfg, &ids, t, AdversarySpec::Silent, 3)
            .unwrap();
        assert!(
            translated.rounds >= 2 * cht.rounds,
            "N={n}: {} < 2×{}",
            translated.rounds,
            cht.rounds
        );
    }
}

#[test]
fn two_step_is_the_round_floor_but_pays_namespace() {
    let t = 2usize;
    let n = 2 * t * t + t + 1;
    let cfg = SystemConfig::new(n, t).unwrap();
    let ids = sparse_ids(n - t, 9);
    let fast = Algorithm::TwoStep
        .run(cfg, &ids, t, AdversarySpec::FakeFlood, 1)
        .unwrap();
    assert_eq!(fast.rounds, 2);
    // The fast path's names can exceed N + t − 1 (it trades namespace for
    // rounds); its bound is N².
    assert!(fast.max_name.unwrap() <= (n * n) as i64);
    let slow = Algorithm::Alg1LogTime
        .run(cfg, &ids, t, AdversarySpec::IdForge, 1)
        .unwrap();
    assert!(slow.rounds > fast.rounds);
    assert!(slow.max_name.unwrap() <= (n + t - 1) as i64);
}

#[test]
fn consensus_gets_exact_agreement_but_linear_rounds() {
    // At t = 4 the logarithmic schedule (13 rounds) beats the consensus
    // route (4 + 2·5 = 14 rounds); the gap then widens linearly (F3).
    let t = 4usize;
    let n = 4 * t + 2;
    let cfg = SystemConfig::new(n, t).unwrap();
    let ids = sparse_ids(n - t, 4);
    let cons = Algorithm::Consensus
        .run(cfg, &ids, t, AdversarySpec::Silent, 6)
        .unwrap();
    let alg1 = Algorithm::Alg1LogTime
        .run(cfg, &ids, t, AdversarySpec::IdForge, 6)
        .unwrap();
    assert_eq!(cons.rounds, 4 + 2 * (t as u32 + 1));
    assert!(alg1.rounds < cons.rounds);
}
