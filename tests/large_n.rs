//! Large-N soak tests for the task-scheduled `PooledBackend`.
//!
//! The pooled engine exists so the harness can execute the paper's
//! protocols at four-digit N without paying thread-per-process costs.
//! These tests pin that promise: a full Algorithm 1 run at `N = 1024,
//! t = 300` must complete on the pooled backend — where the threaded
//! backend would spawn 1024 OS threads — and produce a `DiagnosedRun`
//! bit-identical to the reference simulator's, and at `N = 512` the
//! equivalence must hold across adversaries and worker counts.
//!
//! Wall-clock at this scale is dominated by protocol compute, not the
//! round engine (the `pool` bench pins the engine itself at ~65 ms/round
//! for N = 1024 traffic): Alg1 at `N = 1024, t = 300` runs 34 rounds of
//! ~10⁶ multiset-bearing deliveries, which takes minutes of CPU on one
//! core and parallelizes across pooled workers on real hardware. The
//! perf gate is therefore *relative* — the pooled run must stay within
//! `POOLED_SLOWDOWN_CAP` of the simulator measured in the same process —
//! plus an absolute runaway ceiling, both env-overridable.
//!
//! The soak tests are `#[ignore]`d because the tier-1 suite runs a debug
//! build. CI runs them in release via a dedicated step (`just
//! pool-soak`):
//!
//! ```text
//! cargo test --release --test large_n -- --ignored
//! ```
//!
//! Env knobs (all optional): `LARGE_N`/`LARGE_T` (headline soak
//! dimensions, default 1024/300), `CROSS_N`/`CROSS_T` (cross-check
//! dimensions, default 512/128), `POOL_SOAK_CEILING_SECS` (absolute
//! runaway ceiling for the pooled run, default 7200).

use opr::prelude::*;
use opr::transport::PooledBackend;
use opr::workload::{DiagnosedRun, RenamingRun};
use std::time::{Duration, Instant};

/// The pooled run may not take longer than this multiple of the sim run
/// measured in the same process. On one core the pooled engine's fences
/// are nearly free (serial fallback); on many cores it should win — a
/// regression to thread-per-process-like scheduling overhead blows this
/// immediately, on any hardware.
const POOLED_SLOWDOWN_CAP: f64 = 2.0;

fn env_dim(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn runaway_ceiling() -> Duration {
    Duration::from_secs(env_dim("POOL_SOAK_CEILING_SECS", 7200) as u64)
}

fn diagnosed(
    n: usize,
    t: usize,
    spec: AdversarySpec,
    seed: u64,
    backend: BackendKind,
) -> DiagnosedRun {
    let cfg = SystemConfig::new(n, t).expect("legal large-N config");
    let ids = IdDistribution::SparseRandom.generate(n - t, seed);
    RenamingRun::builder(cfg, Regime::LogTime)
        .correct_ids(ids)
        .adversary(spec, t)
        .seed(seed)
        .backend(backend)
        .run_diagnosed()
        .expect("large-N run is legal")
}

/// The headline gate: Algorithm 1 at `N = 1024, t = 300` (within the
/// `N ≥ 3t + 1` resilience bound) completes on the pooled backend, stays
/// within `POOLED_SLOWDOWN_CAP` of the simulator, renames cleanly, and
/// is bit-identical to the simulator's `DiagnosedRun`.
#[test]
#[ignore = "release-mode soak; run via: cargo test --release --test large_n -- --ignored"]
fn alg1_headline_soak_matches_sim_within_slowdown_cap() {
    let (n, t) = (env_dim("LARGE_N", 1024), env_dim("LARGE_T", 300));
    let seed = 7u64;

    let start = Instant::now();
    let pooled = diagnosed(n, t, AdversarySpec::Silent, seed, BackendKind::Pooled);
    let pooled_elapsed = start.elapsed();
    eprintln!("pooled Alg1 N={n} t={t}: {pooled_elapsed:?}");
    assert!(
        pooled_elapsed <= runaway_ceiling(),
        "pooled Alg1 N={n} t={t} took {pooled_elapsed:?}, runaway ceiling {:?}",
        runaway_ceiling()
    );
    assert!(
        pooled.degraded.violations.is_empty(),
        "a fault-free large-N run must rename cleanly"
    );
    assert_eq!(
        pooled.degraded.outcome.len(),
        n - t,
        "every correct process decides"
    );

    let start = Instant::now();
    let sim = diagnosed(n, t, AdversarySpec::Silent, seed, BackendKind::Sim);
    let sim_elapsed = start.elapsed();
    eprintln!("sim    Alg1 N={n} t={t}: {sim_elapsed:?}");
    assert_eq!(sim, pooled, "N={n} DiagnosedRun must be bit-identical");

    // Floor the denominator so sub-second sim runs (small env-overridden
    // dims) don't turn scheduler noise into a failure.
    let cap = sim_elapsed
        .max(Duration::from_secs(1))
        .mul_f64(POOLED_SLOWDOWN_CAP);
    assert!(
        pooled_elapsed <= cap,
        "pooled took {pooled_elapsed:?} vs sim {sim_elapsed:?} — \
         over the {POOLED_SLOWDOWN_CAP}x slowdown cap"
    );
}

/// The mid-scale cross-check: sim vs pooled under a real Byzantine
/// adversary, across pooled worker counts {1, 4}.
#[test]
#[ignore = "release-mode soak; run via: cargo test --release --test large_n -- --ignored"]
fn alg1_n512_sim_vs_pooled_cross_check() {
    let (n, t) = (env_dim("CROSS_N", 512), env_dim("CROSS_T", 128));
    let seed = 11u64;
    for spec in [AdversarySpec::Silent, AdversarySpec::ALG1[0]] {
        let sim = diagnosed(n, t, spec, seed, BackendKind::Sim);
        for workers in [1usize, 4] {
            PooledBackend::set_process_default_workers(workers);
            let pooled = diagnosed(n, t, spec, seed, BackendKind::Pooled);
            PooledBackend::set_process_default_workers(0);
            assert_eq!(
                sim, pooled,
                "N={n} {spec} divergence at {workers} worker(s)"
            );
        }
    }
}

/// A debug-friendly pin of the same contract, small enough for tier-1:
/// the pooled backend agrees with the simulator at N = 64, t = 15.
#[test]
fn alg1_n64_pooled_smoke_matches_sim() {
    let (n, t, seed) = (64usize, 15usize, 3u64);
    let sim = diagnosed(n, t, AdversarySpec::Silent, seed, BackendKind::Sim);
    let pooled = diagnosed(n, t, AdversarySpec::Silent, seed, BackendKind::Pooled);
    assert_eq!(sim, pooled);
    assert!(sim.degraded.violations.is_empty());
}
