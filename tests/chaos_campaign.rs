//! End-to-end chaos campaign guarantees (the acceptance gates of the chaos
//! engine):
//!
//! * in-budget schedules uphold every paper invariant on both backends,
//! * over-budget schedules degrade gracefully — structured diagnoses, no
//!   panics, never an undiagnosed wrong answer,
//! * a failing schedule shrinks to a minimal reproducer that round-trips
//!   through `chaos-repro.json` and replays deterministically.

use opr::chaos::engine::{judge_schedule, per_run_seed, run_campaign};
use opr::chaos::{
    generate_schedule, standard_suite, BackendChoice, BudgetRegime, CampaignConfig, Repro,
};

/// Two digests name the same failure when they share a violation kind.
fn digests_overlap(a: &str, b: &str) -> bool {
    a.split('+').any(|kind| b.split('+').any(|k| k == kind))
}

/// The headline guarantee: a large seeded campaign of schedules whose
/// effective fault load stays within the algorithm's bound `t` produces
/// zero violations — on the reference simulator and the threaded backend,
/// bit-identically.
#[test]
fn in_budget_campaign_is_clean_on_both_backends() {
    let config = CampaignConfig {
        seed: 0xC4A05,
        runs: 1000,
        budget: Some(BudgetRegime::InBudget),
        backend: BackendChoice::Both,
        jobs: 4,
    };
    let report = run_campaign(&config, &standard_suite());
    assert!(report.passed(), "{report}");
    assert_eq!(report.total, 1000);
    assert_eq!(report.clean, 1000, "{report}");
    assert!(report.failures.is_empty());
}

/// At-budget (exactly `t` effective faults) is the paper's worst legal
/// case and must be just as clean.
#[test]
fn at_budget_campaign_is_clean_on_both_backends() {
    let config = CampaignConfig {
        seed: 0xA7B0D6,
        runs: 300,
        budget: Some(BudgetRegime::AtBudget),
        backend: BackendChoice::Both,
        jobs: 4,
    };
    let report = run_campaign(&config, &standard_suite());
    assert!(report.passed(), "{report}");
    assert_eq!(report.clean, report.total, "{report}");
}

/// Graceful degradation: past the fault bound the algorithms owe no
/// guarantees, but the harness still owes structure — every over-budget
/// run ends in a diagnosis (clean or degraded), never a panic, never an
/// undiagnosed wrong answer, and never a backend divergence.
#[test]
fn over_budget_campaign_degrades_without_panicking() {
    let config = CampaignConfig {
        seed: 0x0EB,
        runs: 300,
        budget: Some(BudgetRegime::OverBudget),
        backend: BackendChoice::Both,
        jobs: 4,
    };
    let report = run_campaign(&config, &standard_suite());
    assert!(report.passed(), "{report}");
    assert!(report.failures.is_empty(), "{report}");
    assert!(
        report.degraded > 0,
        "an over-budget campaign of this size must degrade at least once: {report}"
    );
}

/// The full failure pipeline on an injected violation: an over-budget
/// schedule judged under at-budget rules fails legitimately; the shrinker
/// must minimize it, the repro format must round-trip it bit-exactly, and
/// the replay must reproduce the digest.
#[test]
fn injected_failure_shrinks_and_round_trips_through_repro() {
    let oracles = standard_suite();
    let backend = BackendChoice::Sim;
    let injected_budget = BudgetRegime::AtBudget;
    let campaign_seed = 11u64;
    let (index, schedule, digest) = (0..500usize)
        .find_map(|index| {
            let schedule =
                generate_schedule(per_run_seed(campaign_seed, index), BudgetRegime::OverBudget);
            let verdict = judge_schedule(&schedule, backend, &oracles);
            verdict
                .is_failure(injected_budget)
                .then(|| (index, schedule, verdict.digest()))
        })
        .expect("over-budget schedules must violate at-budget expectations");

    let result = opr::chaos::shrink(&schedule, |candidate| {
        let verdict = judge_schedule(candidate, backend, &oracles);
        verdict.is_failure(injected_budget) && digests_overlap(&verdict.digest(), &digest)
    });
    assert!(result.events <= result.original_events);
    // The shrunk schedule still fails with the same digest...
    let shrunk_verdict = judge_schedule(&result.schedule, backend, &oracles);
    assert!(shrunk_verdict.is_failure(injected_budget));
    assert!(digests_overlap(&shrunk_verdict.digest(), &digest));

    // ...round-trips through the repro file format unchanged...
    let repro = Repro {
        campaign_seed,
        run_index: index,
        budget: injected_budget,
        backend,
        digest,
        schedule: result.schedule,
        metrics: None,
        fitness: None,
    };
    let text = repro.to_json();
    let reread = Repro::from_json(&text).expect("repro must parse back");
    assert_eq!(reread, repro, "round-trip must be exact:\n{text}");

    // ...and replays deterministically with the recorded digest.
    let first = reread.replay(&oracles);
    let second = reread.replay(&oracles);
    assert_eq!(
        first.digest(),
        second.digest(),
        "replay must be deterministic"
    );
    assert!(digests_overlap(&first.digest(), &repro.digest));
}

/// The pooled-backend smoke campaign: a mixed-budget campaign judged with
/// the cross-backend oracle comparing the simulator against *both* the
/// threaded and the pooled substrate. Any pooled divergence — outcome,
/// metrics or diagnosis — surfaces as a campaign failure here.
#[test]
fn mixed_budget_campaign_is_clean_on_all_backends() {
    let config = CampaignConfig {
        seed: 0x900_1ED,
        runs: 200,
        budget: None,
        backend: BackendChoice::All,
        jobs: 4,
    };
    let report = run_campaign(&config, &standard_suite());
    assert!(report.passed(), "{report}");
    assert_eq!(report.total, 200);
    assert!(report.failures.is_empty(), "{report}");
}

/// Campaigns are a pure function of their seed: the same configuration
/// twice yields the same counts and the same failure set.
#[test]
fn campaigns_are_deterministic_in_their_seed() {
    let config = CampaignConfig {
        seed: 99,
        runs: 120,
        budget: None,
        backend: BackendChoice::Both,
        jobs: 4,
    };
    let oracles = standard_suite();
    let a = run_campaign(&config, &oracles);
    let b = run_campaign(&config, &oracles);
    assert_eq!(a.total, b.total);
    assert_eq!(a.clean, b.clean);
    assert_eq!(a.degraded, b.degraded);
    assert_eq!(a.failures.len(), b.failures.len());
}
