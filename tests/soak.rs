//! Soak tests: exhaustive adversary × seed × configuration matrices.
//! Ignored by default (minutes of runtime); run with
//! `cargo test --test soak -- --ignored`.

use opr::prelude::*;

#[test]
#[ignore = "soak: large matrix, run explicitly"]
fn alg1_log_time_soak() {
    for t in 1..=4usize {
        for n in (3 * t + 1)..(3 * t + 5) {
            let cfg = SystemConfig::new(n, t).unwrap();
            for spec in AdversarySpec::ALG1 {
                for dist in IdDistribution::ALL {
                    for seed in 0..10u64 {
                        let ids = dist.generate(n - t, seed);
                        let out = RenamingRun::builder(cfg, Regime::LogTime)
                            .correct_ids(ids)
                            .adversary(spec, t)
                            .seed(seed)
                            .run()
                            .unwrap();
                        assert_eq!(
                            out.stats.violations, 0,
                            "N={n} t={t} {spec} {dist} seed={seed}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
#[ignore = "soak: large matrix, run explicitly"]
fn two_step_soak() {
    for t in 1..=3usize {
        for n in (2 * t * t + t + 1)..(2 * t * t + t + 4) {
            let cfg = SystemConfig::new(n, t).unwrap();
            for spec in AdversarySpec::TWO_STEP {
                for dist in IdDistribution::ALL {
                    for seed in 0..10u64 {
                        let ids = dist.generate(n - t, seed);
                        let out = RenamingRun::builder(cfg, Regime::TwoStep)
                            .correct_ids(ids)
                            .adversary(spec, t)
                            .seed(seed)
                            .run()
                            .unwrap();
                        assert_eq!(
                            out.stats.violations, 0,
                            "N={n} t={t} {spec} {dist} seed={seed}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
#[ignore = "soak: large matrix, run explicitly"]
fn constant_time_soak() {
    for t in 1..=3usize {
        let n = t * t + 2 * t + 1;
        let cfg = SystemConfig::new(n, t).unwrap();
        for spec in AdversarySpec::ALG1 {
            for seed in 0..20u64 {
                let ids = IdDistribution::EvenSpaced.generate(n - t, seed);
                let out = RenamingRun::builder(cfg, Regime::ConstantTime)
                    .correct_ids(ids)
                    .adversary(spec, t)
                    .seed(seed)
                    .run()
                    .unwrap();
                // Strong renaming at the regime boundary under every attack.
                assert!(
                    out.outcome.verify(n as u64).is_empty(),
                    "N={n} t={t} {spec} seed={seed}"
                );
            }
        }
    }
}
