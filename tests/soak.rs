//! Soak tests: exhaustive adversary × seed × configuration matrices.
//! Ignored by default (minutes of runtime); run with
//! `cargo test --test soak -- --ignored`.
//!
//! The matrices are built serially in row order, executed on a [`RunPool`]
//! (`SOAK_JOBS` workers, default 4 — runs are independent deterministic
//! experiments) and asserted serially: results come back reassembled in
//! submission order, so failure messages still pinpoint the exact cell and
//! the run counts are identical to the old serial loops.

use opr::prelude::*;
use opr::workload::{run_grid, GridPoint};

/// The pool every soak matrix executes on.
fn soak_pool() -> RunPool {
    let jobs = std::env::var("SOAK_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    RunPool::new(jobs)
}

/// Runs the matrix on the pool and asserts every cell, in matrix order.
fn assert_matrix_clean(labels: Vec<String>, points: Vec<GridPoint>) {
    assert_eq!(labels.len(), points.len());
    for (label, result) in labels.iter().zip(run_grid(&soak_pool(), points)) {
        let stats = result.unwrap_or_else(|e| panic!("{label}: {e}"));
        // `violations` counts against each implementation's namespace
        // bound, so zero here is the full renaming property (strong
        // renaming for the constant-time regime, where the bound is `N`).
        assert_eq!(stats.violations, 0, "{label}");
    }
}

#[test]
#[ignore = "soak: large matrix, run explicitly"]
fn alg1_log_time_soak() {
    let mut labels = Vec::new();
    let mut points = Vec::new();
    for t in 1..=4usize {
        for n in (3 * t + 1)..(3 * t + 5) {
            let cfg = SystemConfig::new(n, t).unwrap();
            for spec in AdversarySpec::ALG1 {
                for dist in IdDistribution::ALL {
                    for seed in 0..10u64 {
                        labels.push(format!("N={n} t={t} {spec} {dist} seed={seed}"));
                        points.push(GridPoint {
                            algorithm: Algorithm::Alg1LogTime,
                            cfg,
                            correct_ids: dist.generate(n - t, seed),
                            faulty: t,
                            adversary: spec,
                            seed,
                            backend: BackendKind::default(),
                        });
                    }
                }
            }
        }
    }
    assert_matrix_clean(labels, points);
}

#[test]
#[ignore = "soak: large matrix, run explicitly"]
fn two_step_soak() {
    let mut labels = Vec::new();
    let mut points = Vec::new();
    for t in 1..=3usize {
        for n in (2 * t * t + t + 1)..(2 * t * t + t + 4) {
            let cfg = SystemConfig::new(n, t).unwrap();
            for spec in AdversarySpec::TWO_STEP {
                for dist in IdDistribution::ALL {
                    for seed in 0..10u64 {
                        labels.push(format!("N={n} t={t} {spec} {dist} seed={seed}"));
                        points.push(GridPoint {
                            algorithm: Algorithm::TwoStep,
                            cfg,
                            correct_ids: dist.generate(n - t, seed),
                            faulty: t,
                            adversary: spec,
                            seed,
                            backend: BackendKind::default(),
                        });
                    }
                }
            }
        }
    }
    assert_matrix_clean(labels, points);
}

#[test]
#[ignore = "soak: large matrix, run explicitly"]
fn constant_time_soak() {
    let mut labels = Vec::new();
    let mut points = Vec::new();
    for t in 1..=3usize {
        let n = t * t + 2 * t + 1;
        let cfg = SystemConfig::new(n, t).unwrap();
        for spec in AdversarySpec::ALG1 {
            for seed in 0..20u64 {
                labels.push(format!("N={n} t={t} {spec} seed={seed}"));
                points.push(GridPoint {
                    algorithm: Algorithm::Alg1ConstantTime,
                    cfg,
                    correct_ids: IdDistribution::EvenSpaced.generate(n - t, seed),
                    faulty: t,
                    adversary: spec,
                    seed,
                    backend: BackendKind::default(),
                });
            }
        }
    }
    // Strong renaming at the regime boundary under every attack: the
    // constant-time namespace bound is exactly `N`.
    assert_matrix_clean(labels, points);
}
