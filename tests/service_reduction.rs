//! The reduction gate: the service layer is a *pure multiplexer*.
//!
//! A service configured with one shard and run for one epoch with no
//! releases adds nothing to the protocol: the protocol names it records per
//! original id must be **bit-identical** to a direct `RenamingRun` on the
//! same inputs (same ids — batch originals plus the service's filler
//! padding — same adversary, same seed, same backend), and the service
//! names must be the order-preserving compaction of those protocol names
//! onto the fresh pool (`1..=k` in original-id order). Property-tested over
//! `(N, t)`, batch size, id layout and both backends, for the log-time and
//! two-step regimes.

use opr::prelude::*;
use opr::service::{epoch_seed, LedgerEvent, ServiceConfig, ServiceEngine, ServiceOp};
use opr::types::NewName;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Distributions whose ids stay ≲ 2⁴⁰, leaving the service's filler ids
/// comfortable headroom below `N_max = 2⁴⁸`.
fn distribution() -> impl Strategy<Value = IdDistribution> {
    proptest::sample::select(vec![
        IdDistribution::Dense,
        IdDistribution::Clustered,
        IdDistribution::EvenSpaced,
    ])
}

fn adversary_for(regime: Regime) -> impl Strategy<Value = AdversarySpec> {
    proptest::sample::select(AdversarySpec::suite(regime).to_vec())
}

/// A legal `(n, t)` with `t ≥ 1` for the regime.
fn config_for(regime: Regime) -> impl Strategy<Value = (usize, usize)> {
    (1usize..=2).prop_flat_map(move |t| {
        let min_n = SystemConfig::minimal_n(t, regime);
        (min_n..min_n + 4).prop_map(move |n| (n, t))
    })
}

/// Runs the one-shard one-epoch service on `batch` acquires and checks both
/// halves of the reduction against the direct run.
#[allow(clippy::too_many_arguments)]
fn assert_reduces(
    regime: Regime,
    n: usize,
    t: usize,
    batch: usize,
    dist: IdDistribution,
    spec: AdversarySpec,
    seed: u64,
    backend: BackendKind,
) {
    let cfg = SystemConfig::new(n, t).unwrap();
    let capacity = n - t;
    let batch = batch.clamp(1, capacity);
    let originals = dist.generate(batch, seed);

    let service = ServiceConfig {
        shards: 1,
        epoch_cfg: cfg,
        regime,
        byzantine: t,
        adversary: spec,
        backend,
        queue_capacity: capacity.max(1),
        shard_span: capacity as u64 + 8,
        seed,
    };
    let mut engine = ServiceEngine::new(service).unwrap();
    for (i, &original) in originals.iter().enumerate() {
        assert!(engine.submit(ServiceOp::Acquire {
            client: ClientId::new(i as u64),
            original,
        }));
    }
    engine.run_epoch(&RunPool::serial()).unwrap();

    // The direct run on the same inputs: the service pads its batch with
    // filler ids directly above the largest real id, up to the instance
    // width, and uses the epoch-0 derived seed.
    let max_real = originals.iter().map(|o| o.raw()).max().unwrap();
    let ids: Vec<OriginalId> = originals
        .iter()
        .copied()
        .chain((1..=(capacity - batch) as u64).map(|i| OriginalId::new(max_real + i)))
        .collect();
    let direct = RenamingRun::builder(cfg, regime)
        .correct_ids(ids)
        .adversary(spec, t)
        .seed(epoch_seed(seed, 0, 0))
        .backend(backend)
        .run()
        .unwrap();

    let granted: BTreeMap<OriginalId, (NewName, u64)> = engine
        .ledger()
        .iter()
        .map(|event| match event {
            LedgerEvent::Grant(g) => (g.original, (g.protocol_name, g.name)),
            other => panic!("no releases were submitted, got {other:?}"),
        })
        .collect();
    assert_eq!(granted.len(), batch, "every request granted in one epoch");

    // Half one: protocol names are bit-identical to the direct run.
    for (&original, &(protocol_name, _)) in &granted {
        assert_eq!(
            Some(protocol_name),
            direct.outcome.name_of(original),
            "protocol name mismatch for {original:?}"
        );
    }
    // Half two: service names are the compaction onto the fresh pool —
    // 1..=batch, ascending in original-id order (order preservation).
    let service_names: Vec<u64> = granted.values().map(|&(_, name)| name).collect();
    assert_eq!(
        service_names,
        (1..=batch as u64).collect::<Vec<_>>(),
        "fresh-pool compaction must grant 1..=k in original order"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn one_shard_one_epoch_reduces_to_a_direct_run_log_time(
        (n, t) in config_for(Regime::LogTime),
        batch in 1usize..8,
        dist in distribution(),
        spec in adversary_for(Regime::LogTime),
        seed in 0u64..1000,
    ) {
        for backend in BackendKind::ALL {
            assert_reduces(Regime::LogTime, n, t, batch, dist, spec, seed, backend);
        }
    }

    #[test]
    fn one_shard_one_epoch_reduces_to_a_direct_run_two_step(
        (n, t) in config_for(Regime::TwoStep),
        batch in 1usize..8,
        dist in distribution(),
        spec in adversary_for(Regime::TwoStep),
        seed in 0u64..1000,
    ) {
        for backend in BackendKind::ALL {
            assert_reduces(Regime::TwoStep, n, t, batch, dist, spec, seed, backend);
        }
    }
}
