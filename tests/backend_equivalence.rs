//! Cross-backend equivalence: the thread-per-process substrate *and* the
//! task-scheduled worker-pool substrate must be observationally
//! indistinguishable from the single-threaded reference simulator. For any
//! legal `(N, t, seed, adversary, id distribution)`, all three backends
//! must produce identical renaming outcomes, round counts and message/bit
//! metrics — the tentpole guarantee of `opr-transport`.

use opr::prelude::*;
use opr::workload::RenamingRun;
use proptest::prelude::*;

/// Strategy: a legal (n, t) for the given regime, with t ≥ 1 so the
/// adversary is never vacuous.
fn config_for(regime: Regime) -> impl Strategy<Value = (usize, usize)> {
    (1usize..=3).prop_flat_map(move |t| {
        let min_n = SystemConfig::minimal_n(t, regime);
        (min_n..min_n + 5).prop_map(move |n| (n, t))
    })
}

fn adversary_for(regime: Regime) -> impl Strategy<Value = AdversarySpec> {
    let suite: Vec<AdversarySpec> = AdversarySpec::suite(regime).to_vec();
    proptest::sample::select(suite)
}

fn distribution() -> impl Strategy<Value = IdDistribution> {
    proptest::sample::select(IdDistribution::ALL.to_vec())
}

/// Runs the same configuration on every backend and asserts each
/// observable equals the sim reference's.
fn assert_backends_agree(
    regime: Regime,
    n: usize,
    t: usize,
    spec: AdversarySpec,
    dist: IdDistribution,
    seed: u64,
) {
    let cfg = SystemConfig::new(n, t).unwrap();
    let ids = dist.generate(n - t, seed);
    let run = |backend: BackendKind| {
        RenamingRun::builder(cfg, regime)
            .correct_ids(ids.clone())
            .adversary(spec, t)
            .seed(seed)
            .backend(backend)
            .run()
            .unwrap()
    };
    let sim = run(BackendKind::Sim);
    for backend in [BackendKind::Threaded, BackendKind::Pooled] {
        let other = run(backend);
        let tag = format!("{backend}: {spec}/{dist}/N{n}t{t}s{seed}");
        assert_eq!(sim.outcome, other.outcome, "outcome: {tag}");
        assert_eq!(sim.stats.rounds, other.stats.rounds, "rounds: {tag}");
        assert_eq!(sim.stats.messages, other.stats.messages, "messages: {tag}");
        assert_eq!(sim.stats.bits, other.stats.bits, "bits: {tag}");
        assert_eq!(
            sim.stats.max_message_bits, other.stats.max_message_bits,
            "max bits: {tag}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn alg1_log_time_backends_agree(
        (n, t) in config_for(Regime::LogTime),
        spec in adversary_for(Regime::LogTime),
        dist in distribution(),
        seed in 0u64..1000,
    ) {
        assert_backends_agree(Regime::LogTime, n, t, spec, dist, seed);
    }

    #[test]
    fn alg1_constant_time_backends_agree(
        (n, t) in config_for(Regime::ConstantTime),
        spec in adversary_for(Regime::ConstantTime),
        dist in distribution(),
        seed in 0u64..1000,
    ) {
        assert_backends_agree(Regime::ConstantTime, n, t, spec, dist, seed);
    }

    #[test]
    fn two_step_backends_agree(
        (n, t) in config_for(Regime::TwoStep),
        spec in adversary_for(Regime::TwoStep),
        dist in distribution(),
        seed in 0u64..1000,
    ) {
        assert_backends_agree(Regime::TwoStep, n, t, spec, dist, seed);
    }
}

// Sealed-broadcast pin for the zero-copy fan-out: shared payloads must be
// observationally invisible. For arbitrary chaos schedules — Byzantine
// placements, transport faults, payload caps — both backends must produce
// bit-identical diagnosed runs *and* byte-identical rendered delivery
// traces. The trace comparison is what exercises `Sealed`'s cached `Debug`
// rendering on every delivery event; the `DiagnosedRun` comparison covers
// outcomes, metrics, rounds, malformed sends, masks and exclusions.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sealed_broadcast_delivery_is_bit_identical_across_backends(
        seed in 0u64..100_000,
        budget in proptest::sample::select(opr::chaos::BudgetRegime::ALL.to_vec()),
    ) {
        let schedule = opr::chaos::generate_schedule(seed, budget);
        let capacity = 1usize << 16;
        let run = |backend: BackendKind| {
            schedule
                .run_traced(backend, capacity)
                .expect("chaos schedules are legal by construction")
        };
        let sim = run(BackendKind::Sim);
        let tag = schedule.describe();
        let rendered = |run: &opr::workload::DiagnosedRun| -> Vec<String> {
            run.trace
                .as_ref()
                .expect("trace requested")
                .events()
                .iter()
                .map(|event| event.to_string())
                .collect()
        };
        for backend in [BackendKind::Threaded, BackendKind::Pooled] {
            let other = run(backend);
            prop_assert_eq!(&sim, &other, "diagnosed run on {}: {}", backend, tag);
            prop_assert_eq!(rendered(&sim), rendered(&other), "trace on {}: {}", backend, tag);
        }
    }
}

// The telemetry determinism gate: a correct process's protocol event
// stream is a pure function of its delivered messages, so attaching the
// recorder to both backends must yield bit-identical `RunLog`s — and, by
// extension, byte-identical JSONL renderings (the exporter is a pure
// function of the log). Network metrics are part of the same contract
// (satellite of the observability PR): the per-round counters must agree
// exactly for any chaos schedule, in and out of budget.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn protocol_event_streams_are_bit_identical_across_backends(
        seed in 0u64..100_000,
        budget in proptest::sample::select(opr::chaos::BudgetRegime::ALL.to_vec()),
    ) {
        let schedule = opr::chaos::generate_schedule(seed, budget);
        let run = |backend: BackendKind| {
            schedule
                .run_observed(backend, None)
                .expect("chaos schedules are legal by construction")
        };
        let sim = run(BackendKind::Sim);
        let tag = schedule.describe();
        let sim_log = sim.events.as_ref().expect("recorder attached");
        for backend in [BackendKind::Threaded, BackendKind::Pooled] {
            let other = run(backend);
            let other_log = other.events.as_ref().expect("recorder attached");
            prop_assert_eq!(sim_log, other_log, "event streams on {}: {}", backend, tag);
            prop_assert_eq!(
                opr::obs::render_jsonl(sim_log),
                opr::obs::render_jsonl(other_log),
                "JSONL bytes on {}: {}",
                backend,
                tag
            );
        }
        // One log per correct process, every process attributed.
        prop_assert_eq!(
            sim_log.processes.len(),
            schedule.n - schedule.byzantine,
            "process coverage: {}",
            tag
        );
    }

    #[test]
    fn run_metrics_agree_across_backends(
        seed in 0u64..100_000,
        budget in proptest::sample::select(opr::chaos::BudgetRegime::ALL.to_vec()),
    ) {
        let schedule = opr::chaos::generate_schedule(seed, budget);
        let sim = schedule
            .run_on(BackendKind::Sim)
            .expect("chaos schedules are legal by construction");
        let tag = schedule.describe();
        for backend in [BackendKind::Threaded, BackendKind::Pooled] {
            let other = schedule
                .run_on(backend)
                .expect("chaos schedules are legal by construction");
            prop_assert_eq!(&sim.metrics, &other.metrics, "metrics on {}: {}", backend, tag);
        }
        prop_assert_eq!(
            sim.metrics.rounds_executed(),
            sim.rounds,
            "round counters: {}",
            tag
        );
    }

    /// The deterministic `MetricsSnapshot` fold — counters, gauges and the
    /// per-round message histogram, including the event-derived quorum and
    /// vote counters — is bit-identical across all three backends.
    #[test]
    fn deterministic_metrics_snapshots_agree_across_backends(
        seed in 0u64..100_000,
        budget in proptest::sample::select(opr::chaos::BudgetRegime::ALL.to_vec()),
    ) {
        let schedule = opr::chaos::generate_schedule(seed, budget);
        let tag = schedule.describe();
        let reference = schedule
            .run_observed(BackendKind::Sim, None)
            .expect("chaos schedules are legal by construction")
            .metrics_snapshot();
        prop_assert!(!reference.is_empty(), "snapshot never empty: {}", tag);
        for backend in [BackendKind::Threaded, BackendKind::Pooled] {
            let other = schedule
                .run_observed(backend, None)
                .expect("chaos schedules are legal by construction")
                .metrics_snapshot();
            prop_assert_eq!(&reference, &other, "snapshot on {}: {}", backend, tag);
        }
    }
}

/// Every adversary in both suites, deterministically (not sampled): the
/// equivalence must hold for each strategy, not just most of them.
#[test]
fn every_adversary_agrees_across_backends() {
    for spec in AdversarySpec::ALG1 {
        assert_backends_agree(Regime::LogTime, 7, 2, spec, IdDistribution::SparseRandom, 5);
    }
    for spec in AdversarySpec::TWO_STEP {
        assert_backends_agree(Regime::TwoStep, 11, 2, spec, IdDistribution::Clustered, 9);
    }
}

/// A probe actor that broadcasts its own index every round and records,
/// per round, which senders' messages arrived — a transport-level
/// observation instrument for pinning fault-onset semantics.
struct Probe {
    me: usize,
    rounds: u32,
    seen: Vec<Vec<usize>>,
}

impl opr::sim::Actor for Probe {
    type Msg = OriginalId;
    type Output = Vec<Vec<usize>>;

    fn send(&mut self, _round: Round) -> opr::sim::Outbox<OriginalId> {
        opr::sim::Outbox::Broadcast(OriginalId::new(self.me as u64))
    }

    fn deliver(&mut self, _round: Round, inbox: opr::sim::Inbox<OriginalId>) {
        let mut senders: Vec<usize> = inbox.messages().map(|(_, m)| m.raw() as usize).collect();
        senders.sort_unstable();
        self.seen.push(senders);
    }

    fn output(&self) -> Option<Vec<Vec<usize>>> {
        (self.seen.len() as u32 >= self.rounds).then(|| self.seen.clone())
    }
}

/// Runs `n` probes for `rounds` rounds under `plan` and returns, for each
/// receiver, the per-round sorted list of sender indices it heard from.
fn probe_deliveries(
    backend: BackendKind,
    n: usize,
    rounds: u32,
    plan: FaultPlan,
) -> Vec<Vec<Vec<usize>>> {
    let topology = opr::sim::Topology::seeded(n, 7);
    let actors: Vec<Box<dyn opr::sim::Actor<Msg = OriginalId, Output = Vec<Vec<usize>>>>> = (0..n)
        .map(|me| {
            Box::new(Probe {
                me,
                rounds,
                seen: Vec::new(),
            }) as Box<dyn opr::sim::Actor<Msg = OriginalId, Output = Vec<Vec<usize>>>>
        })
        .collect();
    let report = backend.execute(opr::transport::Job::new(actors, topology, rounds).faults(plan));
    assert!(report.completed, "probe run must complete");
    report
        .outputs
        .into_iter()
        .map(|o| o.expect("every probe outputs"))
        .collect()
}

/// Regression pin for the silence-onset boundary: a link silenced "from
/// round r" delivers its message in round r−1 and drops it in round r —
/// exactly, on both backends, with no off-by-one drift between them.
#[test]
fn link_silence_onset_boundary_is_exact_on_both_backends() {
    let n = 5;
    let rounds = 5u32;
    let onset = 3u32;
    let sender = 0usize;
    let link = LinkId::new(2);
    // Same topology seed as `probe_deliveries` — resolve the victim (the
    // peer `sender` reaches over `link`; link labels < n are never the
    // self-loop).
    let victim = opr::sim::Topology::seeded(n, 7)
        .peer(ProcessIndex::new(sender), link)
        .index();
    assert_ne!(victim, sender);
    let plan = FaultPlan::new().silence_link_from(sender, link, Round::new(onset));
    for backend in BackendKind::ALL {
        let seen = probe_deliveries(backend, n, rounds, plan.clone());
        // The boundary itself, stated explicitly: round onset−1 delivers,
        // round onset drops.
        assert!(
            seen[victim][(onset - 2) as usize].contains(&sender),
            "{backend}: round {} must still deliver",
            onset - 1
        );
        assert!(
            !seen[victim][(onset - 1) as usize].contains(&sender),
            "{backend}: round {onset} must drop"
        );
        // And the full delivery matrix: only (victim, round ≥ onset) is
        // affected.
        for (receiver, rows) in seen.iter().enumerate() {
            for r in 1..=rounds {
                let got = rows[(r - 1) as usize].contains(&sender);
                let expect = !(receiver == victim && r >= onset);
                assert_eq!(got, expect, "{backend}: receiver {receiver} round {r}");
            }
        }
    }
}

/// The same boundary for process-wide silence: a crash "from round r"
/// delivers on every link in round r−1 and on none from round r.
#[test]
fn crash_onset_boundary_is_exact_on_both_backends() {
    let n = 5;
    let rounds = 5u32;
    let onset = 3u32;
    let sender = 1usize;
    let plan = FaultPlan::new().crash_from(sender, Round::new(onset));
    for backend in BackendKind::ALL {
        let seen = probe_deliveries(backend, n, rounds, plan.clone());
        for receiver in (0..n).filter(|&r| r != sender) {
            for r in 1..=rounds {
                let got = seen[receiver][(r - 1) as usize].contains(&sender);
                assert_eq!(got, r < onset, "{backend}: receiver {receiver} round {r}");
            }
        }
    }
}

/// Crash composition: silencing a correct process at `Round::FIRST` is
/// observationally identical — to every receiver and to the oracle's
/// judged set — to removing that process from the correct set and placing
/// a silent Byzantine actor at its index. The diagnosed outcomes must
/// match exactly, on both backends.
#[test]
fn crash_at_first_round_composes_as_removal_from_correct_set() {
    for regime in [Regime::LogTime, Regime::ConstantTime, Regime::TwoStep] {
        let t = 1usize;
        let n = SystemConfig::minimal_n(t, regime) + 2;
        let cfg = SystemConfig::new(n, t).unwrap();
        let seed = 13u64;
        // The index a 1-fault placement picks under this seed — the crash
        // victim, so both runs disturb the same process.
        let placement = opr::core::fault_placement(n, 1, seed);
        let victim = placement.iter().position(|&f| f).unwrap();
        let all_ids = IdDistribution::SparseRandom.generate(n, 21);
        let reduced_ids: Vec<OriginalId> = all_ids
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, _)| i != victim)
            .map(|(_, id)| id)
            .collect();
        for backend in BackendKind::ALL {
            // Run A: everyone correct, the victim crashed by the transport
            // before it can send anything.
            let crashed = RenamingRun::builder(cfg, regime)
                .correct_ids(all_ids.clone())
                .adversary(AdversarySpec::Silent, 0)
                .seed(seed)
                .backend(backend)
                .faults(FaultPlan::new().crash_from(victim, Round::FIRST))
                .run_diagnosed()
                .unwrap();
            // Run B: the victim's index is a silent Byzantine process and
            // its id is gone from the correct set.
            let removed = RenamingRun::builder(cfg, regime)
                .correct_ids(reduced_ids.clone())
                .adversary(AdversarySpec::Silent, 1)
                .seed(seed)
                .backend(backend)
                .run_diagnosed()
                .unwrap();
            let tag = format!("{regime:?}/{backend}");
            assert_eq!(crashed.excluded, vec![all_ids[victim]], "excluded: {tag}");
            assert_eq!(crashed.effective_faults(), 1, "effective: {tag}");
            assert_eq!(removed.effective_faults(), 1, "effective: {tag}");
            assert_eq!(crashed.degraded, removed.degraded, "diagnosis: {tag}");
            assert!(
                crashed.degraded.violations.is_empty(),
                "one fault is within budget: {tag}"
            );
        }
    }
}

/// Baselines execute on every substrate too (they go through the same
/// `Job`/`Substrate` path in the workload harness).
#[test]
fn baselines_agree_across_backends() {
    use opr::workload::Algorithm;
    for alg in Algorithm::ALL {
        let t = 1usize;
        let n = alg.minimal_n(t).max(6);
        let cfg = SystemConfig::new(n, t).unwrap();
        let ids = IdDistribution::EvenSpaced.generate(n - t, 4);
        let sim = alg
            .run_on(BackendKind::Sim, cfg, &ids, t, AdversarySpec::Silent, 4)
            .unwrap();
        for backend in [BackendKind::Threaded, BackendKind::Pooled] {
            let other = alg
                .run_on(backend, cfg, &ids, t, AdversarySpec::Silent, 4)
                .unwrap();
            assert_eq!(sim.rounds, other.rounds, "{alg} on {backend}");
            assert_eq!(sim.messages, other.messages, "{alg} on {backend}");
            assert_eq!(sim.bits, other.bits, "{alg} on {backend}");
            assert_eq!(sim.max_name, other.max_name, "{alg} on {backend}");
            assert_eq!(sim.violations, other.violations, "{alg} on {backend}");
        }
    }
}
