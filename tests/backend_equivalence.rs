//! Cross-backend equivalence: the thread-per-process substrate must be
//! observationally indistinguishable from the single-threaded reference
//! simulator. For any legal `(N, t, seed, adversary, id distribution)`, both
//! backends must produce identical renaming outcomes, round counts and
//! message/bit metrics — the tentpole guarantee of `opr-transport`.

use opr::prelude::*;
use opr::workload::RenamingRun;
use proptest::prelude::*;

/// Strategy: a legal (n, t) for the given regime, with t ≥ 1 so the
/// adversary is never vacuous.
fn config_for(regime: Regime) -> impl Strategy<Value = (usize, usize)> {
    (1usize..=3).prop_flat_map(move |t| {
        let min_n = SystemConfig::minimal_n(t, regime);
        (min_n..min_n + 5).prop_map(move |n| (n, t))
    })
}

fn adversary_for(regime: Regime) -> impl Strategy<Value = AdversarySpec> {
    let suite: Vec<AdversarySpec> = AdversarySpec::suite(regime).to_vec();
    proptest::sample::select(suite)
}

fn distribution() -> impl Strategy<Value = IdDistribution> {
    proptest::sample::select(IdDistribution::ALL.to_vec())
}

/// Runs the same configuration on both backends and asserts every
/// observable is equal.
fn assert_backends_agree(
    regime: Regime,
    n: usize,
    t: usize,
    spec: AdversarySpec,
    dist: IdDistribution,
    seed: u64,
) {
    let cfg = SystemConfig::new(n, t).unwrap();
    let ids = dist.generate(n - t, seed);
    let run = |backend: BackendKind| {
        RenamingRun::builder(cfg, regime)
            .correct_ids(ids.clone())
            .adversary(spec, t)
            .seed(seed)
            .backend(backend)
            .run()
            .unwrap()
    };
    let sim = run(BackendKind::Sim);
    let threaded = run(BackendKind::Threaded);
    let tag = format!("{spec}/{dist}/N{n}t{t}s{seed}");
    assert_eq!(sim.outcome, threaded.outcome, "outcome: {tag}");
    assert_eq!(sim.stats.rounds, threaded.stats.rounds, "rounds: {tag}");
    assert_eq!(
        sim.stats.messages, threaded.stats.messages,
        "messages: {tag}"
    );
    assert_eq!(sim.stats.bits, threaded.stats.bits, "bits: {tag}");
    assert_eq!(
        sim.stats.max_message_bits, threaded.stats.max_message_bits,
        "max bits: {tag}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn alg1_log_time_backends_agree(
        (n, t) in config_for(Regime::LogTime),
        spec in adversary_for(Regime::LogTime),
        dist in distribution(),
        seed in 0u64..1000,
    ) {
        assert_backends_agree(Regime::LogTime, n, t, spec, dist, seed);
    }

    #[test]
    fn alg1_constant_time_backends_agree(
        (n, t) in config_for(Regime::ConstantTime),
        spec in adversary_for(Regime::ConstantTime),
        dist in distribution(),
        seed in 0u64..1000,
    ) {
        assert_backends_agree(Regime::ConstantTime, n, t, spec, dist, seed);
    }

    #[test]
    fn two_step_backends_agree(
        (n, t) in config_for(Regime::TwoStep),
        spec in adversary_for(Regime::TwoStep),
        dist in distribution(),
        seed in 0u64..1000,
    ) {
        assert_backends_agree(Regime::TwoStep, n, t, spec, dist, seed);
    }
}

/// Every adversary in both suites, deterministically (not sampled): the
/// equivalence must hold for each strategy, not just most of them.
#[test]
fn every_adversary_agrees_across_backends() {
    for spec in AdversarySpec::ALG1 {
        assert_backends_agree(Regime::LogTime, 7, 2, spec, IdDistribution::SparseRandom, 5);
    }
    for spec in AdversarySpec::TWO_STEP {
        assert_backends_agree(Regime::TwoStep, 11, 2, spec, IdDistribution::Clustered, 9);
    }
}

/// Baselines execute on both substrates too (they go through the same
/// `Job`/`Substrate` path in the workload harness).
#[test]
fn baselines_agree_across_backends() {
    use opr::workload::Algorithm;
    for alg in Algorithm::ALL {
        let t = 1usize;
        let n = alg.minimal_n(t).max(6);
        let cfg = SystemConfig::new(n, t).unwrap();
        let ids = IdDistribution::EvenSpaced.generate(n - t, 4);
        let sim = alg
            .run_on(BackendKind::Sim, cfg, &ids, t, AdversarySpec::Silent, 4)
            .unwrap();
        let threaded = alg
            .run_on(
                BackendKind::Threaded,
                cfg,
                &ids,
                t,
                AdversarySpec::Silent,
                4,
            )
            .unwrap();
        assert_eq!(sim.rounds, threaded.rounds, "{alg}");
        assert_eq!(sim.messages, threaded.messages, "{alg}");
        assert_eq!(sim.bits, threaded.bits, "{alg}");
        assert_eq!(sim.max_name, threaded.max_name, "{alg}");
        assert_eq!(sim.violations, threaded.violations, "{alg}");
    }
}
