//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of proptest's API the workspace uses: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, numeric range strategies,
//! `collection::{vec, btree_set}`, `sample::select`, `prop_assert*` and
//! `prop_assume!`.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * **Deterministic cases.** Inputs are drawn from a splitmix64 stream
//!   seeded by the test's name, so every run explores the same cases —
//!   failures reproduce without a persistence file.
//! * **No shrinking.** A failing case panics with its inputs via the normal
//!   assertion message; there is no minimization pass.

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-case random source (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one test case.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty range");
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            let mid = self.inner.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` of roughly `size` elements drawn from `element`.
    ///
    /// If the element domain is too small to reach the drawn size, the set
    /// is as large as a bounded number of draws allows (upstream proptest
    /// rejects such cases; this shim keeps them, which only makes tests
    /// cover *more* small sets).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 16 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod sample {
    //! Sampling from explicit value lists.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy choosing uniformly among fixed values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options` (which must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares deterministic property tests; see the crate docs for semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                // FNV-1a over the test name: a stable per-test seed base.
                let mut __base = 0xcbf2_9ce4_8422_2325u64;
                for __b in stringify!($name).bytes() {
                    __base = (__base ^ __b as u64).wrapping_mul(0x1_0000_0001_b3);
                }
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        __base ^ (__case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let mut __case_fn = || $body;
                    __case_fn();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..=3).prop_flat_map(|t| (10 * t..10 * t + 5).prop_map(move |n| (n, t)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, u in 3usize..9, f in -2.0f64..2.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((3..9).contains(&u));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn flat_map_dependencies_hold((n, t) in pair()) {
            prop_assert!(n >= 10 * t && n < 10 * t + 5);
        }

        #[test]
        fn collections_respect_size(v in crate::collection::vec(0i32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0..10).contains(x)));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn select_picks_from_options(c in crate::sample::select(vec!['a', 'b', 'c'])) {
            prop_assert!(['a', 'b', 'c'].contains(&c));
        }
    }

    #[test]
    fn btree_set_hits_target_sizes() {
        let strat = crate::collection::btree_set(1i64..100, 2..10);
        let mut rng = crate::test_runner::TestRng::new(5);
        for _ in 0..50 {
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(s.len() >= 2 && s.len() < 10, "{}", s.len());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = crate::collection::vec(0i32..1000, 5..20);
        let a: Vec<_> = {
            let mut rng = crate::test_runner::TestRng::new(99);
            (0..10)
                .map(|_| crate::strategy::Strategy::generate(&strat, &mut rng))
                .collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::test_runner::TestRng::new(99);
            (0..10)
                .map(|_| crate::strategy::Strategy::generate(&strat, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }
}
