//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform range sampling
//! ([`Rng::gen_range`]) and slice shuffling ([`seq::SliceRandom`]).
//!
//! The generator is a splitmix64 core — statistically fine for simulation
//! workloads, completely unsuitable for cryptography. Sequences differ from
//! upstream `rand`'s `StdRng` (ChaCha12); nothing in this workspace depends
//! on upstream sequences, only on determinism for a fixed seed.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly,
/// producing `T`. Generic over the output (as in upstream `rand`) so
/// integer literals in `gen_range(0..100)` infer their type from context.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range!(f64);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit as f32
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((0.0f64..1.0).sample(self)) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (the shim's only engine).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }
    }
}

pub mod seq {
    //! Slice utilities, mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// In-place shuffling for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// A random element with probability proportional to its weight,
        /// mirroring upstream's `choose_weighted`: `weight` maps each
        /// element to a non-negative `f64`.
        ///
        /// # Errors
        ///
        /// [`WeightError`] if the slice is empty, a weight is negative or
        /// non-finite, or all weights are zero.
        fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Result<&Self::Item, WeightError>
        where
            R: RngCore,
            F: FnMut(&Self::Item) -> f64;

        /// `amount` distinct elements sampled without replacement, in
        /// selection order (a partial Fisher–Yates over indices, as
        /// upstream). Returns all elements when `amount ≥ len`.
        fn choose_multiple<R: RngCore>(&self, rng: &mut R, amount: usize) -> Vec<&Self::Item>;
    }

    /// Why weighted choice failed.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum WeightError {
        /// The slice was empty.
        Empty,
        /// A weight was negative, NaN or infinite.
        InvalidWeight,
        /// Every weight was zero.
        AllZero,
    }

    impl core::fmt::Display for WeightError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                WeightError::Empty => f.write_str("cannot choose from an empty slice"),
                WeightError::InvalidWeight => f.write_str("weights must be finite and >= 0"),
                WeightError::AllZero => f.write_str("at least one weight must be positive"),
            }
        }
    }

    impl std::error::Error for WeightError {}

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_weighted<R, F>(&self, rng: &mut R, mut weight: F) -> Result<&T, WeightError>
        where
            R: RngCore,
            F: FnMut(&T) -> f64,
        {
            if self.is_empty() {
                return Err(WeightError::Empty);
            }
            let weights: Vec<f64> = self.iter().map(&mut weight).collect();
            if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                return Err(WeightError::InvalidWeight);
            }
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                return Err(WeightError::AllZero);
            }
            let mut target = rng.gen_range(0.0..total);
            for (item, w) in self.iter().zip(&weights) {
                if target < *w {
                    return Ok(item);
                }
                target -= w;
            }
            // Float summation slack: the last positively-weighted element.
            Ok(self
                .iter()
                .zip(&weights)
                .rev()
                .find(|(_, &w)| w > 0.0)
                .map(|(item, _)| item)
                .expect("total > 0 implies a positive weight"))
        }

        fn choose_multiple<R: RngCore>(&self, rng: &mut R, amount: usize) -> Vec<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..amount].iter().map(|&i| &self[i]).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-10i32..10);
            assert!((-10..10).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_weighted_respects_weights() {
        use super::seq::WeightError;
        let mut rng = StdRng::seed_from_u64(5);
        let items = ["rare", "common"];
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            let picked = items.choose_weighted(&mut rng, |&s| if s == "rare" { 1.0 } else { 9.0 });
            counts[if *picked.unwrap() == "rare" { 0 } else { 1 }] += 1;
        }
        // Expected 10% / 90%: allow a generous band.
        assert!(
            counts[0] > 50 && counts[0] < 400,
            "rare picked {}",
            counts[0]
        );
        // Zero-weight elements are never selected.
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..500 {
            let picked = *items
                .choose_weighted(&mut rng, |&s| if s == "rare" { 0.0 } else { 1.0 })
                .unwrap();
            assert_eq!(picked, "common");
        }
        // Error cases.
        let empty: [&str; 0] = [];
        assert_eq!(
            empty.choose_weighted(&mut rng, |_| 1.0).unwrap_err(),
            WeightError::Empty
        );
        assert_eq!(
            items.choose_weighted(&mut rng, |_| -1.0).unwrap_err(),
            WeightError::InvalidWeight
        );
        assert_eq!(
            items.choose_weighted(&mut rng, |_| 0.0).unwrap_err(),
            WeightError::AllZero
        );
    }

    #[test]
    fn choose_multiple_samples_distinct_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let pool: Vec<u32> = (0..20).collect();
        for amount in [0usize, 1, 7, 20, 25] {
            let picked = pool.choose_multiple(&mut rng, amount);
            assert_eq!(picked.len(), amount.min(20));
            let mut values: Vec<u32> = picked.into_iter().copied().collect();
            values.sort_unstable();
            values.dedup();
            assert_eq!(values.len(), amount.min(20), "distinct");
        }
        // Deterministic for a fixed seed.
        let a: Vec<u32> = pool
            .choose_multiple(&mut StdRng::seed_from_u64(1), 5)
            .into_iter()
            .copied()
            .collect();
        let b: Vec<u32> = pool
            .choose_multiple(&mut StdRng::seed_from_u64(1), 5)
            .into_iter()
            .copied()
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
