//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!`/`criterion_main!`/`Criterion` surface the
//! workspace's benches use, measuring wall-clock time with `std::time` and
//! writing a `BENCH_<target>.json` report next to the working directory.
//! There is no statistical analysis beyond warmup plus a mean over an
//! adaptive number of iterations — enough for coarse comparisons in an
//! environment where the real criterion cannot be downloaded.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (std's is stable since 1.66).
pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Group name (from [`Criterion::benchmark_group`]).
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Iterations measured (after warmup).
    pub iterations: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
}

/// The benchmark driver: collects [`Measurement`]s as groups run.
pub struct Criterion {
    measurements: Vec<Measurement>,
    /// Target measuring time per benchmark.
    measurement_time: Duration,
    /// Target warmup time per benchmark.
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurements: Vec::new(),
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(60),
        }
    }
}

impl Criterion {
    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Overrides the per-benchmark warmup budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.run_one("", &name, f);
        self
    }

    fn run_one<F>(&mut self, group: &str, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iterations == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64
        };
        let label = if group.is_empty() {
            name.to_string()
        } else {
            format!("{group}/{name}")
        };
        eprintln!(
            "bench {label:<40} {:>12.1} ns/iter ({} iters)",
            mean_ns, bencher.iterations
        );
        self.measurements.push(Measurement {
            group: group.to_string(),
            name: name.to_string(),
            iterations: bencher.iterations,
            mean_ns,
        });
    }

    /// All measurements collected so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Writes `BENCH_<target>.json` (target = executable stem without the
    /// trailing cargo hash) into the current directory.
    pub fn write_json_report(&self) {
        let stem = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "bench".to_string());
        // cargo names bench executables `<name>-<16-hex-hash>`.
        let target = match stem.rsplit_once('-') {
            Some((base, tail))
                if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) =>
            {
                base.to_string()
            }
            _ => stem,
        };
        let path = format!("BENCH_{target}.json");
        if let Err(e) = std::fs::write(&path, self.to_json()) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            eprintln!("wrote {path}");
        }
    }

    /// The report as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, m) in self.measurements.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"name\": \"{}\", \"iterations\": {}, \"mean_ns\": {:.1}}}",
                escape(&m.group),
                escape(&m.name),
                m.iterations,
                m.mean_ns
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A named group of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measures one closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let group = self.name.clone();
        self.criterion.run_one(&group, &id, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, adapting the iteration count to the configured
    /// measurement budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup: also yields a per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = target;
    }
}

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` for a bench target: runs every group, then writes the
/// JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.bench_function("work", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        assert_eq!(c.measurements().len(), 1);
        let m = &c.measurements()[0];
        assert_eq!(m.group, "g");
        assert_eq!(m.name, "work");
        assert!(m.iterations > 0);
        assert!(m.mean_ns > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let json = c.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"name\": \"standalone\""));
        assert!(json.trim_end().ends_with(']'));
    }
}
