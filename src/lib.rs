#![warn(missing_docs)]
//! # opr — Order-Preserving Renaming with Byzantine Faults
//!
//! Facade crate for the workspace reproducing Denysyuk & Rodrigues,
//! *Order-Preserving Renaming in Synchronous Systems with Byzantine Faults*
//! (ICDCS 2013). Re-exports the public API of every member crate:
//!
//! * [`types`] — ids, configuration, ranks, outcome checkers.
//! * [`sim`] — the synchronous full-mesh network simulator.
//! * [`aa`] — approximate-agreement building blocks (multisets, `select_t`,
//!   standalone Byzantine/crash AA protocols).
//! * [`rbcast`] — Echo/Ready flooding substrate (the id-selection core).
//! * [`consensus`] — phase-king Byzantine consensus (baseline substrate).
//! * [`transport`] — pluggable lock-step execution substrates (the
//!   deterministic simulator backend and the thread-per-process backend)
//!   plus transport-level fault injection.
//! * [`core`] — the paper's algorithms: Algorithm 1 (log-time and
//!   constant-time schedules) and Algorithm 4 (2-step).
//! * [`adversary`] — the Byzantine strategy library.
//! * [`baselines`] — comparator algorithms from the related work.
//! * [`workload`] — experiment harness, sweeps, table rendering.
//! * [`chaos`] — randomized fault-schedule campaigns: seeded schedule
//!   generation, paper-invariant oracles, counterexample shrinking and
//!   replayable repro files.
//! * [`exec`] — run-level parallel execution: a std-only [`RunPool`]
//!   (fixed workers + `mpsc` queue) that reassembles batch results in
//!   submission order so multi-run drivers stay observably serial.
//! * [`obs`] — deterministic protocol telemetry: a decision-point event
//!   recorder threaded through the protocol layers, JSONL and Perfetto
//!   (Chrome trace-event) exporters, and a wall-clock span layer kept
//!   strictly separate from the deterministic stream.
//! * [`metrics`] — always-on aggregates: a sharded [`MetricsRegistry`] of
//!   counters/gauges/log-bucketed histograms, deterministic
//!   `MetricsSnapshot` folds from run artefacts, Prometheus text exposition,
//!   an ANSI dashboard, and a flight-recorder ring for post-mortem dumps.
//! * [`service`] — renaming-as-a-service: a multi-tenant epoch engine with
//!   a bounded admission queue, sharded namespaces, per-epoch protocol
//!   instances dispatched over the [`RunPool`], name recycling with a
//!   cross-epoch uniqueness ledger, and its own oracle/repro layer.
//!
//! [`RunPool`]: exec::RunPool
//! [`MetricsRegistry`]: metrics::MetricsRegistry
//!
//! # Quickstart
//!
//! ```
//! use opr::prelude::*;
//!
//! // 10 processes, up to 3 Byzantine; N > 3t, so Algorithm 1 applies.
//! let cfg = SystemConfig::new(10, 3)?;
//! let ids: Vec<OriginalId> =
//!     [14u64, 3, 77, 21, 58, 9, 42].map(OriginalId::new).into();
//!
//! let out = RenamingRun::builder(cfg, Regime::LogTime)
//!     .correct_ids(ids)
//!     .adversary(AdversarySpec::EchoSplit, 3)
//!     .seed(42)
//!     .run()?;
//!
//! // All four renaming properties hold within namespace N + t − 1 = 12.
//! assert!(out.outcome.verify(cfg.namespace_bound(Regime::LogTime)).is_empty());
//! assert_eq!(out.stats.rounds, cfg.total_steps(Regime::LogTime));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use opr_aa as aa;
pub use opr_adversary as adversary;
pub use opr_baselines as baselines;
pub use opr_chaos as chaos;
pub use opr_consensus as consensus;
pub use opr_core as core;
pub use opr_exec as exec;
pub use opr_metrics as metrics;
pub use opr_obs as obs;
pub use opr_rbcast as rbcast;
pub use opr_service as service;
pub use opr_sim as sim;
pub use opr_transport as transport;
pub use opr_types as types;
pub use opr_workload as workload;

/// Commonly-used items in one import.
pub mod prelude {
    pub use opr_adversary::AdversarySpec;
    pub use opr_exec::RunPool;
    pub use opr_metrics::{MetricsRegistry, MetricsSnapshot};
    pub use opr_obs::{ProtocolEvent, RunLog};
    pub use opr_service::{ServiceConfig, ServiceReport, ServiceSpec};
    pub use opr_transport::{BackendKind, FaultPlan};
    pub use opr_types::{
        ConfigError, LinkId, NewName, OriginalId, ProcessIndex, Rank, Regime, RenamingError,
        RenamingOutcome, Round, SystemConfig,
    };
    pub use opr_workload::{
        Algorithm, ClientId, DiagnosedRun, ExperimentTable, IdDistribution, RenamingRun, RunOutput,
        RunStats, ServiceWorkload,
    };
}
