//! Graceful-degradation taxonomy: what a run reports when the paper's
//! assumptions are stretched or broken.
//!
//! The theorems hold while at most `t` processes misbehave. Outside that
//! envelope — the chaos campaign's deliberately over-budget regime — a run
//! must still *diagnose* itself instead of aborting: which invariant broke,
//! which processes never decided, which sends were malformed. Three pieces
//! encode that contract:
//!
//! * [`MalformedSend`] — a transport-rejected send (out-of-range link label,
//!   duplicate multicast link, oversized payload). Recorded and dropped by
//!   every backend instead of panicking the engine.
//! * [`Violation`] — one diagnosed breach of a paper invariant (a renaming
//!   [`PropertyViolation`], the namespace bound, the fixed step count,
//!   missed termination, a malformed send by a *correct* process, or a
//!   cross-backend divergence).
//! * [`DegradedOutcome`] — a completed diagnosis: the outcome that was
//!   reached plus every violation found. "Degraded but diagnosed" is a pass
//!   in the over-budget regime; a panic never is.

use crate::ids::{NewName, OriginalId, ProcessIndex, Round};
use crate::outcome::{PropertyViolation, RenamingOutcome};
use std::fmt;

/// Why the transport rejected a send.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MalformedKind {
    /// The outgoing link label exceeds `N`.
    LinkOutOfRange {
        /// The offending 1-based label.
        label: usize,
        /// The system size (labels are `1 ⋯ N`).
        n: usize,
    },
    /// Two messages on the same link in one round (the model allows one).
    DuplicateLink {
        /// The 1-based label used twice.
        label: usize,
    },
    /// The message exceeds the job's payload cap.
    OversizedPayload {
        /// The message size in bits.
        bits: u64,
        /// The configured cap in bits.
        cap: u64,
    },
}

impl fmt::Display for MalformedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MalformedKind::LinkOutOfRange { label, n } => {
                write!(f, "link label {label} out of range for N={n}")
            }
            MalformedKind::DuplicateLink { label } => {
                write!(f, "duplicate message on link {label}")
            }
            MalformedKind::OversizedPayload { bits, cap } => {
                write!(f, "payload of {bits} bits exceeds the {cap}-bit cap")
            }
        }
    }
}

/// One send the transport refused to route. The message is dropped (for the
/// receiver this is indistinguishable from a link fault); the rejection is
/// recorded so the caller can decide whether the sender was within its
/// rights (Byzantine) or buggy (correct).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MalformedSend {
    /// The sending process.
    pub sender: ProcessIndex,
    /// The round of the attempted send.
    pub round: Round,
    /// Why the send was rejected.
    pub kind: MalformedKind,
}

impl fmt::Display for MalformedSend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {:?}: {}", self.sender, self.round, self.kind)
    }
}

/// One diagnosed breach of a paper invariant.
#[derive(Clone, PartialEq, Debug)]
pub enum Violation {
    /// A renaming property failed (validity, termination, uniqueness, order
    /// preservation) over the processes the oracle holds to the spec.
    Property(PropertyViolation),
    /// The largest decided name exceeds the algorithm's namespace bound.
    NamespaceExceeded {
        /// The largest name any in-scope process decided.
        max_name: NewName,
        /// The algorithm's bound `M` (`N + t − 1`, `N`, or `N²`).
        bound: u64,
    },
    /// The run did not take the algorithm's exact step count.
    StepCountMismatch {
        /// The paper's fixed step count for this `(algorithm, N, t)`.
        expected: u32,
        /// Rounds actually executed.
        got: u32,
    },
    /// In-scope processes failed to decide within the round budget.
    MissedTermination {
        /// The round budget that was exhausted.
        budget: u32,
        /// The original ids that never decided.
        undecided: Vec<OriginalId>,
    },
    /// A *correct* process produced a transport-rejected send — a protocol
    /// or harness bug, never legal behaviour.
    CorrectMalformed(MalformedSend),
    /// Two backends disagreed on an observable of the same job.
    BackendDivergence {
        /// Which observable diverged (e.g. `"outcome"`, `"messages"`).
        observable: &'static str,
        /// The reference backend's value, rendered.
        reference: String,
        /// The other backend's value, rendered.
        other: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Property(p) => write!(f, "{p}"),
            Violation::NamespaceExceeded { max_name, bound } => {
                write!(f, "namespace: {max_name:?} exceeds bound {bound}")
            }
            Violation::StepCountMismatch { expected, got } => {
                write!(f, "steps: executed {got}, algorithm specifies {expected}")
            }
            Violation::MissedTermination { budget, undecided } => {
                write!(
                    f,
                    "termination: {} process(es) undecided after {budget} rounds",
                    undecided.len()
                )
            }
            Violation::CorrectMalformed(m) => write!(f, "correct process sent malformed: {m}"),
            Violation::BackendDivergence {
                observable,
                reference,
                other,
            } => write!(
                f,
                "backends diverge on {observable}: {reference} vs {other}"
            ),
        }
    }
}

/// The structured report of a run that may have left the paper's envelope:
/// the outcome that was reached, how it ran, and every invariant breach
/// diagnosed against the algorithm's own bounds.
///
/// Construct with [`DegradedOutcome::diagnose`], which runs the standard
/// invariant checks, or assemble manually from oracle output.
#[derive(Clone, PartialEq, Debug)]
pub struct DegradedOutcome {
    /// Decisions of the processes held to the spec.
    pub outcome: RenamingOutcome,
    /// Rounds actually executed.
    pub rounds: u32,
    /// Whether every in-scope process decided within the budget.
    pub completed: bool,
    /// Every diagnosed invariant breach (empty ⇒ the run upheld the paper).
    pub violations: Vec<Violation>,
}

impl DegradedOutcome {
    /// Diagnoses `outcome` against the algorithm's contract: the four
    /// renaming properties within namespace `bound`, the exact step count
    /// `expected_rounds`, termination within `budget`, and the absence of
    /// malformed sends from correct processes.
    pub fn diagnose(
        outcome: RenamingOutcome,
        rounds: u32,
        completed: bool,
        budget: u32,
        expected_rounds: u32,
        bound: u64,
        correct_malformed: &[MalformedSend],
    ) -> Self {
        let mut violations: Vec<Violation> = Vec::new();
        let undecided: Vec<OriginalId> = outcome
            .decisions()
            .iter()
            .filter(|(_, d)| d.is_none())
            .map(|(&id, _)| id)
            .collect();
        if !undecided.is_empty() {
            violations.push(Violation::MissedTermination { budget, undecided });
        }
        for v in outcome.verify(bound) {
            // Termination is reported once, aggregated, above.
            if !matches!(v, PropertyViolation::Termination { .. }) {
                violations.push(Violation::Property(v));
            }
        }
        if let Some(max_name) = outcome.max_name() {
            if !max_name.in_namespace(bound) {
                violations.push(Violation::NamespaceExceeded { max_name, bound });
            }
        }
        if completed && rounds != expected_rounds {
            violations.push(Violation::StepCountMismatch {
                expected: expected_rounds,
                got: rounds,
            });
        }
        violations.extend(
            correct_malformed
                .iter()
                .map(|&m| Violation::CorrectMalformed(m)),
        );
        DegradedOutcome {
            outcome,
            rounds,
            completed,
            violations,
        }
    }

    /// Whether the run upheld every checked invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// A one-line digest suitable for logs and repro files: violation kinds
    /// in order, or `"clean"`.
    pub fn digest(&self) -> String {
        if self.violations.is_empty() {
            return "clean".to_string();
        }
        let kinds: Vec<&'static str> = self
            .violations
            .iter()
            .map(|v| match v {
                Violation::Property(PropertyViolation::Validity { .. }) => "validity",
                Violation::Property(PropertyViolation::Termination { .. }) => "termination",
                Violation::Property(PropertyViolation::Uniqueness { .. }) => "uniqueness",
                Violation::Property(PropertyViolation::OrderPreservation { .. }) => "order",
                Violation::NamespaceExceeded { .. } => "namespace",
                Violation::StepCountMismatch { .. } => "steps",
                Violation::MissedTermination { .. } => "missed-termination",
                Violation::CorrectMalformed(_) => "correct-malformed",
                Violation::BackendDivergence { .. } => "backend-divergence",
            })
            .collect();
        kinds.join("+")
    }
}

impl fmt::Display for DegradedOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} rounds ({} violation(s))",
            if self.is_clean() { "clean" } else { "degraded" },
            self.rounds,
            self.violations.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(id: u64, name: i64) -> (OriginalId, Option<NewName>) {
        (OriginalId::new(id), Some(NewName::new(name)))
    }

    #[test]
    fn clean_run_diagnoses_clean() {
        let outcome = RenamingOutcome::new([pair(3, 1), pair(9, 2)]);
        let d = DegradedOutcome::diagnose(outcome, 7, true, 7, 7, 4, &[]);
        assert!(d.is_clean());
        assert_eq!(d.digest(), "clean");
        assert!(d.to_string().contains("clean"));
    }

    #[test]
    fn missed_termination_aggregates_undecided() {
        let outcome = RenamingOutcome::new([
            pair(3, 1),
            (OriginalId::new(9), None),
            (OriginalId::new(11), None),
        ]);
        let d = DegradedOutcome::diagnose(outcome, 7, false, 7, 7, 4, &[]);
        assert!(!d.is_clean());
        let missed = d
            .violations
            .iter()
            .find_map(|v| match v {
                Violation::MissedTermination { undecided, .. } => Some(undecided.len()),
                _ => None,
            })
            .expect("missed-termination violation");
        assert_eq!(missed, 2);
        // No per-process Termination duplicates alongside the aggregate.
        assert!(!d.violations.iter().any(|v| matches!(
            v,
            Violation::Property(PropertyViolation::Termination { .. })
        )));
    }

    #[test]
    fn namespace_and_steps_diagnosed() {
        let outcome = RenamingOutcome::new([pair(3, 1), pair(9, 99)]);
        let d = DegradedOutcome::diagnose(outcome, 9, true, 12, 7, 4, &[]);
        assert!(d
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NamespaceExceeded { .. })));
        assert!(d
            .violations
            .iter()
            .any(|v| matches!(v, Violation::StepCountMismatch { .. })));
        assert!(d.digest().contains("namespace"));
        assert!(d.digest().contains("steps"));
    }

    #[test]
    fn step_count_not_checked_on_incomplete_runs() {
        let outcome = RenamingOutcome::new([(OriginalId::new(3), None)]);
        let d = DegradedOutcome::diagnose(outcome, 3, false, 3, 7, 4, &[]);
        assert!(!d
            .violations
            .iter()
            .any(|v| matches!(v, Violation::StepCountMismatch { .. })));
    }

    #[test]
    fn correct_malformed_is_reported() {
        let outcome = RenamingOutcome::new([pair(3, 1)]);
        let m = MalformedSend {
            sender: ProcessIndex::new(2),
            round: Round::new(1),
            kind: MalformedKind::DuplicateLink { label: 3 },
        };
        let d = DegradedOutcome::diagnose(outcome, 7, true, 7, 7, 4, &[m]);
        assert!(matches!(
            d.violations.as_slice(),
            [Violation::CorrectMalformed(_)]
        ));
        assert!(d.violations[0].to_string().contains("duplicate"));
    }

    #[test]
    fn displays_are_informative() {
        for kind in [
            MalformedKind::LinkOutOfRange { label: 9, n: 4 },
            MalformedKind::DuplicateLink { label: 2 },
            MalformedKind::OversizedPayload {
                bits: 4096,
                cap: 1024,
            },
        ] {
            assert!(!kind.to_string().is_empty());
        }
        let v = Violation::BackendDivergence {
            observable: "messages",
            reference: "10".into(),
            other: "11".into(),
        };
        assert!(v.to_string().contains("messages"));
    }
}
