//! The outcome of a renaming run and the checkers for the problem's defining
//! properties.
//!
//! The renaming problem (Section II of the paper) requires, for the *correct*
//! processes only:
//!
//! * **Validity** — each new name is an integer in `[1 ⋯ M]`;
//! * **Termination** — each correct process outputs a new name;
//! * **Uniqueness** — no two correct processes output the same new name;
//! * **Order preservation** — new names preserve the order of original ids.
//!
//! [`RenamingOutcome::verify`] checks all four and returns the full list of
//! violations, which the test-suite and the resilience-boundary experiment
//! (T5) inspect.

use crate::ids::{NewName, OriginalId};
use std::collections::BTreeMap;
use std::fmt;

/// A violation of one of the renaming properties, as detected by
/// [`RenamingOutcome::verify`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PropertyViolation {
    /// A name fell outside `[1 ⋯ M]`.
    Validity {
        /// The offending process's original id.
        id: OriginalId,
        /// The out-of-range name.
        name: NewName,
        /// The target namespace bound `M`.
        bound: u64,
    },
    /// A correct process never produced a name.
    Termination {
        /// The process that failed to decide.
        id: OriginalId,
    },
    /// Two correct processes picked the same name.
    Uniqueness {
        /// The first process.
        first: OriginalId,
        /// The second process.
        second: OriginalId,
        /// The clashing name.
        name: NewName,
    },
    /// Names do not preserve the original-id order.
    OrderPreservation {
        /// The smaller original id.
        smaller: OriginalId,
        /// Its new name.
        smaller_name: NewName,
        /// The larger original id.
        larger: OriginalId,
        /// Its new name (≤ `smaller_name`, which is the violation).
        larger_name: NewName,
    },
}

impl fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyViolation::Validity { id, name, bound } => {
                write!(f, "validity: {id:?} chose {name:?} outside [1..{bound}]")
            }
            PropertyViolation::Termination { id } => {
                write!(f, "termination: {id:?} produced no name")
            }
            PropertyViolation::Uniqueness {
                first,
                second,
                name,
            } => write!(
                f,
                "uniqueness: {first:?} and {second:?} both chose {name:?}"
            ),
            PropertyViolation::OrderPreservation {
                smaller,
                smaller_name,
                larger,
                larger_name,
            } => write!(
                f,
                "order: {smaller:?}→{smaller_name:?} vs {larger:?}→{larger_name:?}"
            ),
        }
    }
}

/// The names chosen by the correct processes in one run.
///
/// Construct with [`RenamingOutcome::new`] from `(original id, decision)`
/// pairs — a `None` decision records a termination failure.
///
/// # Example
///
/// ```
/// use opr_types::{OriginalId, NewName, RenamingOutcome};
///
/// let outcome = RenamingOutcome::new([
///     (OriginalId::new(100), Some(NewName::new(1))),
///     (OriginalId::new(200), Some(NewName::new(2))),
/// ]);
/// assert!(outcome.verify(4).is_empty());
/// assert_eq!(outcome.max_name(), Some(NewName::new(2)));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RenamingOutcome {
    decisions: BTreeMap<OriginalId, Option<NewName>>,
}

impl RenamingOutcome {
    /// Builds an outcome from `(id, decision)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same original id appears twice — correct processes have
    /// unique ids by the model's assumption, so a duplicate means the harness
    /// is buggy.
    pub fn new<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (OriginalId, Option<NewName>)>,
    {
        let mut decisions = BTreeMap::new();
        for (id, decision) in pairs {
            let prev = decisions.insert(id, decision);
            assert!(prev.is_none(), "duplicate original id {id:?} in outcome");
        }
        RenamingOutcome { decisions }
    }

    /// The decisions, ordered by original id.
    pub fn decisions(&self) -> &BTreeMap<OriginalId, Option<NewName>> {
        &self.decisions
    }

    /// Number of correct processes recorded.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether no decisions were recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The name chosen for `id`, if the process terminated.
    pub fn name_of(&self, id: OriginalId) -> Option<NewName> {
        self.decisions.get(&id).copied().flatten()
    }

    /// The largest name any correct process chose — the *measured* namespace
    /// of the run, compared against the paper's bounds in experiment T2.
    pub fn max_name(&self) -> Option<NewName> {
        self.decisions.values().flatten().max().copied()
    }

    /// Checks all four renaming properties against namespace bound `m`.
    ///
    /// Returns every violation found (empty means the run upheld the spec).
    pub fn verify(&self, m: u64) -> Vec<PropertyViolation> {
        let mut violations = Vec::new();

        // Termination and validity.
        for (&id, decision) in &self.decisions {
            match decision {
                None => violations.push(PropertyViolation::Termination { id }),
                Some(name) if !name.in_namespace(m) => {
                    violations.push(PropertyViolation::Validity {
                        id,
                        name: *name,
                        bound: m,
                    });
                }
                Some(_) => {}
            }
        }

        // Uniqueness: group by name.
        let mut by_name: BTreeMap<NewName, Vec<OriginalId>> = BTreeMap::new();
        for (&id, decision) in &self.decisions {
            if let Some(name) = decision {
                by_name.entry(*name).or_default().push(id);
            }
        }
        for (name, ids) in &by_name {
            for pair in ids.windows(2) {
                violations.push(PropertyViolation::Uniqueness {
                    first: pair[0],
                    second: pair[1],
                    name: *name,
                });
            }
        }

        // Order preservation: decisions are iterated in original-id order, so
        // names must be strictly increasing. Comparing consecutive decided
        // pairs is sufficient: strict monotonicity is transitive.
        let decided: Vec<(OriginalId, NewName)> = self
            .decisions
            .iter()
            .filter_map(|(&id, d)| d.map(|name| (id, name)))
            .collect();
        for pair in decided.windows(2) {
            let (smaller, smaller_name) = pair[0];
            let (larger, larger_name) = pair[1];
            if larger_name <= smaller_name {
                violations.push(PropertyViolation::OrderPreservation {
                    smaller,
                    smaller_name,
                    larger,
                    larger_name,
                });
            }
        }

        violations
    }
}

impl FromIterator<(OriginalId, Option<NewName>)> for RenamingOutcome {
    fn from_iter<I: IntoIterator<Item = (OriginalId, Option<NewName>)>>(iter: I) -> Self {
        RenamingOutcome::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(id: u64, name: i64) -> (OriginalId, Option<NewName>) {
        (OriginalId::new(id), Some(NewName::new(name)))
    }

    #[test]
    fn clean_outcome_has_no_violations() {
        let outcome = RenamingOutcome::new([pair(5, 1), pair(9, 2), pair(100, 3)]);
        assert!(outcome.verify(3).is_empty());
        assert_eq!(outcome.max_name(), Some(NewName::new(3)));
        assert_eq!(outcome.name_of(OriginalId::new(9)), Some(NewName::new(2)));
        assert_eq!(outcome.len(), 3);
        assert!(!outcome.is_empty());
    }

    #[test]
    fn detects_validity_violation() {
        let outcome = RenamingOutcome::new([pair(1, 1), pair(2, 9)]);
        let v = outcome.verify(4);
        assert!(matches!(v.as_slice(), [PropertyViolation::Validity { .. }]));
    }

    #[test]
    fn detects_zero_and_negative_names() {
        let outcome = RenamingOutcome::new([pair(1, 0), pair(2, -2)]);
        let v = outcome.verify(10);
        assert_eq!(
            v.iter()
                .filter(|x| matches!(x, PropertyViolation::Validity { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn detects_termination_violation() {
        let outcome = RenamingOutcome::new([pair(1, 1), (OriginalId::new(2), None)]);
        let v = outcome.verify(4);
        assert!(v
            .iter()
            .any(|x| matches!(x, PropertyViolation::Termination { .. })));
    }

    #[test]
    fn detects_uniqueness_violation() {
        let outcome = RenamingOutcome::new([pair(1, 2), pair(7, 2)]);
        let v = outcome.verify(4);
        assert!(matches!(
            v.as_slice(),
            [PropertyViolation::Uniqueness { .. }, ..]
        ));
    }

    #[test]
    fn detects_order_violation() {
        let outcome = RenamingOutcome::new([pair(10, 3), pair(20, 1)]);
        let v = outcome.verify(4);
        assert!(v
            .iter()
            .any(|x| matches!(x, PropertyViolation::OrderPreservation { .. })));
    }

    #[test]
    fn equal_names_count_as_both_uniqueness_and_order_violations() {
        let outcome = RenamingOutcome::new([pair(10, 2), pair(20, 2)]);
        let v = outcome.verify(4);
        assert!(v
            .iter()
            .any(|x| matches!(x, PropertyViolation::Uniqueness { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, PropertyViolation::OrderPreservation { .. })));
    }

    #[test]
    fn nonconsecutive_inversions_are_caught_via_transitivity() {
        // 10→5, 20→1, 30→2: consecutive checks catch (10,20); (20,30) is
        // fine, but (10,30) is also inverted. The windows(2) check reports at
        // least one violation, which is what the harness needs.
        let outcome = RenamingOutcome::new([pair(10, 5), pair(20, 1), pair(30, 2)]);
        let v = outcome.verify(10);
        assert!(v
            .iter()
            .any(|x| matches!(x, PropertyViolation::OrderPreservation { .. })));
    }

    #[test]
    #[should_panic(expected = "duplicate original id")]
    fn rejects_duplicate_ids() {
        let _ = RenamingOutcome::new([pair(1, 1), pair(1, 2)]);
    }

    #[test]
    fn collect_from_iterator() {
        let outcome: RenamingOutcome = vec![pair(1, 1), pair(2, 2)].into_iter().collect();
        assert_eq!(outcome.len(), 2);
    }

    #[test]
    fn violation_display_is_informative() {
        let outcome = RenamingOutcome::new([pair(10, 3), pair(20, 3)]);
        for v in outcome.verify(2) {
            assert!(!v.to_string().is_empty());
        }
    }
}
