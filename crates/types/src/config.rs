//! System configuration: the `(N, t, N_max)` triple and everything the paper
//! derives from it.
//!
//! All thresholds, round budgets and namespace bounds used by the three
//! algorithms are centralized here so that protocol code never hand-computes
//! an `N − 2t` again.

use crate::error::ConfigError;
use crate::math::ceil_log2;
use std::fmt;

/// Resilience regime of one of the paper's three algorithms.
///
/// Each regime names both a precondition on `(N, t)` and the algorithm that
/// requires it:
///
/// | Regime | Precondition | Steps | Namespace |
/// |---|---|---|---|
/// | [`LogTime`](Regime::LogTime) | `N > 3t` | `3⌈log₂ t⌉ + 7` | `N + t − 1` |
/// | [`ConstantTime`](Regime::ConstantTime) | `N > t² + 2t` | `8` | `N` |
/// | [`TwoStep`](Regime::TwoStep) | `N > 2t² + t` | `2` | `N²` |
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Regime {
    /// Algorithm 1 with the full logarithmic voting schedule; optimal
    /// resilience `N > 3t`.
    LogTime,
    /// Algorithm 1 truncated to 4 voting steps; requires `N > t² + 2t` and
    /// achieves strong (tight, size-`N`) renaming — Theorem V.3.
    ConstantTime,
    /// Algorithm 4, the 2-communication-step echo-counting algorithm;
    /// requires `N > 2t² + t` — Theorem VI.3.
    TwoStep,
}

impl Regime {
    /// All regimes, strongest resilience first.
    pub const ALL: [Regime; 3] = [Regime::LogTime, Regime::ConstantTime, Regime::TwoStep];
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Regime::LogTime => "log-time (N > 3t)",
            Regime::ConstantTime => "constant-time (N > t² + 2t)",
            Regime::TwoStep => "2-step (N > 2t² + t)",
        };
        f.write_str(s)
    }
}

/// The immutable parameters of a synchronous Byzantine system: `N` processes
/// of which at most `t` are Byzantine, with original ids drawn from
/// `[1 ⋯ N_max]`.
///
/// # Example
///
/// ```
/// use opr_types::{SystemConfig, Regime};
///
/// let cfg = SystemConfig::new(16, 3)?;
/// assert_eq!(cfg.quorum(), 13);        // N − t
/// assert_eq!(cfg.weak_quorum(), 10);   // N − 2t
/// assert!(cfg.supports(Regime::LogTime));
/// assert!(cfg.supports(Regime::ConstantTime)); // 16 > 9 + 6
/// assert!(!cfg.supports(Regime::TwoStep));     // 16 ≤ 18 + 3
/// # Ok::<(), opr_types::ConfigError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SystemConfig {
    n: usize,
    t: usize,
    nmax: u64,
}

/// Default size of the original namespace when none is given: a "huge"
/// namespace (`2⁴⁸`) so that `N_max ≫ N` holds for every realistic `N`.
pub const DEFAULT_NMAX: u64 = 1 << 48;

impl SystemConfig {
    /// Creates a configuration with the default original namespace
    /// [`DEFAULT_NMAX`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `n == 0` or `t ≥ n` (at least one process
    /// must be correct for the problem to be meaningful).
    pub fn new(n: usize, t: usize) -> Result<Self, ConfigError> {
        Self::with_nmax(n, t, DEFAULT_NMAX)
    }

    /// Creates a configuration with an explicit original-namespace size.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `n == 0`, `t ≥ n`, or `nmax < n as u64`
    /// (there must be room for `N` distinct original ids).
    pub fn with_nmax(n: usize, t: usize, nmax: u64) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroProcesses);
        }
        if t >= n {
            return Err(ConfigError::TooManyFaults { n, t });
        }
        if nmax < n as u64 {
            return Err(ConfigError::NamespaceTooSmall { n, nmax });
        }
        Ok(SystemConfig { n, t, nmax })
    }

    /// Total number of processes `N`.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Upper bound `t` on the number of Byzantine processes.
    pub const fn t(&self) -> usize {
        self.t
    }

    /// Size of the original namespace `N_max`.
    pub const fn nmax(&self) -> u64 {
        self.nmax
    }

    /// The quorum threshold `N − t`: messages seen on this many distinct
    /// links are backed by at least `N − 2t` correct processes.
    pub const fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// The weak threshold `N − 2t`: a message seen on this many distinct
    /// links is backed by at least one correct process (when `N > 3t`).
    pub const fn weak_quorum(&self) -> usize {
        self.n - 2 * self.t
    }

    /// The stretch factor `δ = 1 + 1/(3(N + t))` applied to initial ranks
    /// (Algorithm 1, line 02).
    pub fn delta(&self) -> f64 {
        1.0 + 1.0 / (3.0 * (self.n + self.t) as f64)
    }

    /// Whether this configuration satisfies the precondition of `regime`.
    pub fn supports(&self, regime: Regime) -> bool {
        let (n, t) = (self.n, self.t);
        match regime {
            Regime::LogTime => n > 3 * t,
            Regime::ConstantTime => n > t * t + 2 * t,
            Regime::TwoStep => n > 2 * t * t + t,
        }
    }

    /// Validates the precondition of `regime`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::RegimeViolated`] when `supports(regime)` is
    /// false.
    pub fn require(&self, regime: Regime) -> Result<(), ConfigError> {
        if self.supports(regime) {
            Ok(())
        } else {
            Err(ConfigError::RegimeViolated {
                n: self.n,
                t: self.t,
                regime,
            })
        }
    }

    /// Number of approximate-agreement voting steps Algorithm 1 runs under
    /// `regime`: `3⌈log₂ t⌉ + 3` in the logarithmic schedule (steps 5 through
    /// `3⌈log t⌉ + 7`), or exactly `4` in the constant-time variant
    /// (Section V).
    ///
    /// For `t ≤ 1` the logarithmic schedule is `3` steps (the formula with
    /// `⌈log 1⌉ = 0`); at least one voting step always runs so the namespace
    /// bound argument (values stay inside the correct-value interval)
    /// applies.
    ///
    /// # Panics
    ///
    /// Panics if called with [`Regime::TwoStep`], which has no voting phase.
    pub fn voting_steps(&self, regime: Regime) -> u32 {
        match regime {
            Regime::LogTime => 3 * ceil_log2(self.t) + 3,
            Regime::ConstantTime => 4,
            Regime::TwoStep => panic!("the 2-step algorithm has no voting phase"),
        }
    }

    /// Total communication steps of the algorithm for `regime`:
    /// `3⌈log t⌉ + 7`, `8`, or `2`.
    pub fn total_steps(&self, regime: Regime) -> u32 {
        match regime {
            Regime::LogTime | Regime::ConstantTime => 4 + self.voting_steps(regime),
            Regime::TwoStep => 2,
        }
    }

    /// Target namespace size `M` guaranteed by the algorithm for `regime`:
    /// `N + t − 1`, `N`, or `N²`.
    pub fn namespace_bound(&self, regime: Regime) -> u64 {
        let (n, t) = (self.n as u64, self.t as u64);
        match regime {
            Regime::LogTime => n + t.saturating_sub(1),
            Regime::ConstantTime => n,
            Regime::TwoStep => n * n,
        }
    }

    /// Maximum number of Byzantine-introduced ids that can enter any correct
    /// process's `accepted` set: `t + ⌊t²/(N − 2t)⌋` (Lemma IV.3 together
    /// with Lemma A.1). Requires `N > 2t`.
    pub fn byzantine_id_bound(&self) -> usize {
        if self.t == 0 {
            return 0;
        }
        assert!(self.n > 2 * self.t, "byzantine_id_bound requires N > 2t");
        self.t + (self.t * self.t) / (self.n - 2 * self.t)
    }

    /// Upper bound on `|accepted|` at any correct process:
    /// `N + ⌊t²/(N − 2t)⌋` (Lemma IV.3). Requires `N > 2t`.
    pub fn accepted_bound(&self) -> usize {
        if self.t == 0 {
            return self.n;
        }
        assert!(self.n > 2 * self.t, "accepted_bound requires N > 2t");
        self.n + (self.t * self.t) / (self.n - 2 * self.t)
    }

    /// The guaranteed per-voting-step convergence rate of the validated
    /// approximate agreement: `σ_t = ⌊(N − 2t)/t⌋ + 1` (Lemma IV.8).
    ///
    /// For `t = 0` there is nothing to converge (all correct processes hold
    /// identical ranks after the id-selection phase); we return `usize::MAX`
    /// as "infinite contraction" so that analytic code can divide by it.
    pub fn sigma(&self) -> usize {
        match (self.n - 2 * self.t).checked_div(self.t) {
            Some(q) => q + 1,
            None => usize::MAX,
        }
    }

    /// Upper bound on the initial rank discrepancy entering the voting phase:
    /// `Δ₅ ≤ (t + ⌊t²/(N−2t)⌋) · δ ≤ (2t − 1) · δ` (Lemma IV.7). The paren
    /// is exactly [`byzantine_id_bound`](Self::byzantine_id_bound): two
    /// correct processes' accepted sets differ only in Byzantine ids, so a
    /// common id's position can shift by at most that many entries.
    pub fn initial_spread_bound(&self) -> f64 {
        self.byzantine_id_bound() as f64 * self.delta()
    }

    /// The spacing every correct vote vector must exhibit between
    /// consecutive timely ids — exactly `δ` (Algorithm 2, line 03).
    pub fn spacing(&self) -> f64 {
        self.delta()
    }

    /// The number of voting steps that *provably* drives the worst-case
    /// initial spread `Δ₅ ≤ (t + ⌊t²/(N−2t)⌋)·δ` below the paper's safety
    /// target `(δ−1)/2`, assuming only the guaranteed contraction `σ_t` per
    /// step.
    ///
    /// **Reproduction finding** (EXPERIMENTS.md): the paper's schedule
    /// `3⌈log₂ t⌉ + 3` meets this only for large `t`; at minimal `N = 3t+1`
    /// and `t ∈ {2..6}` it falls up to 3 steps short, and our divergence
    /// adversary empirically drives the final spread past `(δ−1)/2` (names
    /// remain correct in all observed runs because the *sufficient*
    /// condition is the weaker `Δ < δ−1`). Safety-critical users should run
    /// `max(voting_steps, safe_voting_steps)`; the default stays
    /// paper-faithful.
    pub fn safe_voting_steps(&self) -> u32 {
        if self.t == 0 {
            return 1;
        }
        let sigma = self.sigma() as f64;
        let mut spread = self.initial_spread_bound();
        let target = (self.delta() - 1.0) / 2.0;
        let mut steps = 0u32;
        while spread >= target && steps < 128 {
            spread /= sigma;
            steps += 1;
        }
        steps.max(1)
    }

    /// Smallest `N` supporting `regime` for a given `t` — convenient for
    /// parameter sweeps that probe each bound tightly.
    pub fn minimal_n(t: usize, regime: Regime) -> usize {
        match regime {
            Regime::LogTime => 3 * t + 1,
            Regime::ConstantTime => t * t + 2 * t + 1,
            Regime::TwoStep => 2 * t * t + t + 1,
        }
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N={} t={} Nmax={}", self.n, self.t, self.nmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_configs() {
        assert!(matches!(
            SystemConfig::new(0, 0),
            Err(ConfigError::ZeroProcesses)
        ));
        assert!(matches!(
            SystemConfig::new(3, 3),
            Err(ConfigError::TooManyFaults { .. })
        ));
        assert!(matches!(
            SystemConfig::with_nmax(8, 1, 4),
            Err(ConfigError::NamespaceTooSmall { .. })
        ));
    }

    #[test]
    fn thresholds() {
        let cfg = SystemConfig::new(10, 3).unwrap();
        assert_eq!(cfg.quorum(), 7);
        assert_eq!(cfg.weak_quorum(), 4);
        let d = cfg.delta();
        assert!((d - (1.0 + 1.0 / 39.0)).abs() < 1e-12);
    }

    #[test]
    fn regime_preconditions_match_paper() {
        // N > 3t.
        assert!(SystemConfig::new(4, 1).unwrap().supports(Regime::LogTime));
        assert!(!SystemConfig::new(3, 1).unwrap().supports(Regime::LogTime));
        // N > t² + 2t.
        assert!(SystemConfig::new(16, 3)
            .unwrap()
            .supports(Regime::ConstantTime));
        assert!(!SystemConfig::new(15, 3)
            .unwrap()
            .supports(Regime::ConstantTime));
        // N > 2t² + t.
        assert!(SystemConfig::new(22, 3).unwrap().supports(Regime::TwoStep));
        assert!(!SystemConfig::new(21, 3).unwrap().supports(Regime::TwoStep));
    }

    #[test]
    fn minimal_n_is_minimal() {
        for t in 0..=6 {
            for regime in Regime::ALL {
                let n = SystemConfig::minimal_n(t, regime);
                let cfg = SystemConfig::new(n, t).unwrap();
                assert!(cfg.supports(regime), "minimal N must support {regime:?}");
                if n > 1 && t > 0 && n - 1 > t {
                    let smaller = SystemConfig::new(n - 1, t).unwrap();
                    assert!(
                        !smaller.supports(regime),
                        "N-1 must not support {regime:?} (t={t})"
                    );
                }
            }
        }
    }

    #[test]
    fn step_formulas_match_paper() {
        // t=1: 3·0 + 7 = 7 steps; t=4: 3·2 + 7 = 13 steps.
        let cfg1 = SystemConfig::new(4, 1).unwrap();
        assert_eq!(cfg1.total_steps(Regime::LogTime), 7);
        let cfg4 = SystemConfig::new(13, 4).unwrap();
        assert_eq!(cfg4.total_steps(Regime::LogTime), 3 * 2 + 7);
        // Constant-time variant is always 8 steps.
        let cfg = SystemConfig::new(16, 3).unwrap();
        assert_eq!(cfg.total_steps(Regime::ConstantTime), 8);
        // 2-step algorithm is 2 steps.
        assert_eq!(cfg.total_steps(Regime::TwoStep), 2);
    }

    #[test]
    #[should_panic(expected = "no voting phase")]
    fn voting_steps_rejects_two_step() {
        let cfg = SystemConfig::new(22, 3).unwrap();
        let _ = cfg.voting_steps(Regime::TwoStep);
    }

    #[test]
    fn namespace_bounds_match_paper() {
        let cfg = SystemConfig::new(10, 3).unwrap();
        assert_eq!(cfg.namespace_bound(Regime::LogTime), 12); // N + t − 1
        assert_eq!(cfg.namespace_bound(Regime::ConstantTime), 10); // N
        assert_eq!(cfg.namespace_bound(Regime::TwoStep), 100); // N²
    }

    #[test]
    fn accepted_bound_collapses_to_n_in_constant_regime() {
        // Lemma V.1: for N > t² + 2t, ⌊t²/(N−2t)⌋ = 0 so |accepted| ≤ N.
        let cfg = SystemConfig::new(16, 3).unwrap();
        assert_eq!(cfg.accepted_bound(), 16);
        assert_eq!(cfg.byzantine_id_bound(), 3);
        // And in the general regime it can exceed N.
        let tight = SystemConfig::new(10, 3).unwrap();
        assert_eq!(tight.accepted_bound(), 10 + 9 / 4);
        assert_eq!(tight.byzantine_id_bound(), 3 + 9 / 4);
    }

    #[test]
    fn accepted_bound_never_exceeds_n_plus_t_minus_1() {
        // Theorem IV.10's validity argument: for N > 3t,
        // N + ⌊t²/(N−2t)⌋ ≤ N + t − 1.
        for t in 1..=10 {
            for n in (3 * t + 1)..(3 * t + 40) {
                let cfg = SystemConfig::new(n, t).unwrap();
                assert!(
                    cfg.accepted_bound() < n + t,
                    "N={n} t={t}: {} > {}",
                    cfg.accepted_bound(),
                    n + t - 1
                );
            }
        }
    }

    #[test]
    fn sigma_exceeds_two_when_n_gt_3t() {
        for t in 1..=8 {
            let cfg = SystemConfig::new(3 * t + 1, t).unwrap();
            assert!(cfg.sigma() >= 2, "σ_t ≥ 2 needed for convergence");
        }
        // In the constant-time regime σ_t ≥ t + 1 (proof of Lemma V.2; the
        // paper's strict inequality holds whenever t divides N−2t evenly
        // enough, and ≥ suffices for the 4-step convergence bound).
        for t in 1..=8 {
            let cfg = SystemConfig::new(t * t + 2 * t + 1, t).unwrap();
            assert!(cfg.sigma() > t, "t={t}: sigma={}", cfg.sigma());
        }
    }

    #[test]
    fn safe_voting_steps_exceeds_paper_schedule_at_small_t() {
        // The reproduction finding: at minimal N the paper's 3⌈log t⌉+3
        // budget is 1–2 steps short for t ∈ {2, 4} (and exactly tight at
        // t = 3), then sufficient from t = 5 on, where ⌈log t⌉ jumps while
        // the analytic requirement grows only by a constant.
        for t in [2usize, 4] {
            let cfg = SystemConfig::new(3 * t + 1, t).unwrap();
            assert!(
                cfg.safe_voting_steps() > cfg.voting_steps(Regime::LogTime),
                "t={t}: safe {} vs paper {}",
                cfg.safe_voting_steps(),
                cfg.voting_steps(Regime::LogTime)
            );
        }
        {
            let cfg = SystemConfig::new(10, 3).unwrap();
            assert_eq!(cfg.safe_voting_steps(), cfg.voting_steps(Regime::LogTime));
        }
        for t in [5usize, 8, 16, 32] {
            let cfg = SystemConfig::new(3 * t + 1, t).unwrap();
            assert!(
                cfg.safe_voting_steps() <= cfg.voting_steps(Regime::LogTime),
                "t={t}"
            );
        }
        // Far from the boundary σ grows and the paper budget is plentiful.
        let roomy = SystemConfig::new(40, 3).unwrap();
        assert!(roomy.safe_voting_steps() <= roomy.voting_steps(Regime::LogTime));
    }

    #[test]
    fn zero_fault_conveniences() {
        let cfg = SystemConfig::new(5, 0).unwrap();
        assert_eq!(cfg.byzantine_id_bound(), 0);
        assert_eq!(cfg.accepted_bound(), 5);
        assert_eq!(cfg.sigma(), usize::MAX);
        assert_eq!(cfg.total_steps(Regime::LogTime), 7);
    }

    #[test]
    fn display_formats() {
        let cfg = SystemConfig::with_nmax(4, 1, 100).unwrap();
        assert_eq!(format!("{cfg}"), "N=4 t=1 Nmax=100");
        assert!(format!("{}", Regime::LogTime).contains("3t"));
    }
}
