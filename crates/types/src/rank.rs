//! The [`Rank`] value type iterated by the approximate-agreement voting
//! phase.
//!
//! # Numerics
//!
//! Ranks are reals in the paper. We represent them as finite `f64` wrapped in
//! a totally-ordered newtype. This is sound for the protocol because all
//! guarantees in the paper carry explicit margins that dwarf `f64` rounding
//! error: the spacing invariant is `δ − 1 = 1/(3(N+t))` (≥ `~10⁻⁴` for any
//! practical `N`), while the error accumulated by the voting phase —
//! `O(rounds · N)` additions/averages of values bounded by `N + t` — is below
//! `10⁻¹⁰` for `N ≤ 10⁶`. Comparisons that implement protocol *validation*
//! (the `isValid` spacing check) use the tolerance [`Rank::EPS`] so that a
//! mathematically-guaranteed `≥ δ` spacing is never rejected due to the last
//! bit of a double; see [`Rank::spaced_at_least`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use crate::ids::NewName;

/// A totally-ordered finite rank value.
///
/// # Example
///
/// ```
/// use opr_types::Rank;
/// let delta = 1.0 + 1.0 / 39.0;
/// let first = Rank::from_position(1, delta);
/// let second = Rank::from_position(2, delta);
/// assert!(first < second);
/// assert!(first.spaced_at_least(second, delta));
/// assert_eq!(second.round_to_name().raw(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Rank(f64);

impl Rank {
    /// Absolute comparison tolerance used by protocol validation. Far above
    /// accumulated `f64` noise, far below every protocol margin.
    pub const EPS: f64 = 1e-9;

    /// Wraps a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite; ranks are always finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "ranks must be finite, got {value}");
        Rank(value)
    }

    /// The initial rank of the id at 1-based `position` in the sorted
    /// `accepted` set, stretched by `delta` (Algorithm 1, line 28).
    pub fn from_position(position: usize, delta: f64) -> Self {
        Rank::new(position as f64 * delta)
    }

    /// The raw value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// `Round(rank)`: the integral value nearest this rank, as a new name
    /// (Algorithm 1, line 37).
    pub fn round_to_name(self) -> NewName {
        NewName::new(self.0.round() as i64)
    }

    /// Whether `later − self ≥ spacing` holds, with [`Rank::EPS`] tolerance.
    ///
    /// This is the comparison Algorithm 2 (`isValid`) performs between the
    /// ranks of consecutive timely ids. The tolerance ensures Lemma IV.4
    /// (correct votes are always valid) survives floating-point rounding.
    pub fn spaced_at_least(self, later: Rank, spacing: f64) -> bool {
        later.0 - self.0 >= spacing - Rank::EPS
    }

    /// Absolute distance to another rank.
    pub fn distance(self, other: Rank) -> f64 {
        (self.0 - other.0).abs()
    }

    /// Midpoint of two ranks (used by the crash-fault baseline's approximate
    /// agreement).
    pub fn midpoint(self, other: Rank) -> Rank {
        Rank::new((self.0 + other.0) / 2.0)
    }

    /// The arithmetic mean of a non-empty slice of ranks.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is empty.
    pub fn mean(ranks: &[Rank]) -> Rank {
        assert!(!ranks.is_empty(), "mean of empty rank set");
        let sum: f64 = ranks.iter().map(|r| r.0).sum();
        Rank::new(sum / ranks.len() as f64)
    }
}

impl Eq for Rank {}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite-by-construction, so total_cmp agrees with numeric order.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank:{:.6}", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl Add for Rank {
    type Output = Rank;
    fn add(self, rhs: Rank) -> Rank {
        Rank::new(self.0 + rhs.0)
    }
}

impl Sub for Rank {
    type Output = Rank;
    fn sub(self, rhs: Rank) -> Rank {
        Rank::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Rank {
    type Output = Rank;
    fn mul(self, rhs: f64) -> Rank {
        Rank::new(self.0 * rhs)
    }
}

impl Div<f64> for Rank {
    type Output = Rank;
    fn div(self, rhs: f64) -> Rank {
        Rank::new(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn position_ranks_are_delta_spaced() {
        let delta = 1.0 + 1.0 / 39.0;
        for p in 1..100usize {
            let a = Rank::from_position(p, delta);
            let b = Rank::from_position(p + 1, delta);
            assert!(a.spaced_at_least(b, delta), "position {p}");
            assert!(!b.spaced_at_least(a, delta));
        }
    }

    #[test]
    fn rounding_matches_paper_validity_argument() {
        // round((N+t−1)·δ) = N+t−1 for N>3t: δ−1 ≤ 1/(3(N+t)) keeps the
        // stretch below half a unit at the largest rank.
        for (n, t) in [(4usize, 1usize), (10, 3), (31, 10), (100, 33)] {
            let delta = 1.0 + 1.0 / (3.0 * (n + t) as f64);
            let top = Rank::from_position(n + t - 1, delta);
            assert_eq!(top.round_to_name().raw(), (n + t - 1) as i64, "N={n} t={t}");
        }
    }

    #[test]
    fn spacing_tolerates_float_noise() {
        let delta = 1.003;
        let a = Rank::new(5.0);
        // Exactly delta apart minus sub-EPS noise must still pass.
        let b = Rank::new(5.0 + delta - 1e-12);
        assert!(a.spaced_at_least(b, delta));
        // Clearly closer than delta must fail.
        let c = Rank::new(5.0 + delta - 1e-3);
        assert!(!a.spaced_at_least(c, delta));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = Rank::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_of_empty_panics() {
        let _ = Rank::mean(&[]);
    }

    #[test]
    fn arithmetic() {
        let a = Rank::new(2.0);
        let b = Rank::new(3.0);
        assert_eq!((a + b).value(), 5.0);
        assert_eq!((b - a).value(), 1.0);
        assert_eq!((a * 2.0).value(), 4.0);
        assert_eq!((b / 2.0).value(), 1.5);
        assert_eq!(a.midpoint(b).value(), 2.5);
        assert_eq!(a.distance(b), 1.0);
    }

    proptest! {
        #[test]
        fn ordering_is_total_and_consistent(x in -1e9f64..1e9, y in -1e9f64..1e9) {
            let (a, b) = (Rank::new(x), Rank::new(y));
            prop_assert_eq!(a.cmp(&b), x.partial_cmp(&y).unwrap());
        }

        #[test]
        fn mean_is_within_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let ranks: Vec<Rank> = values.iter().map(|&v| Rank::new(v)).collect();
            let m = Rank::mean(&ranks);
            let lo = ranks.iter().min().unwrap();
            let hi = ranks.iter().max().unwrap();
            prop_assert!(m >= *lo - Rank::new(1e-9) && m <= *hi + Rank::new(1e-9));
        }
    }
}
