//! Error types for configuration and protocol execution.

use crate::config::Regime;
use std::error::Error;
use std::fmt;

/// An invalid system configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// `N` was zero.
    ZeroProcesses,
    /// `t ≥ N`: no correct process would remain.
    TooManyFaults {
        /// Number of processes.
        n: usize,
        /// Claimed fault bound.
        t: usize,
    },
    /// `N_max < N`: not enough room for distinct original ids.
    NamespaceTooSmall {
        /// Number of processes.
        n: usize,
        /// Original namespace size.
        nmax: u64,
    },
    /// The configuration does not satisfy the resilience precondition of the
    /// requested algorithm.
    RegimeViolated {
        /// Number of processes.
        n: usize,
        /// Fault bound.
        t: usize,
        /// The regime whose precondition failed.
        regime: Regime,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroProcesses => write!(f, "system must have at least one process"),
            ConfigError::TooManyFaults { n, t } => {
                write!(
                    f,
                    "fault bound t={t} leaves no correct process out of N={n}"
                )
            }
            ConfigError::NamespaceTooSmall { n, nmax } => {
                write!(f, "original namespace {nmax} cannot hold {n} distinct ids")
            }
            ConfigError::RegimeViolated { n, t, regime } => {
                write!(f, "N={n}, t={t} violates the {regime} precondition")
            }
        }
    }
}

impl Error for ConfigError {}

/// An error raised while setting up or executing a renaming run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RenamingError {
    /// The configuration was rejected.
    Config(ConfigError),
    /// The original ids handed to the correct processes were not distinct.
    DuplicateOriginalIds,
    /// The number of id assignments did not match the number of correct
    /// processes.
    WrongIdCount {
        /// How many ids were supplied.
        got: usize,
        /// How many were needed.
        expected: usize,
    },
    /// More faulty processes were configured than the fault bound `t` allows.
    TooManyFaultyActors {
        /// How many faulty actors were configured.
        got: usize,
        /// The configured bound `t`.
        bound: usize,
    },
    /// A correct process failed to produce an output within the round budget.
    MissedTermination {
        /// The round budget that was exhausted.
        budget: u32,
    },
    /// A correct process produced a send the transport had to reject — a
    /// protocol or harness bug (Byzantine processes may send malformed
    /// traffic; correct ones never do).
    CorrectMalformed(crate::degraded::MalformedSend),
}

impl fmt::Display for RenamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenamingError::Config(e) => write!(f, "invalid configuration: {e}"),
            RenamingError::DuplicateOriginalIds => {
                write!(f, "correct processes must start with distinct original ids")
            }
            RenamingError::WrongIdCount { got, expected } => {
                write!(f, "expected {expected} original ids, got {got}")
            }
            RenamingError::TooManyFaultyActors { got, bound } => {
                write!(f, "{got} faulty actors exceed the fault bound t={bound}")
            }
            RenamingError::MissedTermination { budget } => {
                write!(
                    f,
                    "a correct process produced no output within {budget} rounds"
                )
            }
            RenamingError::CorrectMalformed(m) => {
                write!(f, "a correct process sent malformed traffic: {m}")
            }
        }
    }
}

impl Error for RenamingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RenamingError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for RenamingError {
    fn from(e: ConfigError) -> Self {
        RenamingError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            ConfigError::ZeroProcesses.to_string(),
            ConfigError::TooManyFaults { n: 3, t: 3 }.to_string(),
            ConfigError::NamespaceTooSmall { n: 8, nmax: 4 }.to_string(),
            ConfigError::RegimeViolated {
                n: 3,
                t: 1,
                regime: Regime::LogTime,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(
                !m.ends_with('.'),
                "error messages carry no trailing punctuation"
            );
        }
    }

    #[test]
    fn renaming_error_from_config_error_preserves_source() {
        let err: RenamingError = SystemConfig::new(0, 0).unwrap_err().into();
        assert!(err.to_string().contains("invalid configuration"));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<RenamingError>();
    }
}
