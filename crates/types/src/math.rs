//! Small integer helpers used throughout the workspace.

/// `⌈log₂ x⌉` with the paper's convention that the value is `0` for
/// `x ∈ {0, 1}` (the round formulas use `⌈log t⌉` and remain meaningful for
/// `t ≤ 1`).
///
/// # Example
///
/// ```
/// use opr_types::math::ceil_log2;
/// assert_eq!(ceil_log2(0), 0);
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(3), 2);
/// assert_eq!(ceil_log2(8), 3);
/// assert_eq!(ceil_log2(9), 4);
/// ```
pub fn ceil_log2(x: usize) -> u32 {
    if x <= 1 {
        0
    } else {
        (x - 1).ilog2() + 1
    }
}

/// Integer ceiling division `⌈a / b⌉` for positive `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn div_ceil(a: usize, b: usize) -> usize {
    assert!(b != 0, "division by zero");
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_float_math() {
        for x in 2usize..=4096 {
            let expected = (x as f64).log2().ceil() as u32;
            assert_eq!(ceil_log2(x), expected, "x={x}");
        }
    }

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
    }

    #[test]
    fn div_ceil_basic() {
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(9, 3), 3);
        assert_eq!(div_ceil(0, 5), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_ceil_zero_divisor() {
        let _ = div_ceil(1, 0);
    }
}
