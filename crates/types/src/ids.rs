//! Strongly-typed identifiers for the synchronous Byzantine model.
//!
//! The paper's model distinguishes several kinds of "names" that are easy to
//! confuse when they are all bare integers:
//!
//! * the *original id* a process starts with (drawn from a huge namespace
//!   `[1 ⋯ N_max]`, only known to the process itself),
//! * the *new name* it outputs (drawn from the small target namespace
//!   `[1 ⋯ M]`),
//! * the *link label* a message arrives on (local to each process, `1 ⋯ N`,
//!   with link `N` being the self-loop), and
//! * the *process index*, a simulator-only handle that no protocol logic is
//!   allowed to see (processes in the model do **not** know global indices).
//!
//! Each gets its own newtype so that the compiler enforces the model.

use std::fmt;

/// The identifier a process starts with, drawn from `[1 ⋯ N_max]`.
///
/// Only the owning process knows its original id before the protocol runs;
/// Byzantine processes may claim arbitrary ids, including ids belonging to
/// correct processes or ids that belong to nobody.
///
/// # Example
///
/// ```
/// use opr_types::OriginalId;
/// let a = OriginalId::new(42);
/// let b = OriginalId::new(7);
/// assert!(b < a, "original ids order by their numeric value");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OriginalId(u64);

impl OriginalId {
    /// Wraps a raw id value.
    pub const fn new(raw: u64) -> Self {
        OriginalId(raw)
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for OriginalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "id:{}", self.0)
    }
}

impl fmt::Display for OriginalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for OriginalId {
    fn from(raw: u64) -> Self {
        OriginalId(raw)
    }
}

/// A new name output by a renaming algorithm, an integer in `[1 ⋯ M]`.
///
/// `M` is `N + t − 1` for Algorithm 1, `N` for its constant-time variant and
/// `N²` for the 2-step algorithm; see
/// [`SystemConfig::namespace_bound`](crate::SystemConfig::namespace_bound).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NewName(i64);

impl NewName {
    /// Wraps a raw name. Names produced by correct processes are ≥ 1; the
    /// raw value is signed so that off-by-one bugs surface as negative names
    /// in tests instead of wrapping around.
    pub const fn new(raw: i64) -> Self {
        NewName(raw)
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// Whether the name lies in the target namespace `[1 ⋯ bound]`.
    pub fn in_namespace(self, bound: u64) -> bool {
        self.0 >= 1 && (self.0 as u128) <= (bound as u128)
    }
}

impl fmt::Debug for NewName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "name:{}", self.0)
    }
}

impl fmt::Display for NewName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for NewName {
    fn from(raw: i64) -> Self {
        NewName(raw)
    }
}

/// A per-process link label in `1 ⋯ N`; link `N` is the self-loop.
///
/// Link labels are *local*: the label process `p` uses for the channel to
/// `q` is unrelated to the label `q` uses for `p`. Protocol code may count
/// distinct links a message type arrived on, but must never treat a label as
/// a global identity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(usize);

impl LinkId {
    /// Wraps a 1-based link label.
    ///
    /// # Panics
    ///
    /// Panics if `label` is zero; labels are 1-based as in the paper.
    pub fn new(label: usize) -> Self {
        assert!(label >= 1, "link labels are 1-based");
        LinkId(label)
    }

    /// The 1-based label.
    pub const fn label(self) -> usize {
        self.0
    }

    /// Zero-based index, convenient for vector indexing.
    pub const fn index(self) -> usize {
        self.0 - 1
    }

    /// Whether this is the self-loop for a system of `n` processes.
    pub fn is_self_loop(self, n: usize) -> bool {
        self.0 == n
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lnk:{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Simulator-side process handle (zero-based).
///
/// This exists only so that the network engine, adversary construction and
/// metrics can talk about processes. Honest protocol logic never sees it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessIndex(usize);

impl ProcessIndex {
    /// Wraps a zero-based index.
    pub const fn new(index: usize) -> Self {
        ProcessIndex(index)
    }

    /// The zero-based index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ProcessIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessIndex {
    fn from(index: usize) -> Self {
        ProcessIndex(index)
    }
}

/// A synchronous round (communication step), 1-based as in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Round(u32);

impl Round {
    /// The first round.
    pub const FIRST: Round = Round(1);

    /// Wraps a 1-based round number.
    ///
    /// # Panics
    ///
    /// Panics if `number` is zero.
    pub fn new(number: u32) -> Self {
        assert!(number >= 1, "rounds are 1-based");
        Round(number)
    }

    /// The 1-based round number.
    pub const fn number(self) -> u32 {
        self.0
    }

    /// The next round.
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn original_ids_order_by_value() {
        let mut set = BTreeSet::new();
        set.insert(OriginalId::new(30));
        set.insert(OriginalId::new(10));
        set.insert(OriginalId::new(20));
        let sorted: Vec<u64> = set.iter().map(|id| id.raw()).collect();
        assert_eq!(sorted, vec![10, 20, 30]);
    }

    #[test]
    fn new_name_namespace_membership() {
        assert!(NewName::new(1).in_namespace(1));
        assert!(NewName::new(7).in_namespace(7));
        assert!(!NewName::new(8).in_namespace(7));
        assert!(!NewName::new(0).in_namespace(7));
        assert!(!NewName::new(-3).in_namespace(7));
    }

    #[test]
    fn link_id_self_loop_detection() {
        let n = 5;
        assert!(LinkId::new(5).is_self_loop(n));
        assert!(!LinkId::new(4).is_self_loop(n));
        assert_eq!(LinkId::new(3).index(), 2);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn link_id_rejects_zero() {
        let _ = LinkId::new(0);
    }

    #[test]
    fn round_progression() {
        let r = Round::FIRST;
        assert_eq!(r.number(), 1);
        assert_eq!(r.next().number(), 2);
        assert!(Round::new(3) > Round::new(2));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn round_rejects_zero() {
        let _ = Round::new(0);
    }

    #[test]
    fn debug_representations_are_nonempty_and_tagged() {
        assert_eq!(format!("{:?}", OriginalId::new(9)), "id:9");
        assert_eq!(format!("{:?}", NewName::new(-1)), "name:-1");
        assert_eq!(format!("{:?}", LinkId::new(2)), "lnk:2");
        assert_eq!(format!("{:?}", ProcessIndex::new(0)), "p0");
        assert_eq!(format!("{:?}", Round::new(4)), "r4");
    }

    #[test]
    fn conversions() {
        let id: OriginalId = 5u64.into();
        assert_eq!(id.raw(), 5);
        let name: NewName = 9i64.into();
        assert_eq!(name.raw(), 9);
        let p: ProcessIndex = 3usize.into();
        assert_eq!(p.index(), 3);
    }
}
