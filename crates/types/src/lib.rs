#![warn(missing_docs)]
//! Domain types shared by every crate in the order-preserving renaming
//! workspace.
//!
//! This crate is dependency-free and defines the vocabulary of the system
//! model from Denysyuk & Rodrigues, *Order-Preserving Renaming in Synchronous
//! Systems with Byzantine Faults* (ICDCS 2013):
//!
//! * [`OriginalId`], [`NewName`], [`ProcessIndex`], [`LinkId`], [`Round`] —
//!   strongly-typed identifiers ([`ids`]).
//! * [`SystemConfig`] — the `(N, t, N_max)` triple together with the paper's
//!   thresholds (`N−t`, `N−2t`), the stretch factor `δ = 1 + 1/(3(N+t))`, the
//!   resilience [`Regime`]s of the three algorithms, and their round budgets
//!   ([`config`]).
//! * [`Rank`] — the totally-ordered finite value that approximate agreement
//!   iterates on ([`rank`]).
//! * [`RenamingOutcome`] — the map from old ids to new names produced by a
//!   run, plus the checkers for the problem's four properties: validity,
//!   termination, uniqueness and order preservation ([`outcome`]).
//!
//! # Example
//!
//! ```
//! use opr_types::{SystemConfig, Regime};
//!
//! let cfg = SystemConfig::new(10, 3)?;
//! assert!(cfg.supports(Regime::LogTime));        // N > 3t
//! assert!(!cfg.supports(Regime::ConstantTime));  // N must exceed t² + 2t
//! assert_eq!(cfg.quorum(), 7);                   // N − t
//! # Ok::<(), opr_types::ConfigError>(())
//! ```

pub mod config;
pub mod degraded;
pub mod error;
pub mod ids;
pub mod math;
pub mod outcome;
pub mod rank;

pub use config::{Regime, SystemConfig};
pub use degraded::{DegradedOutcome, MalformedKind, MalformedSend, Violation};
pub use error::{ConfigError, RenamingError};
pub use ids::{LinkId, NewName, OriginalId, ProcessIndex, Round};
pub use outcome::{PropertyViolation, RenamingOutcome};
pub use rank::Rank;
