//! Protocol-agnostic Byzantine behaviours.

use opr_sim::{Actor, Inbox, Outbox};
use opr_types::{LinkId, Round};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wraps an honest actor and crashes it (permanent silence) after
/// `alive_rounds` rounds of correct behaviour.
///
/// Crash faults are a strict subset of Byzantine faults; running the crash
/// strategy under the Byzantine algorithms checks that nothing *relies* on
/// faulty processes being malicious.
pub struct CrashAfter<A> {
    inner: A,
    alive_rounds: u32,
}

impl<A> CrashAfter<A> {
    /// Crash `inner` after it has sent in `alive_rounds` rounds.
    pub fn new(inner: A, alive_rounds: u32) -> Self {
        CrashAfter {
            inner,
            alive_rounds,
        }
    }
}

impl<A: Actor> Actor for CrashAfter<A> {
    type Msg = A::Msg;
    type Output = A::Output;

    fn send(&mut self, round: Round) -> Outbox<A::Msg> {
        if round.number() > self.alive_rounds {
            Outbox::Silent
        } else {
            self.inner.send(round)
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<A::Msg>) {
        if round.number() <= self.alive_rounds {
            self.inner.deliver(round, inbox);
        }
    }

    fn output(&self) -> Option<A::Output> {
        // A crashed process never outputs; it is faulty, so the network
        // does not wait for it anyway.
        None
    }
}

/// Replays previously-observed messages on random links: each round, for
/// each link, picks a random message from everything received so far (or
/// stays silent while nothing has been observed).
///
/// Replay keeps messages *syntactically perfect* — every byte once came from
/// a correct process — which probes whether protocols are confused by stale
/// or cross-delivered content.
pub struct Replay<M, O> {
    n: usize,
    pool: Vec<M>,
    rng: StdRng,
    _output: std::marker::PhantomData<O>,
}

impl<M, O> Replay<M, O> {
    /// Creates a replayer for a system of `n` processes.
    pub fn new(n: usize, seed: u64) -> Self {
        Replay {
            n,
            pool: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x7265_706c_6179),
            _output: std::marker::PhantomData,
        }
    }
}

impl<M: Clone + Send, O: Send> Actor for Replay<M, O> {
    type Msg = M;
    type Output = O;

    fn send(&mut self, _round: Round) -> Outbox<M> {
        if self.pool.is_empty() {
            return Outbox::Silent;
        }
        let entries = (1..=self.n)
            .map(|l| {
                let pick = self.rng.gen_range(0..self.pool.len());
                (LinkId::new(l), self.pool[pick].clone())
            })
            .collect();
        Outbox::Multicast(entries)
    }

    fn deliver(&mut self, _round: Round, inbox: Inbox<M>) {
        for (_, m) in inbox.messages() {
            // Bound the pool so long runs cannot grow without limit, and
            // clone only the messages actually kept — everything past the
            // cap stays a borrow of the shared payload.
            if self.pool.len() < 4096 {
                self.pool.push(m.clone());
            }
        }
    }

    fn output(&self) -> Option<O> {
        None
    }
}

/// Sends messages produced by a caller-supplied sampler, equivocating per
/// link — the chassis for protocol-specific random-noise strategies.
pub struct Noise<M, O, F> {
    n: usize,
    sampler: F,
    rng: StdRng,
    _types: std::marker::PhantomData<(M, O)>,
}

impl<M, O, F> Noise<M, O, F>
where
    F: FnMut(&mut StdRng, Round) -> Option<M>,
{
    /// Creates a noise generator; `sampler` is invoked once per link per
    /// round and may return `None` for silence on that link.
    pub fn new(n: usize, seed: u64, sampler: F) -> Self {
        Noise {
            n,
            sampler,
            rng: StdRng::seed_from_u64(seed ^ 0x6e_6f69_7365),
            _types: std::marker::PhantomData,
        }
    }
}

impl<M, O, F> Actor for Noise<M, O, F>
where
    M: Send,
    O: Send,
    F: FnMut(&mut StdRng, Round) -> Option<M> + Send,
{
    type Msg = M;
    type Output = O;

    fn send(&mut self, round: Round) -> Outbox<M> {
        let entries: Vec<(LinkId, M)> = (1..=self.n)
            .filter_map(|l| (self.sampler)(&mut self.rng, round).map(|m| (LinkId::new(l), m)))
            .collect();
        if entries.is_empty() {
            Outbox::Silent
        } else {
            Outbox::Multicast(entries)
        }
    }

    fn deliver(&mut self, _round: Round, _inbox: Inbox<M>) {}

    fn output(&self) -> Option<O> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_sim::WireSize;

    #[derive(Clone, Debug, PartialEq)]
    struct M(u32);
    impl WireSize for M {
        fn wire_bits(&self) -> u64 {
            32
        }
    }

    struct Echoer;
    impl Actor for Echoer {
        type Msg = M;
        type Output = u32;
        fn send(&mut self, round: Round) -> Outbox<M> {
            Outbox::Broadcast(M(round.number()))
        }
        fn deliver(&mut self, _round: Round, _inbox: Inbox<M>) {}
        fn output(&self) -> Option<u32> {
            Some(1)
        }
    }

    #[test]
    fn crash_after_silences_and_never_outputs() {
        let mut c = CrashAfter::new(Echoer, 2);
        assert!(matches!(c.send(Round::new(1)), Outbox::Broadcast(_)));
        assert!(matches!(c.send(Round::new(2)), Outbox::Broadcast(_)));
        assert!(matches!(c.send(Round::new(3)), Outbox::Silent));
        assert_eq!(c.output(), None, "faulty actors never decide");
    }

    #[test]
    fn replay_is_silent_until_it_has_material_then_equivocates() {
        let mut r: Replay<M, ()> = Replay::new(3, 5);
        assert!(matches!(r.send(Round::new(1)), Outbox::Silent));
        r.deliver(
            Round::new(1),
            Inbox::new(vec![(LinkId::new(1), M(7)), (LinkId::new(2), M(9))]),
        );
        match r.send(Round::new(2)) {
            Outbox::Multicast(entries) => {
                assert_eq!(entries.len(), 3);
                for (_, m) in entries {
                    assert!(m == M(7) || m == M(9), "replay only replays");
                }
            }
            other => panic!("expected multicast, got {:?}", other.fanout(3)),
        }
    }

    #[test]
    fn noise_invokes_sampler_per_link() {
        let mut noise: Noise<M, (), _> = Noise::new(4, 9, |rng, _| Some(M(rng.gen_range(0..100))));
        match noise.send(Round::new(1)) {
            Outbox::Multicast(entries) => assert_eq!(entries.len(), 4),
            _ => panic!("expected multicast"),
        }
    }

    #[test]
    fn noise_sampler_can_stay_silent() {
        let mut noise: Noise<M, (), _> = Noise::new(4, 9, |_, _| None);
        assert!(matches!(noise.send(Round::new(1)), Outbox::Silent));
    }
}
