//! Byzantine strategies against Algorithm 1.

use crate::fakes::fake_ids;
use opr_core::{AdversaryEnv, Alg1Msg};
use opr_rbcast::{FloodMsg, IdInterner, IdSlotSet};
use opr_sim::{Actor, Inbox, Outbox};
use opr_types::{LinkId, NewName, OriginalId, Rank, Round};
use std::collections::BTreeSet;

/// Interns `ids` into a bitset payload against the run interner — how every
/// strategy here ships its Echo/Ready sets.
fn slot_set(
    interner: &IdInterner<OriginalId>,
    ids: &BTreeSet<OriginalId>,
) -> IdSlotSet<OriginalId> {
    IdSlotSet::from_values(interner, ids.iter().copied())
}

/// Builds a δ-spaced (hence always `isValid`) vote vector over `ids` with a
/// constant `shift` added to every rank — the adversary's only lever that
/// survives validation.
fn shifted_votes(ids: &BTreeSet<OriginalId>, delta: f64, shift: f64) -> Vec<(OriginalId, Rank)> {
    ids.iter()
        .enumerate()
        .map(|(i, &id)| (id, Rank::new((i + 1) as f64 * delta + shift)))
        .collect()
}

/// Floods fake identifiers: announces a *different* fake id on every link in
/// step 1, then echoes and readies every id it knows (fakes included) for
/// the rest of the id-selection phase, and votes validly over the superset.
///
/// This is the attack Lemma IV.3 bounds: no matter how many fakes are
/// announced, at most `t + ⌊t²/(N−2t)⌋` can reach any `accepted` set,
/// because each fake needs `N − 2t` *correct* echoers (Lemma A.1).
pub struct IdForger {
    n: usize,
    delta: f64,
    per_link_fakes: Vec<OriginalId>,
    known: BTreeSet<OriginalId>,
    interner: IdInterner<OriginalId>,
}

impl IdForger {
    /// Creates the forger from the adversary environment.
    pub fn new(env: &AdversaryEnv<'_>) -> Self {
        let n = env.cfg.n();
        // One distinct fake per link; different slots use different fakes.
        let all = fake_ids(env, n * env.faulty_count.max(1));
        let per_link_fakes: Vec<OriginalId> =
            all.iter().skip(env.slot * n).take(n).copied().collect();
        let mut known: BTreeSet<OriginalId> = env.correct_ids.iter().copied().collect();
        known.extend(per_link_fakes.iter().copied());
        IdForger {
            n,
            delta: env.cfg.delta(),
            per_link_fakes,
            known,
            interner: env.interner.clone(),
        }
    }
}

impl Actor for IdForger {
    type Msg = Alg1Msg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<Alg1Msg> {
        match round.number() {
            1 => Outbox::Multicast(
                (1..=self.n)
                    .map(|l| {
                        (
                            LinkId::new(l),
                            Alg1Msg::Flood(FloodMsg::Init(self.per_link_fakes[l - 1])),
                        )
                    })
                    .collect(),
            ),
            2 => Outbox::Broadcast(Alg1Msg::Flood(FloodMsg::Echo(slot_set(
                &self.interner,
                &self.known,
            )))),
            3 | 4 => Outbox::Broadcast(Alg1Msg::Flood(FloodMsg::Ready(slot_set(
                &self.interner,
                &self.known,
            )))),
            _ => Outbox::Broadcast(Alg1Msg::Votes(shifted_votes(&self.known, self.delta, 0.0))),
        }
    }

    fn deliver(&mut self, _round: Round, inbox: Inbox<Alg1Msg>) {
        for (_, msg) in inbox.messages() {
            match msg {
                Alg1Msg::Flood(FloodMsg::Init(id)) => {
                    self.known.insert(*id);
                }
                Alg1Msg::Flood(FloodMsg::Echo(set)) | Alg1Msg::Flood(FloodMsg::Ready(set)) => {
                    self.known.extend(set.values_sorted());
                }
                Alg1Msg::Votes(_) => {}
            }
        }
    }

    fn output(&self) -> Option<NewName> {
        None
    }
}

/// The threshold-gaming attack: colluding Byzantine processes drive a fake
/// id through the step-4 truncation crack (see
/// [`DivergencePlan`](crate::divergence::DivergencePlan)) so that exactly
/// the favoured half of the correct processes accept it. This produces the
/// maximal initial rank discrepancy Δ₅ the voting phase must repair
/// (Lemma IV.7); during voting it keeps pulling with valid opposite-shift
/// votes per half.
pub struct EchoSplitter {
    delta: f64,
    plan: crate::divergence::DivergencePlan,
    known: BTreeSet<OriginalId>,
}

impl EchoSplitter {
    /// Creates the splitter from the adversary environment.
    pub fn new(env: &AdversaryEnv<'_>) -> Self {
        let fake = fake_ids(env, 1)[0];
        let known: BTreeSet<OriginalId> = env.correct_ids.iter().copied().collect();
        EchoSplitter {
            delta: env.cfg.delta(),
            plan: crate::divergence::DivergencePlan::new(env, fake),
            known,
        }
    }
}

impl Actor for EchoSplitter {
    type Msg = Alg1Msg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<Alg1Msg> {
        let r = round.number();
        if r <= 4 {
            // Base set: correct ids only — the fake's propagation is
            // entirely controlled by the divergence plan.
            let base: BTreeSet<OriginalId> = self
                .known
                .iter()
                .copied()
                .filter(|&id| id != self.plan.fake)
                .collect();
            self.plan.flood_outbox(r, &base)
        } else {
            // Valid superset votes with opposite shifts per half, to keep
            // pulling ranks apart without being filtered.
            let mut full = self.known.clone();
            full.insert(self.plan.fake);
            let low = Alg1Msg::Votes(shifted_votes(&full, self.delta, -1.0));
            let high = Alg1Msg::Votes(shifted_votes(&full, self.delta, 1.0));
            Outbox::Multicast(
                self.plan
                    .all_correct_links
                    .iter()
                    .map(|&l| {
                        let msg = if self.plan.favours(l) {
                            low.clone()
                        } else {
                            high.clone()
                        };
                        (l, msg)
                    })
                    .collect(),
            )
        }
    }

    fn deliver(&mut self, _round: Round, inbox: Inbox<Alg1Msg>) {
        for (_, msg) in inbox.messages() {
            match msg {
                Alg1Msg::Flood(FloodMsg::Init(id)) => {
                    self.known.insert(*id);
                }
                Alg1Msg::Flood(FloodMsg::Echo(set)) | Alg1Msg::Flood(FloodMsg::Ready(set)) => {
                    self.known.extend(set.values_sorted());
                }
                Alg1Msg::Votes(_) => {}
            }
        }
    }

    fn output(&self) -> Option<NewName> {
        None
    }
}

/// Participates honestly in id selection (with one consistent fake id), then
/// attacks the voting phase with *valid* but extremal vote vectors —
/// per-link alternating low/high shifts of `±(t+1)·δ`. Every vote passes
/// `isValid`; the trim-`t` + `select_t` reduction (Lemma IV.8) is the only
/// defence. This is the designated worst case for the convergence
/// experiment (F1).
pub struct RankSkewer {
    n: usize,
    t: usize,
    delta: f64,
    fake: OriginalId,
    known: BTreeSet<OriginalId>,
    interner: IdInterner<OriginalId>,
}

impl RankSkewer {
    /// Creates the skewer from the adversary environment.
    pub fn new(env: &AdversaryEnv<'_>) -> Self {
        let fakes = fake_ids(env, env.faulty_count.max(1));
        let mut known: BTreeSet<OriginalId> = env.correct_ids.iter().copied().collect();
        let fake = fakes[env.slot.min(fakes.len() - 1)];
        known.insert(fake);
        RankSkewer {
            n: env.cfg.n(),
            t: env.cfg.t(),
            delta: env.cfg.delta(),
            fake,
            known,
            interner: env.interner.clone(),
        }
    }
}

impl Actor for RankSkewer {
    type Msg = Alg1Msg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<Alg1Msg> {
        match round.number() {
            1 => Outbox::Broadcast(Alg1Msg::Flood(FloodMsg::Init(self.fake))),
            2 => Outbox::Broadcast(Alg1Msg::Flood(FloodMsg::Echo(slot_set(
                &self.interner,
                &self.known,
            )))),
            3 | 4 => Outbox::Broadcast(Alg1Msg::Flood(FloodMsg::Ready(slot_set(
                &self.interner,
                &self.known,
            )))),
            _ => {
                let amplitude = (self.t as f64 + 1.0) * self.delta;
                let low = Alg1Msg::Votes(shifted_votes(&self.known, self.delta, -amplitude));
                let high = Alg1Msg::Votes(shifted_votes(&self.known, self.delta, amplitude));
                Outbox::Multicast(
                    (1..=self.n)
                        .map(|l| {
                            let msg = if l % 2 == 0 {
                                low.clone()
                            } else {
                                high.clone()
                            };
                            (LinkId::new(l), msg)
                        })
                        .collect(),
                )
            }
        }
    }

    fn deliver(&mut self, _round: Round, inbox: Inbox<Alg1Msg>) {
        for (_, msg) in inbox.messages() {
            match msg {
                Alg1Msg::Flood(FloodMsg::Init(id)) => {
                    self.known.insert(*id);
                }
                Alg1Msg::Flood(FloodMsg::Echo(set)) | Alg1Msg::Flood(FloodMsg::Ready(set)) => {
                    self.known.extend(set.values_sorted());
                }
                Alg1Msg::Votes(_) => {}
            }
        }
    }

    fn output(&self) -> Option<NewName> {
        None
    }
}

/// Attacks order preservation head-on: sends vote vectors that *invert* the
/// ranks of adjacent ids, under-space them, or omit timely ids entirely.
/// All of these must be rejected by `isValid` (Algorithm 2); the test-suite
/// asserts the rejections are observed and order preservation survives.
pub struct OrderInverter {
    fake: OriginalId,
    known: BTreeSet<OriginalId>,
    delta: f64,
    interner: IdInterner<OriginalId>,
}

impl OrderInverter {
    /// Creates the inverter from the adversary environment.
    pub fn new(env: &AdversaryEnv<'_>) -> Self {
        let fakes = fake_ids(env, 1);
        let mut known: BTreeSet<OriginalId> = env.correct_ids.iter().copied().collect();
        known.insert(fakes[0]);
        OrderInverter {
            fake: fakes[0],
            known,
            delta: env.cfg.delta(),
            interner: env.interner.clone(),
        }
    }
}

impl Actor for OrderInverter {
    type Msg = Alg1Msg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<Alg1Msg> {
        match round.number() {
            1 => Outbox::Broadcast(Alg1Msg::Flood(FloodMsg::Init(self.fake))),
            2 => Outbox::Broadcast(Alg1Msg::Flood(FloodMsg::Echo(slot_set(
                &self.interner,
                &self.known,
            )))),
            3 | 4 => Outbox::Broadcast(Alg1Msg::Flood(FloodMsg::Ready(slot_set(
                &self.interner,
                &self.known,
            )))),
            r => {
                let mut votes = shifted_votes(&self.known, self.delta, 0.0);
                match r % 3 {
                    0 if votes.len() >= 2 => {
                        // Swap the first two ranks: inverted order.
                        let tmp = votes[0].1;
                        votes[0].1 = votes[1].1;
                        votes[1].1 = tmp;
                    }
                    1 if !votes.is_empty() => {
                        // Omit the smallest id: missing timely entry.
                        votes.remove(0);
                    }
                    _ => {
                        // Collapse spacing below δ.
                        for (i, entry) in votes.iter_mut().enumerate() {
                            entry.1 = Rank::new(1.0 + i as f64 * self.delta * 0.5);
                        }
                    }
                }
                Outbox::Broadcast(Alg1Msg::Votes(votes))
            }
        }
    }

    fn deliver(&mut self, _round: Round, inbox: Inbox<Alg1Msg>) {
        for (_, msg) in inbox.messages() {
            if let Alg1Msg::Flood(FloodMsg::Init(id)) = msg {
                self.known.insert(*id);
            }
        }
    }

    fn output(&self) -> Option<NewName> {
        None
    }
}

/// The attack the `isValid` filter exists to stop (ablation A1, and the
/// paper's Section I motivation): drive `t` fake ids below the id space
/// through the divergence gadget with *staggered* favoured sets, so the
/// correct processes' rank hulls for two adjacent victim ids overlap on a
/// segment of width `(t−1)·δ`; then vote both victims onto the middle of
/// the overlap. The vote pair has spacing `0 < δ`, so with validation
/// enabled it is rejected and harmless; with validation ablated the per-id
/// approximate agreements converge to a *common* value for both victims,
/// destroying uniqueness/order (demonstrated by experiment A1; needs
/// `t ≥ 2` for a non-degenerate overlap).
pub struct PairSqueezer {
    delta: f64,
    slot: usize,
    plans: Vec<crate::divergence::DivergencePlan>,
    /// The two adjacent correct ids being squeezed.
    victim_low: OriginalId,
    victim_high: OriginalId,
    known: BTreeSet<OriginalId>,
}

impl PairSqueezer {
    /// Creates the squeezer from the adversary environment.
    pub fn new(env: &AdversaryEnv<'_>) -> Self {
        let t = env.cfg.t().max(1);
        let correct: Vec<OriginalId> = env.correct_ids.to_vec();
        let c = correct.len();
        let mid = c / 2;
        let victim_low = correct[mid.min(c - 1)];
        let victim_high = correct[(mid + 1).min(c - 1)];
        // t fakes strictly below every correct id, so each accepted fake
        // shifts every correct position up by one.
        let min_raw = correct.first().map(|i| i.raw()).unwrap_or(u64::MAX);
        let fakes: Vec<OriginalId> = if min_raw > t as u64 {
            (1..=t as u64)
                .map(|j| OriginalId::new(min_raw - j))
                .collect()
        } else {
            crate::fakes::fake_ids(env, t)
        };
        // Staggered favoured counts: fake j is accepted by the first
        // ⌈c·(j+1)/(t+1)⌉ correct processes, creating a position gradient.
        let plans = fakes
            .iter()
            .enumerate()
            .map(|(j, &fake)| {
                let favoured = (c * (j + 1)).div_ceil(t + 1).min(c);
                crate::divergence::DivergencePlan::with_favoured(env, fake, favoured)
            })
            .collect();
        PairSqueezer {
            delta: env.cfg.delta(),
            slot: env.slot,
            plans,
            victim_low,
            victim_high,
            known: correct.iter().copied().collect(),
        }
    }

    fn correct_only(&self) -> BTreeSet<OriginalId> {
        let fakes: BTreeSet<OriginalId> = self.plans.iter().map(|p| p.fake).collect();
        self.known.difference(&fakes).copied().collect()
    }

    /// The squeeze vote: position-spaced ranks over correct ids plus all
    /// fakes, with both victims on the midpoint of their hull overlap.
    fn squeeze_votes(&self) -> Vec<(OriginalId, Rank)> {
        let mut all = self.known.clone();
        for plan in &self.plans {
            all.insert(plan.fake);
        }
        let sorted: Vec<OriginalId> = all.iter().copied().collect();
        // Position of the low victim among correct ids only (its hull
        // bottom); the hull top is +t, the high victim's hull is shifted by
        // one — overlap midpoint = k0 + (t+1)/2.
        let correct = self.correct_only();
        let k0 = correct
            .iter()
            .position(|&id| id == self.victim_low)
            .map(|p| p + 1)
            .unwrap_or(1);
        let target = (k0 as f64 + (self.plans.len() as f64 + 1.0) / 2.0) * self.delta;
        sorted
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let value = if id == self.victim_low || id == self.victim_high {
                    target
                } else {
                    (i + 1) as f64 * self.delta
                };
                (id, Rank::new(value))
            })
            .collect()
    }
}

impl Actor for PairSqueezer {
    type Msg = Alg1Msg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<Alg1Msg> {
        let r = round.number();
        let base = self.correct_only();
        match r {
            1 => {
                // One fake per Byzantine slot (one Init per link per round).
                match self.plans.get(self.slot) {
                    Some(plan) => plan.flood_outbox(1, &base),
                    None => Outbox::Silent,
                }
            }
            2 | 3 => {
                // Merge all plans: per link, the echoed/ready set is the
                // base plus every fake whose plan targets that link.
                let links = &self.plans[0].all_correct_links;
                let entries = links
                    .iter()
                    .map(|&l| {
                        let mut set = base.clone();
                        for plan in &self.plans {
                            let targeted = if r == 2 {
                                plan.echo_links.contains(&l)
                            } else {
                                plan.ready3_links.contains(&l)
                            };
                            if targeted {
                                set.insert(plan.fake);
                            }
                        }
                        let payload = slot_set(&self.plans[0].interner, &set);
                        let msg = if r == 2 {
                            Alg1Msg::Flood(FloodMsg::Echo(payload))
                        } else {
                            Alg1Msg::Flood(FloodMsg::Ready(payload))
                        };
                        (l, msg)
                    })
                    .collect();
                Outbox::Multicast(entries)
            }
            4 => {
                let links = &self.plans[0].all_correct_links;
                let entries: Vec<(LinkId, Alg1Msg)> = links
                    .iter()
                    .filter_map(|&l| {
                        let set: BTreeSet<OriginalId> = self
                            .plans
                            .iter()
                            .filter(|plan| plan.favours(l))
                            .map(|plan| plan.fake)
                            .collect();
                        #[allow(clippy::unnecessary_lazy_evaluations)]
                        (!set.is_empty()).then(|| {
                            (
                                l,
                                Alg1Msg::Flood(FloodMsg::Ready(slot_set(
                                    &self.plans[0].interner,
                                    &set,
                                ))),
                            )
                        })
                    })
                    .collect();
                if entries.is_empty() {
                    Outbox::Silent
                } else {
                    Outbox::Multicast(entries)
                }
            }
            _ => Outbox::Broadcast(Alg1Msg::Votes(self.squeeze_votes())),
        }
    }

    fn deliver(&mut self, _round: Round, inbox: Inbox<Alg1Msg>) {
        for (_, msg) in inbox.messages() {
            match msg {
                Alg1Msg::Flood(FloodMsg::Init(id)) => {
                    self.known.insert(*id);
                }
                Alg1Msg::Flood(FloodMsg::Echo(set)) | Alg1Msg::Flood(FloodMsg::Ready(set)) => {
                    self.known.extend(set.values_sorted());
                }
                Alg1Msg::Votes(_) => {}
            }
        }
    }

    fn output(&self) -> Option<NewName> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_core::runner::{run_alg1, Alg1Options};
    use opr_types::{Regime, SystemConfig};

    fn ids(raw: &[u64]) -> Vec<OriginalId> {
        raw.iter().map(|&x| OriginalId::new(x)).collect()
    }

    fn check_strategy<F>(
        cfg: SystemConfig,
        raw_ids: &[u64],
        f: usize,
        build: F,
    ) -> opr_core::RunResult<opr_core::Alg1Probe>
    where
        F: FnMut(&AdversaryEnv) -> Option<Box<dyn Actor<Msg = Alg1Msg, Output = NewName>>>,
    {
        let result = run_alg1(
            cfg,
            Regime::LogTime,
            &ids(raw_ids),
            f,
            build,
            Alg1Options {
                seed: 42,
                allow_regime_violation: false,
                ..Alg1Options::default()
            },
        )
        .unwrap();
        let m = cfg.namespace_bound(Regime::LogTime);
        let violations = result.outcome.verify(m);
        assert!(violations.is_empty(), "violations: {violations:?}");
        result
    }

    #[test]
    fn id_forger_cannot_break_renaming() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let result = check_strategy(cfg, &[5, 18, 33, 47, 90], 2, |env| {
            Some(Box::new(IdForger::new(env)))
        });
        // Lemma IV.3: accepted sets stay within the bound.
        for size in result.probe.accepted_sizes() {
            assert!(size <= cfg.accepted_bound(), "{size} > bound");
        }
    }

    #[test]
    fn echo_splitter_cannot_break_renaming() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let result = check_strategy(cfg, &[5, 18, 33, 47, 90], 2, |env| {
            Some(Box::new(EchoSplitter::new(env)))
        });
        assert_eq!(result.probe.containment_violations(), 0);
    }

    #[test]
    fn rank_skewer_cannot_break_renaming() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let result = check_strategy(cfg, &[5, 18, 33, 47, 90], 2, |env| {
            Some(Box::new(RankSkewer::new(env)))
        });
        // The spread must still contract to a safe level by the end.
        let series = result.probe.spread_series();
        let last = *series.last().unwrap();
        assert!(
            last < (cfg.delta() - 1.0) / 2.0 + 1e-9,
            "final spread {last} too large"
        );
    }

    #[test]
    fn order_inverter_votes_are_rejected() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let result = check_strategy(cfg, &[5, 18, 33, 47, 90], 2, |env| {
            Some(Box::new(OrderInverter::new(env)))
        });
        assert!(
            result.probe.total_rejected_votes() > 0,
            "isValid should have rejected the inverted votes"
        );
    }

    #[test]
    fn strategies_work_at_minimal_resilience() {
        // N = 3t+1 is the tightest legal configuration.
        let cfg = SystemConfig::new(4, 1).unwrap();
        check_strategy(cfg, &[11, 22, 33], 1, |env| {
            Some(Box::new(IdForger::new(env)))
        });
        check_strategy(cfg, &[11, 22, 33], 1, |env| {
            Some(Box::new(RankSkewer::new(env)))
        });
        check_strategy(cfg, &[11, 22, 33], 1, |env| {
            Some(Box::new(EchoSplitter::new(env)))
        });
    }

    #[test]
    fn shifted_votes_are_delta_spaced() {
        let set: BTreeSet<OriginalId> = [3u64, 7, 9].iter().map(|&x| OriginalId::new(x)).collect();
        let delta = 1.01;
        let votes = shifted_votes(&set, delta, 5.0);
        for w in votes.windows(2) {
            assert!(w[0].1.spaced_at_least(w[1].1, delta));
        }
        assert_eq!(votes[0].1, Rank::new(delta + 5.0));
    }
}
