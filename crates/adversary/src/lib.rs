#![warn(missing_docs)]
//! A library of Byzantine strategies against the renaming protocols.
//!
//! The paper's correctness claims quantify over *all* adversaries; an
//! implementation can only test against concrete ones. This crate
//! implements the attack families the paper's lemmas specifically defend
//! against, plus generic fuzzing, so that the test-suite and the
//! lemma-validation experiment (T4) can measure the bounds as maxima over a
//! hostile suite:
//!
//! | Strategy | Attacks | Defended by |
//! |---|---|---|
//! | [`alg1::IdForger`] | floods fake ids, equivocating one per link | Echo threshold `N−t` (Lemma IV.3) |
//! | [`alg1::EchoSplitter`] | delivers fakes to exactly `N−2t` correct processes, echoes asymmetrically | `Ready` amplification + `accepted ⊇ timely` (Lemmas IV.1/A.1) |
//! | [`alg1::RankSkewer`] | sends *valid* but extremal vote vectors, different per link | trim-`t` + `select_t` (Lemma IV.8) |
//! | [`alg1::OrderInverter`] | votes with inverted/missing ranks | `isValid` (Algorithm 2, Lemma IV.4) |
//! | [`two_step::FakeFlooder`] | per-receiver echo sets with `2t` fakes each, sized to pass `isValid` | offset clamp `min(counter, N−t)` (Lemma VI.1) |
//! | [`two_step::EchoWithholder`] | echoes fakes to asymmetric halves | discrepancy bound `Δ ≤ 2t²` (Lemma VI.1) |
//! | [`generic::CrashAfter`] | correct-then-silent (crash) behaviour | all (crash ⊂ Byzantine) |
//! | [`generic::Replay`] | replays observed messages on random links | typed thresholds |
//! | random noise (via [`AdversarySpec::RandomNoise`]) | fuzzing with well-formed garbage | everything |
//!
//! [`AdversarySpec`] is the serializable face of the suite: experiments
//! enumerate `AdversarySpec::ALG1` / `AdversarySpec::TWO_STEP` and build
//! actors via [`AdversarySpec::build_alg1`] / [`AdversarySpec::build_two_step`].
//!
//! # Coordination
//!
//! Byzantine processes in the model collude with zero cost. Strategies here
//! coordinate *deterministically*: every faulty actor derives the same plan
//! from the shared [`AdversaryEnv`](opr_core::AdversaryEnv) (seed, slot
//! count, correct ids, topology), so no side channel is needed.

pub mod alg1;
pub mod divergence;
pub mod fakes;
pub mod generic;
pub mod spec;
pub mod two_step;

pub use fakes::fake_ids;
pub use spec::AdversarySpec;
