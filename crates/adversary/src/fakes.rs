//! Deterministic fake-id generation shared by all strategies.

use opr_core::AdversaryEnv;
use opr_types::OriginalId;
use std::collections::BTreeSet;

/// Generates `count` fake original ids that *interleave* the correct ids
/// (midpoints of consecutive gaps first, then values beyond both ends).
///
/// Interleaved fakes are the worst case for order preservation: a fake
/// landing between two adjacent correct ids forces their ranks apart and
/// maximizes rank discrepancies between processes that accept the fake and
/// processes that do not.
///
/// The result is deterministic in the environment (not the slot), so all
/// colluding actors compute the same fake set.
pub fn fake_ids(env: &AdversaryEnv<'_>, count: usize) -> Vec<OriginalId> {
    let correct: Vec<u64> = env.correct_ids.iter().map(|id| id.raw()).collect();
    let mut fakes = Vec::with_capacity(count);
    let mut used: BTreeSet<u64> = correct.iter().copied().collect();

    // Midpoints of gaps between consecutive correct ids, widest gaps first.
    let mut gaps: Vec<(u64, u64)> = correct.windows(2).map(|w| (w[0], w[1])).collect();
    gaps.sort_by_key(|&(a, b)| std::cmp::Reverse(b - a));
    for (a, b) in gaps {
        if fakes.len() >= count {
            break;
        }
        let mid = a + (b - a) / 2;
        if mid > a && mid < b && used.insert(mid) {
            fakes.push(OriginalId::new(mid));
        }
    }
    // Values below the minimum, then above the maximum.
    let lo = correct.first().copied().unwrap_or(1_000);
    let hi = correct.last().copied().unwrap_or(1_000);
    let mut below = lo.saturating_sub(1);
    let mut above = hi + 1;
    while fakes.len() < count {
        if below > 0 && used.insert(below) {
            fakes.push(OriginalId::new(below));
            below = below.saturating_sub(1);
        } else if used.insert(above) {
            fakes.push(OriginalId::new(above));
            above += 1;
        } else {
            above += 1;
        }
    }
    fakes.sort_unstable();
    fakes
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_sim::Topology;
    use opr_types::SystemConfig;

    fn with_env<R>(raw_ids: &[u64], f: impl FnOnce(&AdversaryEnv<'_>) -> R) -> R {
        let cfg = SystemConfig::new(raw_ids.len() + 2, 2).unwrap();
        let topo = Topology::seeded(cfg.n(), 1);
        let ids: Vec<OriginalId> = raw_ids.iter().map(|&x| OriginalId::new(x)).collect();
        let assignments: Vec<(usize, OriginalId)> =
            ids.iter().enumerate().map(|(i, &id)| (i + 2, id)).collect();
        let env = AdversaryEnv {
            cfg,
            slot: 0,
            faulty_count: 2,
            index: 0,
            correct_ids: &ids,
            correct_assignments: &assignments,
            topology: &topo,
            seed: 7,
            interner: opr_rbcast::IdInterner::new(),
        };
        f(&env)
    }

    #[test]
    fn fakes_are_distinct_and_disjoint_from_correct() {
        with_env(&[10, 20, 50, 100], |env| {
            let fakes = fake_ids(env, 6);
            assert_eq!(fakes.len(), 6);
            let set: BTreeSet<OriginalId> = fakes.iter().copied().collect();
            assert_eq!(set.len(), 6, "distinct");
            for f in &fakes {
                assert!(!env.correct_ids.contains(f), "fake {f:?} collides");
            }
        });
    }

    #[test]
    fn fakes_prefer_interleaving() {
        with_env(&[10, 1000], |env| {
            let fakes = fake_ids(env, 1);
            // The single fake lands strictly between the two correct ids.
            assert!(fakes[0].raw() > 10 && fakes[0].raw() < 1000);
        });
    }

    #[test]
    fn fakes_overflow_beyond_ends_when_gaps_run_out() {
        with_env(&[5, 6, 7], |env| {
            let fakes = fake_ids(env, 4);
            assert_eq!(fakes.len(), 4);
            let raws: BTreeSet<u64> = fakes.iter().map(|f| f.raw()).collect();
            assert!(raws.iter().all(|&r| r != 5 && r != 6 && r != 7));
        });
    }

    #[test]
    fn deterministic_across_calls() {
        let a = with_env(&[3, 30, 300], |env| fake_ids(env, 5));
        let b = with_env(&[3, 30, 300], |env| fake_ids(env, 5));
        assert_eq!(a, b);
    }
}
