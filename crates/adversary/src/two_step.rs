//! Byzantine strategies against Algorithm 4 (2-step renaming).

use crate::fakes::fake_ids;
use opr_core::{AdversaryEnv, TwoStepMsg};
use opr_rbcast::{IdInterner, IdSlotSet};
use opr_sim::{Actor, Inbox, Outbox};
use opr_types::{LinkId, NewName, OriginalId, Round};
use std::collections::{BTreeMap, BTreeSet};

/// The Lemma VI.1 worst case: every echo message carries the maximum `2t`
/// Byzantine ids that still passes `isValid` — `t` fakes the receiver
/// already knows (announced to it in step 1) plus `t` brand-new fakes — with
/// correct ids dropped as needed to stay within the `N`-id size limit.
pub struct FakeFlooder {
    n: usize,
    t: usize,
    /// Per correct-process link: the fake announced to that link in step 1.
    announced: BTreeMap<LinkId, OriginalId>,
    /// Fakes never announced anywhere (unknown to every receiver).
    hidden_fakes: Vec<OriginalId>,
    correct_ids: Vec<OriginalId>,
    correct_links: Vec<LinkId>,
    interner: IdInterner<OriginalId>,
}

impl FakeFlooder {
    /// Creates the flooder from the adversary environment.
    pub fn new(env: &AdversaryEnv<'_>) -> Self {
        let n = env.cfg.n();
        let t = env.cfg.t();
        let correct_links = env.links_to_correct();
        // Generate enough fakes for per-link announcements plus t hidden
        // ones per slot, disjoint across slots.
        let per_slot = correct_links.len() + t;
        let all = fake_ids(env, per_slot * env.faulty_count.max(1));
        let mine: Vec<OriginalId> = all
            .iter()
            .skip(env.slot * per_slot)
            .take(per_slot)
            .copied()
            .collect();
        let announced: BTreeMap<LinkId, OriginalId> = correct_links
            .iter()
            .copied()
            .zip(mine.iter().copied())
            .collect();
        let hidden_fakes = mine[correct_links.len().min(mine.len())..].to_vec();
        FakeFlooder {
            n,
            t,
            announced,
            hidden_fakes,
            correct_ids: env.correct_ids.to_vec(),
            correct_links,
            interner: env.interner.clone(),
        }
    }
}

impl Actor for FakeFlooder {
    type Msg = TwoStepMsg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<TwoStepMsg> {
        match round.number() {
            1 => Outbox::Multicast(
                self.announced
                    .iter()
                    .map(|(&l, &f)| (l, TwoStepMsg::Id(f)))
                    .collect(),
            ),
            2 => {
                let mut entries = Vec::new();
                for &l in &self.correct_links {
                    // Receiver-specific echo: all correct ids (trimmed to
                    // make room), the fake we announced to this receiver,
                    // and t hidden fakes.
                    let mut set: BTreeSet<OriginalId> = self.correct_ids.iter().copied().collect();
                    if let Some(&f) = self.announced.get(&l) {
                        set.insert(f);
                    }
                    for &h in self.hidden_fakes.iter().take(self.t) {
                        set.insert(h);
                    }
                    // Trim largest correct ids until |set| ≤ N, keeping at
                    // least N−t overlap with the receiver's timely set.
                    while set.len() > self.n {
                        let largest_correct = self
                            .correct_ids
                            .iter()
                            .rev()
                            .find(|id| set.contains(id))
                            .copied();
                        match largest_correct {
                            Some(id) => {
                                set.remove(&id);
                            }
                            None => break,
                        }
                    }
                    entries.push((
                        l,
                        TwoStepMsg::MultiEcho(IdSlotSet::from_values(
                            &self.interner,
                            set.iter().copied(),
                        )),
                    ));
                }
                Outbox::Multicast(entries)
            }
            _ => Outbox::Silent,
        }
    }

    fn deliver(&mut self, _round: Round, _inbox: Inbox<TwoStepMsg>) {}

    fn output(&self) -> Option<NewName> {
        None
    }
}

/// Echoes a shared fake id to only half of the correct processes, so their
/// counters (and hence cumulative offsets) diverge — the discrepancy attack
/// that the `min(counter, N−t)` clamp and the `N > 2t² + t` bound absorb
/// (Lemmas VI.1, VI.2).
pub struct EchoWithholder {
    fake: OriginalId,
    correct_ids: Vec<OriginalId>,
    favoured: Vec<LinkId>,
    others: Vec<LinkId>,
    interner: IdInterner<OriginalId>,
}

impl EchoWithholder {
    /// Creates the withholder from the adversary environment.
    pub fn new(env: &AdversaryEnv<'_>) -> Self {
        // All slots share the same fake (coordinated), so its counter gets
        // t echoes at favoured receivers and 0 elsewhere.
        let fake = fake_ids(env, 1)[0];
        let links = env.links_to_correct();
        let half = links.len() / 2;
        EchoWithholder {
            fake,
            correct_ids: env.correct_ids.to_vec(),
            favoured: links[..half].to_vec(),
            others: links[half..].to_vec(),
            interner: env.interner.clone(),
        }
    }
}

impl Actor for EchoWithholder {
    type Msg = TwoStepMsg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<TwoStepMsg> {
        match round.number() {
            1 => {
                // Announce the shared fake to the favoured half only, so it
                // is in their timely sets (and counts toward overlap there).
                Outbox::Multicast(
                    self.favoured
                        .iter()
                        .map(|&l| (l, TwoStepMsg::Id(self.fake)))
                        .collect(),
                )
            }
            2 => {
                let without =
                    IdSlotSet::from_values(&self.interner, self.correct_ids.iter().copied());
                let with_fake = {
                    let mut s = without.clone();
                    s.insert(&self.fake);
                    s
                };
                let mut entries: Vec<(LinkId, TwoStepMsg)> = self
                    .favoured
                    .iter()
                    .map(|&l| (l, TwoStepMsg::MultiEcho(with_fake.clone())))
                    .collect();
                entries.extend(
                    self.others
                        .iter()
                        .map(|&l| (l, TwoStepMsg::MultiEcho(without.clone()))),
                );
                Outbox::Multicast(entries)
            }
            _ => Outbox::Silent,
        }
    }

    fn deliver(&mut self, _round: Round, _inbox: Inbox<TwoStepMsg>) {}

    fn output(&self) -> Option<NewName> {
        None
    }
}

/// The attack the offset clamp `min(counter, N − t)` exists to stop
/// (ablation A2): echo the correct ids to only half of the correct
/// processes. Counters for *every* correct id then differ by `t` across the
/// two halves; with the clamp both sides floor at `N − t` and nothing
/// happens, but without it the per-id error accumulates linearly along the
/// sorted id sequence and eventually inverts names across processes.
pub struct HalfEcho {
    fake: OriginalId,
    correct_ids: Vec<OriginalId>,
    favoured: Vec<LinkId>,
    interner: IdInterner<OriginalId>,
}

impl HalfEcho {
    /// Creates the half-echoer from the adversary environment.
    pub fn new(env: &AdversaryEnv<'_>) -> Self {
        let links = env.links_to_correct();
        let half = links.len() / 2;
        HalfEcho {
            fake: fake_ids(env, 1)[0],
            correct_ids: env.correct_ids.to_vec(),
            favoured: links[..half].to_vec(),
            interner: env.interner.clone(),
        }
    }
}

impl Actor for HalfEcho {
    type Msg = TwoStepMsg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<TwoStepMsg> {
        match round.number() {
            // Announce to everyone so our echoes pass the linkid ≠ ⊥ check.
            1 => Outbox::Broadcast(TwoStepMsg::Id(self.fake)),
            2 => {
                let set = IdSlotSet::from_values(
                    &self.interner,
                    self.correct_ids.iter().copied().chain([self.fake]),
                );
                Outbox::Multicast(
                    self.favoured
                        .iter()
                        .map(|&l| (l, TwoStepMsg::MultiEcho(set.clone())))
                        .collect(),
                )
            }
            _ => Outbox::Silent,
        }
    }

    fn deliver(&mut self, _round: Round, _inbox: Inbox<TwoStepMsg>) {}

    fn output(&self) -> Option<NewName> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_core::runner::run_two_step;
    use opr_types::SystemConfig;

    fn ids(raw: &[u64]) -> Vec<OriginalId> {
        raw.iter().map(|&x| OriginalId::new(x)).collect()
    }

    fn correct_set(raw: &[u64]) -> BTreeSet<OriginalId> {
        raw.iter().map(|&x| OriginalId::new(x)).collect()
    }

    #[test]
    fn fake_flooder_cannot_break_renaming() {
        let cfg = SystemConfig::new(11, 2).unwrap();
        let raw: Vec<u64> = (1..=9).map(|i| i * 13).collect();
        for seed in 0..5 {
            let result = run_two_step(
                cfg,
                &ids(&raw),
                2,
                |env| Some(Box::new(FakeFlooder::new(env))),
                seed,
            )
            .unwrap();
            let violations = result.outcome.verify(121);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
            // Lemma VI.1: cross-process discrepancy stays within 2t².
            let delta = result.probe.max_discrepancy(&correct_set(&raw));
            assert!(delta <= 2 * 2 * 2, "Δ = {delta} > 2t²");
        }
    }

    #[test]
    fn echo_withholder_cannot_break_renaming() {
        let cfg = SystemConfig::new(11, 2).unwrap();
        let raw: Vec<u64> = (1..=9).map(|i| i * 7 + 100).collect();
        for seed in 0..5 {
            let result = run_two_step(
                cfg,
                &ids(&raw),
                2,
                |env| Some(Box::new(EchoWithholder::new(env))),
                seed,
            )
            .unwrap();
            assert!(result.outcome.verify(121).is_empty(), "seed {seed}");
            // Lemma VI.2: consecutive correct ids at least N−t apart in
            // every correct process's table.
            let gap = result.probe.min_correct_gap(&correct_set(&raw));
            assert!(gap >= (cfg.quorum()) as i64, "gap {gap} < N−t");
        }
    }

    #[test]
    fn withholder_actually_creates_discrepancy() {
        // Sanity check that the attack does something: the fake's counter
        // differs across processes, so *some* discrepancy should usually
        // exist (bounded by 2t²). If this ever measures 0 for all seeds the
        // attack has regressed into a no-op.
        let cfg = SystemConfig::new(11, 2).unwrap();
        let raw: Vec<u64> = (1..=9).map(|i| i * 10).collect();
        let mut max_delta = 0;
        for seed in 0..10 {
            let result = run_two_step(
                cfg,
                &ids(&raw),
                2,
                |env| Some(Box::new(EchoWithholder::new(env))),
                seed,
            )
            .unwrap();
            max_delta = max_delta.max(result.probe.max_discrepancy(&correct_set(&raw)));
        }
        assert!(max_delta > 0, "withholder never created any discrepancy");
        assert!(max_delta <= 8, "Δ = {max_delta} exceeds 2t²");
    }

    #[test]
    fn half_echo_is_harmless_with_the_clamp() {
        // The A2 ablation adversary against the *unmodified* algorithm:
        // the clamp floors both halves' correct-id offsets at N−t, so the
        // attack achieves nothing.
        let cfg = SystemConfig::new(11, 2).unwrap();
        let raw: Vec<u64> = (1..=9).map(|i| i * 4 + 50).collect();
        for seed in 0..5 {
            let result = run_two_step(
                cfg,
                &ids(&raw),
                2,
                |env| Some(Box::new(HalfEcho::new(env))),
                seed,
            )
            .unwrap();
            assert!(result.outcome.verify(121).is_empty(), "seed {seed}");
            // Correct-id discrepancy is exactly zero: the clamp equalizes.
            assert_eq!(result.probe.max_discrepancy(&correct_set(&raw)), 0);
        }
    }

    #[test]
    fn flooder_at_minimal_two_step_resilience() {
        // t = 1 ⇒ N > 3: minimal N = 4.
        let cfg = SystemConfig::new(4, 1).unwrap();
        let result = run_two_step(
            cfg,
            &ids(&[6, 12, 25]),
            1,
            |env| Some(Box::new(FakeFlooder::new(env))),
            9,
        )
        .unwrap();
        assert!(result.outcome.verify(16).is_empty());
    }
}
