//! The enumerable adversary suite.

use crate::alg1::{EchoSplitter, IdForger, OrderInverter, PairSqueezer, RankSkewer};
use crate::generic::{CrashAfter, Noise, Replay};
use crate::two_step::{EchoWithholder, FakeFlooder, HalfEcho};
use opr_core::{AdversaryEnv, Alg1Msg, TwoStepMsg};
use opr_rbcast::{FloodMsg, IdSlotSet};
use opr_sim::Actor;
use opr_types::{NewName, OriginalId, Rank, Regime};
use rand::Rng;
use std::collections::BTreeSet;
use std::fmt;

/// A named Byzantine strategy, suitable for experiment tables and sweeps.
///
/// Not every strategy applies to every protocol; [`AdversarySpec::ALG1`] and
/// [`AdversarySpec::TWO_STEP`] list the applicable suites. Building a
/// non-applicable combination falls back to silence (which is always legal
/// Byzantine behaviour).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AdversarySpec {
    /// Sends nothing at all (crash at time zero).
    Silent,
    /// Behaves correctly, then crashes mid-protocol.
    CrashMidway,
    /// Sends well-formed random garbage, equivocating per link.
    RandomNoise,
    /// Replays observed messages on random links.
    Replay,
    /// Floods fake ids, one per link (Algorithm 1).
    IdForge,
    /// Threshold-gaming echo/ready splits (Algorithm 1).
    EchoSplit,
    /// Valid-but-extremal vote vectors (Algorithm 1).
    RankSkew,
    /// Invalid vote vectors attacking order (Algorithm 1).
    OrderInvert,
    /// Per-receiver `2t`-fake echo sets (Algorithm 4).
    FakeFlood,
    /// Asymmetric fake echoes (Algorithm 4).
    EchoWithhold,
    /// Hull-overlap + zero-spacing vote pairs (Algorithm 1; the attack the
    /// `isValid` filter defeats — harmless with validation on, lethal in
    /// ablation A1).
    PairSqueeze,
    /// Echo everything to only half the correct processes (Algorithm 4; the
    /// attack the offset clamp defeats — harmless with the clamp, lethal in
    /// ablation A2).
    HalfEcho,
}

impl AdversarySpec {
    /// The suite for Algorithm 1 (both voting schedules).
    pub const ALG1: [AdversarySpec; 9] = [
        AdversarySpec::Silent,
        AdversarySpec::CrashMidway,
        AdversarySpec::RandomNoise,
        AdversarySpec::Replay,
        AdversarySpec::IdForge,
        AdversarySpec::EchoSplit,
        AdversarySpec::RankSkew,
        AdversarySpec::OrderInvert,
        AdversarySpec::PairSqueeze,
    ];

    /// The suite for Algorithm 4.
    pub const TWO_STEP: [AdversarySpec; 7] = [
        AdversarySpec::Silent,
        AdversarySpec::CrashMidway,
        AdversarySpec::RandomNoise,
        AdversarySpec::Replay,
        AdversarySpec::FakeFlood,
        AdversarySpec::EchoWithhold,
        AdversarySpec::HalfEcho,
    ];

    /// The applicable suite for a regime.
    pub fn suite(regime: Regime) -> &'static [AdversarySpec] {
        match regime {
            Regime::LogTime | Regime::ConstantTime => &Self::ALG1,
            Regime::TwoStep => &Self::TWO_STEP,
        }
    }

    /// A short stable label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            AdversarySpec::Silent => "silent",
            AdversarySpec::CrashMidway => "crash-midway",
            AdversarySpec::RandomNoise => "random-noise",
            AdversarySpec::Replay => "replay",
            AdversarySpec::IdForge => "id-forge",
            AdversarySpec::EchoSplit => "echo-split",
            AdversarySpec::RankSkew => "rank-skew",
            AdversarySpec::OrderInvert => "order-invert",
            AdversarySpec::FakeFlood => "fake-flood",
            AdversarySpec::EchoWithhold => "echo-withhold",
            AdversarySpec::PairSqueeze => "pair-squeeze",
            AdversarySpec::HalfEcho => "half-echo",
        }
    }

    /// Builds an Algorithm 1 actor for this strategy (`None` ⇒ silent).
    pub fn build_alg1(
        &self,
        env: &AdversaryEnv<'_>,
    ) -> Option<Box<dyn Actor<Msg = Alg1Msg, Output = NewName>>> {
        let per_actor_seed = env.seed ^ (env.index as u64) << 32 ^ 0xa1;
        match self {
            AdversarySpec::Silent => None,
            AdversarySpec::CrashMidway => {
                // Behave as a correct process with a fake id, crash halfway
                // through the protocol.
                let fake = crate::fakes::fake_ids(env, env.faulty_count.max(1))
                    [env.slot.min(env.faulty_count.saturating_sub(1))];
                let regime = if env.cfg.supports(Regime::ConstantTime) {
                    Regime::ConstantTime
                } else {
                    Regime::LogTime
                };
                let inner = opr_core::OrderPreservingRenaming::new(env.cfg, regime, fake)
                    .expect("regime chosen to fit the config");
                let alive = 2 + (env.seed + env.slot as u64) as u32 % env.cfg.total_steps(regime);
                Some(Box::new(CrashAfter::new(inner, alive)))
            }
            AdversarySpec::RandomNoise => {
                let pool: Vec<OriginalId> = env
                    .correct_ids
                    .iter()
                    .copied()
                    .chain(crate::fakes::fake_ids(env, env.cfg.n()))
                    .collect();
                let delta = env.cfg.delta();
                let interner = env.interner.clone();
                Some(Box::new(Noise::new(
                    env.cfg.n(),
                    per_actor_seed,
                    move |rng, _round| {
                        let mut set = BTreeSet::new();
                        for &id in &pool {
                            if rng.gen_bool(0.5) {
                                set.insert(id);
                            }
                        }
                        let msg = match rng.gen_range(0..4) {
                            0 => Alg1Msg::Flood(FloodMsg::Init(pool[rng.gen_range(0..pool.len())])),
                            1 => Alg1Msg::Flood(FloodMsg::Echo(IdSlotSet::from_values(
                                &interner,
                                set.iter().copied(),
                            ))),
                            2 => Alg1Msg::Flood(FloodMsg::Ready(IdSlotSet::from_values(
                                &interner,
                                set.iter().copied(),
                            ))),
                            _ => Alg1Msg::Votes(
                                set.iter()
                                    .map(|&id| (id, Rank::new(rng.gen_range(-10.0..10.0) * delta)))
                                    .collect(),
                            ),
                        };
                        rng.gen_bool(0.9).then_some(msg)
                    },
                )))
            }
            AdversarySpec::Replay => Some(Box::new(Replay::new(env.cfg.n(), per_actor_seed))),
            AdversarySpec::IdForge => Some(Box::new(IdForger::new(env))),
            AdversarySpec::EchoSplit => Some(Box::new(EchoSplitter::new(env))),
            AdversarySpec::RankSkew => Some(Box::new(RankSkewer::new(env))),
            AdversarySpec::OrderInvert => Some(Box::new(OrderInverter::new(env))),
            AdversarySpec::PairSqueeze => Some(Box::new(PairSqueezer::new(env))),
            // Two-step-only strategies degrade to silence under Algorithm 1.
            AdversarySpec::FakeFlood | AdversarySpec::EchoWithhold | AdversarySpec::HalfEcho => {
                None
            }
        }
    }

    /// Builds an Algorithm 4 actor for this strategy (`None` ⇒ silent).
    pub fn build_two_step(
        &self,
        env: &AdversaryEnv<'_>,
    ) -> Option<Box<dyn Actor<Msg = TwoStepMsg, Output = NewName>>> {
        let per_actor_seed = env.seed ^ (env.index as u64) << 32 ^ 0x42;
        match self {
            AdversarySpec::Silent => None,
            AdversarySpec::CrashMidway => {
                let fake = crate::fakes::fake_ids(env, env.faulty_count.max(1))
                    [env.slot.min(env.faulty_count.saturating_sub(1))];
                let inner = opr_core::TwoStepRenaming::new(env.cfg, fake)
                    .expect("caller ensured the two-step regime");
                Some(Box::new(CrashAfter::new(inner, 1)))
            }
            AdversarySpec::RandomNoise => {
                let pool: Vec<OriginalId> = env
                    .correct_ids
                    .iter()
                    .copied()
                    .chain(crate::fakes::fake_ids(env, env.cfg.n()))
                    .collect();
                let n = env.cfg.n();
                let interner = env.interner.clone();
                Some(Box::new(Noise::new(
                    n,
                    per_actor_seed,
                    move |rng, _round| {
                        let msg = if rng.gen_bool(0.5) {
                            TwoStepMsg::Id(pool[rng.gen_range(0..pool.len())])
                        } else {
                            let mut set = BTreeSet::new();
                            for &id in &pool {
                                if rng.gen_bool(0.5) && set.len() < n {
                                    set.insert(id);
                                }
                            }
                            TwoStepMsg::MultiEcho(IdSlotSet::from_values(
                                &interner,
                                set.iter().copied(),
                            ))
                        };
                        rng.gen_bool(0.9).then_some(msg)
                    },
                )))
            }
            AdversarySpec::Replay => Some(Box::new(Replay::new(env.cfg.n(), per_actor_seed))),
            AdversarySpec::FakeFlood => Some(Box::new(FakeFlooder::new(env))),
            AdversarySpec::EchoWithhold => Some(Box::new(EchoWithholder::new(env))),
            AdversarySpec::HalfEcho => Some(Box::new(HalfEcho::new(env))),
            // Alg-1-only strategies degrade to silence under Algorithm 4.
            AdversarySpec::IdForge
            | AdversarySpec::EchoSplit
            | AdversarySpec::RankSkew
            | AdversarySpec::OrderInvert
            | AdversarySpec::PairSqueeze => None,
        }
    }
}

impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_core::runner::{run_alg1, run_two_step, Alg1Options};
    use opr_types::SystemConfig;

    fn ids(raw: &[u64]) -> Vec<OriginalId> {
        raw.iter().map(|&x| OriginalId::new(x)).collect()
    }

    #[test]
    fn every_alg1_spec_upholds_properties() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let correct = ids(&[4, 19, 33, 51, 87]);
        for spec in AdversarySpec::ALG1 {
            for seed in 0..3 {
                let result = run_alg1(
                    cfg,
                    Regime::LogTime,
                    &correct,
                    2,
                    |env| spec.build_alg1(env),
                    Alg1Options {
                        seed,
                        allow_regime_violation: false,
                        ..Alg1Options::default()
                    },
                )
                .unwrap();
                let violations = result.outcome.verify(cfg.namespace_bound(Regime::LogTime));
                assert!(violations.is_empty(), "{spec} seed {seed}: {violations:?}");
            }
        }
    }

    #[test]
    fn every_two_step_spec_upholds_properties() {
        let cfg = SystemConfig::new(11, 2).unwrap();
        let correct = ids(&[3, 9, 27, 81, 243, 300, 301, 302, 500]);
        for spec in AdversarySpec::TWO_STEP {
            for seed in 0..3 {
                let result =
                    run_two_step(cfg, &correct, 2, |env| spec.build_two_step(env), seed).unwrap();
                let violations = result.outcome.verify(121);
                assert!(violations.is_empty(), "{spec} seed {seed}: {violations:?}");
            }
        }
    }

    #[test]
    fn suites_match_regimes() {
        assert_eq!(AdversarySpec::suite(Regime::LogTime).len(), 9);
        assert_eq!(AdversarySpec::suite(Regime::ConstantTime).len(), 9);
        assert_eq!(AdversarySpec::suite(Regime::TwoStep).len(), 7);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = AdversarySpec::ALG1
            .iter()
            .chain(AdversarySpec::TWO_STEP.iter())
            .map(|s| s.label())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }
}
