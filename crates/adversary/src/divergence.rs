//! The accepted-set divergence gadget shared by the splitting attacks.
//!
//! Within the `N > 3t` regime the Echo/Ready thresholds make acceptance
//! *nearly* binary: if `N − 2t` correct processes observe step-3 `Ready`s,
//! everyone relays and the id is accepted everywhere. The one crack is the
//! 4-step truncation — step-4 relays cannot trigger further relays. The
//! gadget drives a fake id through exactly that crack:
//!
//! * step 1: announce the fake to `S₁` = `N − 2t` correct processes (the
//!   minimum that lets any correct process reach the echo quorum, and the
//!   reason Lemma A.1's capacity bound is what it is);
//! * step 2: echo it to `T` = `N − 3t` of them — together with the `t`
//!   Byzantine echoes exactly the `N − t` echo quorum, so precisely `T`
//!   issues step-3 `Ready`s;
//! * step 3: send Byzantine `Ready`s to `R` = `t` further correct processes
//!   — `|T| + t = N − 2t` step-3 `Ready`s is exactly the relay threshold,
//!   so precisely `T ∪ R`'s `Ready`s exist by step 4 (`N − 2t` of them,
//!   below the `N − t` acceptance quorum on their own);
//! * step 4: top up with `t` Byzantine `Ready`s — but only toward the
//!   favoured half `F`, which therefore accepts the fake while everyone
//!   else does not.
//!
//! Result: `accepted` sets genuinely diverge (the fake is `timely` nowhere,
//! so Lemma IV.1 is not contradicted), producing the initial rank
//! discrepancy `Δ₅ > 0` that Lemma IV.7 bounds and the voting phase must
//! repair.

use opr_core::{AdversaryEnv, Alg1Msg};
use opr_rbcast::{FloodMsg, IdInterner, IdSlotSet};
use opr_sim::Outbox;
use opr_types::{LinkId, OriginalId};
use std::collections::BTreeSet;

/// Per-step link targeting for one fake id (see the module docs).
#[derive(Clone, Debug)]
pub struct DivergencePlan {
    /// The fake id being driven through the crack.
    pub fake: OriginalId,
    /// `S₁`: step-1 announcement targets (`N − 2t` correct links).
    pub init_links: Vec<LinkId>,
    /// `T`: step-2 echo targets (`N − 3t` correct links).
    pub echo_links: Vec<LinkId>,
    /// `R`: step-3 ready targets (`t` further correct links).
    pub ready3_links: Vec<LinkId>,
    /// `F`: step-4 ready targets (the favoured half).
    pub ready4_links: Vec<LinkId>,
    /// All correct links, in ascending order of the correct process's id.
    pub all_correct_links: Vec<LinkId>,
    /// The run interner the forged bitset payloads are built against (so
    /// they travel the receivers' zero-decode fast path).
    pub interner: IdInterner<OriginalId>,
}

impl DivergencePlan {
    /// Builds the plan with the favoured half as acceptance targets. All
    /// colluding actors derive identical target sets (links are ordered by
    /// the correct processes' ids, which every slot sees identically).
    pub fn new(env: &AdversaryEnv<'_>, fake: OriginalId) -> Self {
        let c = env.links_to_correct().len();
        Self::with_favoured(env, fake, c.div_ceil(2))
    }

    /// Builds the plan with an explicit number of favoured (fake-accepting)
    /// correct processes — the multi-fake squeezer staggers this count per
    /// fake to create a position *gradient* across processes.
    pub fn with_favoured(env: &AdversaryEnv<'_>, fake: OriginalId, favoured: usize) -> Self {
        let n = env.cfg.n();
        let t = env.cfg.t();
        let links = env.links_to_correct();
        let c = links.len();
        let s1 = n.saturating_sub(2 * t).min(c);
        let tt = n.saturating_sub(3 * t).min(c);
        let r_end = (tt + t).min(c);
        DivergencePlan {
            fake,
            init_links: links[..s1].to_vec(),
            echo_links: links[..tt].to_vec(),
            ready3_links: links[tt..r_end].to_vec(),
            ready4_links: links[..favoured.min(c)].to_vec(),
            all_correct_links: links,
            interner: env.interner.clone(),
        }
    }

    /// Whether `link` is in the favoured (fake-accepting) half.
    pub fn favours(&self, link: LinkId) -> bool {
        self.ready4_links.contains(&link)
    }

    /// The outbox for flood step `1 ..= 4`, where `base` is the id set the
    /// actor otherwise behaves honestly about (typically all correct ids it
    /// has seen).
    ///
    /// # Panics
    ///
    /// Panics for steps outside `1..=4`.
    pub fn flood_outbox(&self, step: u32, base: &BTreeSet<OriginalId>) -> Outbox<Alg1Msg> {
        let plain = IdSlotSet::from_values(&self.interner, base.iter().copied());
        let spiked = {
            let mut s = plain.clone();
            s.insert(&self.fake);
            s
        };
        match step {
            1 => Outbox::Multicast(
                self.init_links
                    .iter()
                    .map(|&l| (l, Alg1Msg::Flood(FloodMsg::Init(self.fake))))
                    .collect(),
            ),
            2 => Outbox::Multicast(
                self.all_correct_links
                    .iter()
                    .map(|&l| {
                        let set = if self.echo_links.contains(&l) {
                            spiked.clone()
                        } else {
                            plain.clone()
                        };
                        (l, Alg1Msg::Flood(FloodMsg::Echo(set)))
                    })
                    .collect(),
            ),
            3 => Outbox::Multicast(
                self.all_correct_links
                    .iter()
                    .map(|&l| {
                        let set = if self.ready3_links.contains(&l) {
                            spiked.clone()
                        } else {
                            plain.clone()
                        };
                        (l, Alg1Msg::Flood(FloodMsg::Ready(set)))
                    })
                    .collect(),
            ),
            4 => Outbox::Multicast(
                self.ready4_links
                    .iter()
                    .map(|&l| {
                        let set = IdSlotSet::from_values(&self.interner, [self.fake]);
                        (l, Alg1Msg::Flood(FloodMsg::Ready(set)))
                    })
                    .collect(),
            ),
            _ => panic!("divergence gadget covers flood steps 1..=4, got {step}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_sim::Topology;
    use opr_types::SystemConfig;

    fn plan_for(n: usize, t: usize) -> DivergencePlan {
        let cfg = SystemConfig::new(n, t).unwrap();
        let topo = Topology::seeded(n, 1);
        let ids: Vec<OriginalId> = (0..n - t).map(|i| OriginalId::new(i as u64 + 10)).collect();
        let assignments: Vec<(usize, OriginalId)> =
            ids.iter().enumerate().map(|(i, &id)| (i + t, id)).collect();
        let env = AdversaryEnv {
            cfg,
            slot: 0,
            faulty_count: t,
            index: 0,
            correct_ids: &ids,
            correct_assignments: &assignments,
            topology: &topo,
            seed: 1,
            interner: IdInterner::new(),
        };
        DivergencePlan::new(&env, OriginalId::new(5))
    }

    #[test]
    fn target_set_sizes_match_the_threshold_arithmetic() {
        for (n, t) in [(7usize, 2usize), (10, 3), (13, 4), (4, 1)] {
            let plan = plan_for(n, t);
            assert_eq!(plan.init_links.len(), n - 2 * t, "S₁ at N={n}");
            assert_eq!(plan.echo_links.len(), n - 3 * t, "T at N={n}");
            assert_eq!(plan.ready3_links.len(), t, "R at N={n}");
            assert_eq!(plan.all_correct_links.len(), n - t);
            // T and R are disjoint prefixes.
            for l in &plan.ready3_links {
                assert!(!plan.echo_links.contains(l));
            }
        }
    }

    #[test]
    fn flood_outboxes_are_well_formed() {
        let plan = plan_for(10, 3);
        let base: BTreeSet<OriginalId> = (0..7).map(|i| OriginalId::new(i + 10)).collect();
        for step in 1..=4 {
            match plan.flood_outbox(step, &base) {
                Outbox::Multicast(entries) => {
                    assert!(!entries.is_empty(), "step {step}");
                }
                _ => panic!("divergence gadget always multicasts"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "flood steps")]
    fn rejects_voting_steps() {
        let plan = plan_for(7, 2);
        let _ = plan.flood_outbox(5, &BTreeSet::new());
    }
}
