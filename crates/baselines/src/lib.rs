#![warn(missing_docs)]
//! Baseline renaming algorithms from the related work, used as comparators
//! in the experiments (see DESIGN.md §3).
//!
//! | Baseline | Model | Source | Steps | Namespace | Why it is here |
//! |---|---|---|---|---|---|
//! | [`CrashAaRenaming`] (B1) | crash | Okun, TCS 2010 — simplified | `O(log t)` | ≈ `N` | the crash-fault algorithm the paper generalizes; shows the Byzantine version costs the same |
//! | [`ConsensusRenaming`] (B2) | Byzantine, `N ≥ 4t+2` + granted global numbering | folklore via phase king | `4 + 2(t+1)` | `N + t − 1` | the Ω(t)-round consensus route the paper argues against |
//! | [`ChtRenaming`] (B3) | crash | Chaudhuri–Herlihy–Tuttle, TCS 1999 — simplified | `1 + ⌈log₂ N⌉` | `N` (crash-free) | the classic log-time *non*-order-preserving strong renaming |
//! | [`TranslatedRenaming`] (B4) | Byzantine | Okun–Barak–Gafni, DC 2008 — cost model | `2(1 + ⌈log₂ 2N⌉)` | ≤ `2N` | shows the crash-to-Byzantine translation's 2× round and 2N namespace blow-up |
//!
//! # Fidelity notes (also in DESIGN.md)
//!
//! * B1 follows the *structure* of Okun's algorithm (rank by position, then
//!   iterate AA until ranks are within rounding distance) with a simpler
//!   midpoint AA and stretch factor 2; it reproduces the `O(log t)` step
//!   complexity, which is what the comparisons use.
//! * B2 is granted globally consistent numbering (impossible in the paper's
//!   model, where it would make renaming trivial); it is a *cost* baseline.
//!   The simple two-round phase king also needs `N ≥ 4t + 2`.
//! * B3/B4: full CHT and the full Bazzi–Neiger translation are large
//!   systems; B3 implements interval-splitting CHT faithfully enough for
//!   crash-free and crash-at-start runs, and B4 wraps each B3 step in an
//!   echo-validation double round, reproducing exactly the costs the paper
//!   cites (round doubling, echo traffic, namespace 2N under id forgery).
//!   B4 is exercised under forge-only adversaries; hardening it against
//!   arbitrary equivocation would require the complete translation of
//!   [3, 13], which is out of scope *because the paper's whole point* is
//!   that the translation is expensive.

pub mod cht;
pub mod consensus_renaming;
pub mod crash_aa;
pub mod translated;

pub use cht::ChtRenaming;
pub use consensus_renaming::ConsensusRenaming;
pub use crash_aa::CrashAaRenaming;
pub use translated::TranslatedRenaming;
