//! B3: bit-by-bit (interval-splitting) strong renaming for crash faults,
//! after Chaudhuri–Herlihy–Tuttle.

use opr_sim::{Actor, Inbox, Outbox, WireSize, ID_BITS, TAG_BITS};
use opr_types::math::ceil_log2;
use opr_types::{NewName, OriginalId, Round};

/// Bits to encode an interval bound.
const BOUND_BITS: u64 = 32;

/// Messages of the CHT baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChtMsg {
    /// Round 1: announce own id.
    Id(OriginalId),
    /// Rounds 2..: claim an interval of the target namespace.
    Claim(OriginalId, i64, i64),
}

impl WireSize for ChtMsg {
    fn wire_bits(&self) -> u64 {
        match self {
            ChtMsg::Id(_) => TAG_BITS + ID_BITS,
            ChtMsg::Claim(..) => TAG_BITS + ID_BITS + 2 * BOUND_BITS,
        }
    }
}

/// A correct process of the CHT baseline.
///
/// Processes repeatedly announce `(id, interval)`; processes sharing an
/// interval sort themselves by id and split the interval in half (the
/// high-order-bit-first name construction of CHT), converging to singleton
/// intervals in `⌈log₂ N⌉` splitting rounds. The final name is the interval's
/// lower bound.
///
/// Fidelity: wait-free CHT tolerates crashes at any point; this simplified
/// version is exercised under round-atomic crashes (a process is silent from
/// some round onward), where views of each group stay consistent. It exists
/// to reproduce the `O(log N)` round / strong-namespace *shape* the paper
/// cites as \[6\].
#[derive(Clone, Debug)]
pub struct ChtRenaming {
    my_id: OriginalId,
    lo: i64,
    hi: i64,
    total_rounds: u32,
    decided: Option<NewName>,
}

impl ChtRenaming {
    /// Creates a correct process for a system of `n` processes.
    pub fn new(n: usize, my_id: OriginalId) -> Self {
        ChtRenaming {
            my_id,
            lo: 1,
            hi: n as i64,
            total_rounds: Self::total_rounds(n),
            decided: None,
        }
    }

    /// Total rounds: one id exchange plus `max(1, ⌈log₂ N⌉)` splits.
    pub fn total_rounds(n: usize) -> u32 {
        1 + ceil_log2(n).max(1)
    }
}

impl Actor for ChtRenaming {
    type Msg = ChtMsg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<ChtMsg> {
        if round.number() == 1 {
            Outbox::Broadcast(ChtMsg::Id(self.my_id))
        } else if round.number() <= self.total_rounds {
            Outbox::Broadcast(ChtMsg::Claim(self.my_id, self.lo, self.hi))
        } else {
            Outbox::Silent
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<ChtMsg>) {
        let r = round.number();
        if r == 1 || r > self.total_rounds {
            return; // round 1 only seeds the claim rounds; nothing to store
        }
        // Group: ids claiming exactly my interval (self included via the
        // self-loop).
        let mut group: Vec<OriginalId> = inbox
            .messages()
            .filter_map(|(_, m)| match m {
                ChtMsg::Claim(id, lo, hi) if *lo == self.lo && *hi == self.hi => Some(*id),
                _ => None,
            })
            .collect();
        group.sort_unstable();
        group.dedup();
        if group.len() > 1 && self.lo < self.hi {
            let g = group.len() as i64;
            let left_size = (g + 1) / 2; // ⌈g/2⌉
            let my_pos = group
                .iter()
                .position(|&id| id == self.my_id)
                .expect("own claim is delivered on the self-loop") as i64;
            if my_pos < left_size {
                self.hi = self.lo + left_size - 1;
            } else {
                self.lo += left_size;
            }
            // Keep the interval well-formed even in degenerate groups.
            self.hi = self.hi.max(self.lo);
        }
        if r == self.total_rounds {
            self.decided = Some(NewName::new(self.lo));
        }
    }

    fn output(&self) -> Option<NewName> {
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_sim::{Network, Topology};
    use opr_types::RenamingOutcome;

    fn run_crash_free(n: usize, raw_ids: &[u64], seed: u64) -> RenamingOutcome {
        let actors: Vec<Box<dyn Actor<Msg = ChtMsg, Output = NewName>>> = raw_ids
            .iter()
            .map(|&x| {
                Box::new(ChtRenaming::new(n, OriginalId::new(x)))
                    as Box<dyn Actor<Msg = ChtMsg, Output = NewName>>
            })
            .collect();
        let mut net = Network::new(actors, Topology::seeded(n, seed));
        let report = net.run(ChtRenaming::total_rounds(n));
        assert!(report.completed);
        RenamingOutcome::new(
            raw_ids
                .iter()
                .enumerate()
                .map(|(i, &x)| (OriginalId::new(x), net.output_of(i))),
        )
    }

    #[test]
    fn crash_free_achieves_strong_namespace() {
        for n in [2usize, 3, 4, 7, 8, 16] {
            let ids: Vec<u64> = (0..n as u64).map(|i| 1000 - i * 17).collect();
            let outcome = run_crash_free(n, &ids, n as u64);
            let violations = outcome.verify(n as u64);
            assert!(violations.is_empty(), "n={n}: {violations:?}");
        }
    }

    #[test]
    fn names_are_order_preserving_in_crash_free_runs() {
        // CHT as implemented splits by id rank within each group, which in
        // crash-free runs yields exactly the rank of the id — incidentally
        // order-preserving. (Under crashes CHT loses order preservation,
        // which is why the paper needs the AA machinery.)
        let outcome = run_crash_free(5, &[50, 10, 40, 20, 30], 3);
        assert_eq!(outcome.name_of(OriginalId::new(10)), Some(NewName::new(1)));
        assert_eq!(outcome.name_of(OriginalId::new(50)), Some(NewName::new(5)));
    }

    #[test]
    fn tolerates_processes_silent_from_the_start() {
        // 2 of 7 processes crashed before the run: the 5 live ones must
        // still get unique names within [1..7].
        struct Dead;
        impl Actor for Dead {
            type Msg = ChtMsg;
            type Output = NewName;
            fn send(&mut self, _r: Round) -> Outbox<ChtMsg> {
                Outbox::Silent
            }
            fn deliver(&mut self, _r: Round, _i: Inbox<ChtMsg>) {}
            fn output(&self) -> Option<NewName> {
                None
            }
        }
        let n = 7;
        let raw = [5u64, 10, 15, 20, 25];
        let mut actors: Vec<Box<dyn Actor<Msg = ChtMsg, Output = NewName>>> =
            vec![Box::new(Dead), Box::new(Dead)];
        for &x in &raw {
            actors.push(Box::new(ChtRenaming::new(n, OriginalId::new(x))));
        }
        let mut correct = vec![false, false];
        correct.extend([true; 5]);
        let mut net = Network::with_faults(actors, correct, Topology::seeded(n, 9));
        assert!(net.run(ChtRenaming::total_rounds(n)).completed);
        let outcome = RenamingOutcome::new(
            raw.iter()
                .enumerate()
                .map(|(i, &x)| (OriginalId::new(x), net.output_of(i + 2))),
        );
        assert!(outcome.verify(n as u64).is_empty());
    }

    #[test]
    fn round_budget_is_logarithmic_in_n() {
        assert_eq!(ChtRenaming::total_rounds(2), 2);
        assert_eq!(ChtRenaming::total_rounds(8), 4);
        assert_eq!(ChtRenaming::total_rounds(9), 5);
        assert_eq!(ChtRenaming::total_rounds(64), 7);
    }
}
