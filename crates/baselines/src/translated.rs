//! B4: echo-translated Byzantine renaming — the cost model of applying a
//! crash-to-Byzantine translation \[3, 13\] to CHT, as done by
//! Okun–Barak–Gafni \[15\].

use opr_sim::{Actor, Inbox, Outbox, WireSize, COUNT_BITS, ID_BITS, TAG_BITS};
use opr_types::math::ceil_log2;
use opr_types::{NewName, OriginalId, Round, SystemConfig};
use std::collections::{BTreeMap, BTreeSet};

/// A namespace claim: `(id, lo, hi)`.
pub type Claim = (OriginalId, i64, i64);

/// Bits per claim on the wire.
const CLAIM_BITS: u64 = ID_BITS + 64;

/// Messages of the translated baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum B4Msg {
    /// Odd rounds: a claim.
    Claim(Claim),
    /// Even rounds: echo of all claims received in the preceding round.
    Echo(BTreeSet<Claim>),
}

impl WireSize for B4Msg {
    fn wire_bits(&self) -> u64 {
        match self {
            B4Msg::Claim(_) => TAG_BITS + CLAIM_BITS,
            B4Msg::Echo(set) => TAG_BITS + COUNT_BITS + set.len() as u64 * CLAIM_BITS,
        }
    }
}

/// A correct process of the translated baseline.
///
/// Each CHT splitting step is simulated by **two** rounds: a claim broadcast
/// followed by an echo round; only claims echoed on at least `N − t`
/// distinct links are *validated* and fed to the splitting rule. Because the
/// receiver cannot tell which ids are genuine, forged ids consume namespace:
/// the target namespace is `2N` instead of `N` — exactly the degradation the
/// paper reports for \[15\].
#[derive(Clone, Debug)]
pub struct TranslatedRenaming {
    cfg: SystemConfig,
    my_id: OriginalId,
    lo: i64,
    hi: i64,
    /// Claims received in the current claim round, per link (awaiting echo
    /// validation).
    pending: BTreeSet<Claim>,
    /// Echo support per claim in the current echo round.
    support: BTreeMap<Claim, usize>,
    total_rounds: u32,
    decided: Option<NewName>,
}

impl TranslatedRenaming {
    /// Creates a correct process.
    pub fn new(cfg: SystemConfig, my_id: OriginalId) -> Self {
        TranslatedRenaming {
            cfg,
            my_id,
            lo: 1,
            hi: 2 * cfg.n() as i64,
            pending: BTreeSet::new(),
            support: BTreeMap::new(),
            total_rounds: Self::total_rounds(cfg.n()),
            decided: None,
        }
    }

    /// Total rounds: `2 · (⌈log₂ 2N⌉ + 1)` — the 2× blow-up of the
    /// translation over CHT's `⌈log₂ N⌉ + 1`.
    pub fn total_rounds(n: usize) -> u32 {
        2 * (ceil_log2(2 * n).max(1) + 1)
    }
}

impl Actor for TranslatedRenaming {
    type Msg = B4Msg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<B4Msg> {
        let r = round.number();
        if r > self.total_rounds {
            return Outbox::Silent;
        }
        if r % 2 == 1 {
            Outbox::Broadcast(B4Msg::Claim((self.my_id, self.lo, self.hi)))
        } else {
            Outbox::Broadcast(B4Msg::Echo(self.pending.clone()))
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<B4Msg>) {
        let r = round.number();
        if r > self.total_rounds {
            return;
        }
        if r % 2 == 1 {
            // Claim round: stage claims for echoing.
            self.pending = inbox
                .messages()
                .filter_map(|(_, m)| match m {
                    B4Msg::Claim(c) => Some(*c),
                    _ => None,
                })
                .collect();
        } else {
            // Echo round: validate claims with ≥ N−t echo links, then apply
            // the CHT splitting rule on the validated group.
            self.support.clear();
            for (_, m) in inbox.messages() {
                if let B4Msg::Echo(set) = m {
                    for &c in set {
                        *self.support.entry(c).or_insert(0) += 1;
                    }
                }
            }
            let quorum = self.cfg.quorum();
            let mut group: Vec<OriginalId> = self
                .support
                .iter()
                .filter(|&(&(_, lo, hi), &links)| links >= quorum && lo == self.lo && hi == self.hi)
                .map(|(&(id, _, _), _)| id)
                .collect();
            group.sort_unstable();
            group.dedup();
            if group.len() > 1 && self.lo < self.hi {
                if let Some(my_pos) = group.iter().position(|&id| id == self.my_id) {
                    let g = group.len() as i64;
                    let left_size = (g + 1) / 2;
                    if (my_pos as i64) < left_size {
                        self.hi = self.lo + left_size - 1;
                    } else {
                        self.lo += left_size;
                    }
                    self.hi = self.hi.max(self.lo);
                }
            }
            if r == self.total_rounds {
                self.decided = Some(NewName::new(self.lo));
            }
        }
    }

    fn output(&self) -> Option<NewName> {
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_sim::{Network, Topology};
    use opr_types::RenamingOutcome;

    /// Forges fake ids consistently (same claims to everyone) and otherwise
    /// follows the protocol — the attack that inflates the namespace toward
    /// 2N without breaking validation.
    struct ConsistentForger {
        inner: TranslatedRenaming,
    }
    impl Actor for ConsistentForger {
        type Msg = B4Msg;
        type Output = NewName;
        fn send(&mut self, round: Round) -> Outbox<B4Msg> {
            self.inner.send(round)
        }
        fn deliver(&mut self, round: Round, inbox: Inbox<B4Msg>) {
            self.inner.deliver(round, inbox);
        }
        fn output(&self) -> Option<NewName> {
            None
        }
    }

    fn run(
        cfg: SystemConfig,
        raw_ids: &[u64],
        forged: &[u64],
        seed: u64,
    ) -> (RenamingOutcome, u32) {
        assert_eq!(raw_ids.len() + forged.len(), cfg.n());
        let mut actors: Vec<Box<dyn Actor<Msg = B4Msg, Output = NewName>>> = Vec::new();
        let mut correct = Vec::new();
        for &f in forged {
            actors.push(Box::new(ConsistentForger {
                inner: TranslatedRenaming::new(cfg, OriginalId::new(f)),
            }));
            correct.push(false);
        }
        for &x in raw_ids {
            actors.push(Box::new(TranslatedRenaming::new(cfg, OriginalId::new(x))));
            correct.push(true);
        }
        let rounds = TranslatedRenaming::total_rounds(cfg.n());
        let mut net = Network::with_faults(actors, correct, Topology::seeded(cfg.n(), seed));
        let report = net.run(rounds);
        assert!(report.completed);
        let outcome = RenamingOutcome::new(
            raw_ids
                .iter()
                .enumerate()
                .map(|(i, &x)| (OriginalId::new(x), net.output_of(forged.len() + i))),
        );
        (outcome, report.rounds_executed)
    }

    #[test]
    fn fault_free_run_is_unique_within_2n() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        let (outcome, rounds) = run(cfg, &[9, 18, 27, 36, 45, 54], &[], 2);
        assert!(outcome.verify(12).is_empty());
        assert_eq!(rounds, TranslatedRenaming::total_rounds(6));
    }

    #[test]
    fn forged_ids_consume_namespace_but_not_correctness() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let correct = [10u64, 20, 30, 40, 50];
        let (outcome, _) = run(cfg, &correct, &[15, 25], 5);
        // Uniqueness and validity within 2N must hold even with forged ids
        // interleaved among the correct ones.
        let violations = outcome.verify(14);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn round_cost_doubles_cht() {
        for n in [4usize, 8, 16] {
            let cht = crate::cht::ChtRenaming::total_rounds(n);
            let translated = TranslatedRenaming::total_rounds(n);
            assert!(
                translated >= 2 * cht,
                "n={n}: translated {translated} < 2×CHT {cht}"
            );
        }
    }

    #[test]
    fn namespace_is_not_tight_under_forgery() {
        // The paper's point about [15]: forged ids consume namespace because
        // correct processes cannot recognize them as bogus. With 2 forged
        // ids interleaved below the largest correct id, the largest correct
        // name must exceed the number of correct processes (tightness lost);
        // the guaranteed bound is only 2N.
        let cfg = SystemConfig::new(7, 2).unwrap();
        let correct = [10u64, 20, 30, 40, 50];
        let mut saw_inflation = false;
        for seed in 0..10 {
            let (outcome, _) = run(cfg, &correct, &[11, 12], seed);
            if let Some(max) = outcome.max_name() {
                if max.raw() > correct.len() as i64 {
                    saw_inflation = true;
                }
            }
        }
        assert!(
            saw_inflation,
            "forgery never inflated the namespace — attack too weak"
        );
    }
}
