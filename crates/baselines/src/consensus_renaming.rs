//! B2: renaming via consensus — the Ω(t)-round route the paper argues
//! against.

use opr_consensus::{ConsensusMsg, VectorPhaseKing};
use opr_rbcast::{EchoReadyFlood, FloodMsg};
use opr_sim::{Actor, Inbox, Outbox, WireSize, TAG_BITS};
use opr_types::{LinkId, NewName, OriginalId, Round, SystemConfig};
use std::collections::BTreeSet;

/// Messages: the id-selection flood followed by phase-king consensus on the
/// membership of each candidate id.
#[derive(Clone, Debug, PartialEq)]
pub enum B2Msg {
    /// Rounds 1–4: id selection.
    Flood(FloodMsg<OriginalId>),
    /// Rounds 5..4+2(t+1): per-id membership consensus.
    Consensus(ConsensusMsg<OriginalId>),
}

impl WireSize for B2Msg {
    fn wire_bits(&self) -> u64 {
        match self {
            B2Msg::Flood(f) => TAG_BITS + f.wire_bits(),
            B2Msg::Consensus(c) => TAG_BITS + c.wire_bits(),
        }
    }
}

/// A correct process of the consensus-based baseline.
///
/// Phase A (rounds 1–4) is the paper's own id-selection flood; phase B runs
/// phase-king consensus on every candidate id's membership bit. All correct
/// processes then hold the *same* final id set, so ranking it is trivially
/// order-preserving — at the price of `2(t+1)` extra rounds and the granted
/// global numbering (see the crate docs for why that gift is conservative).
#[derive(Clone, Debug)]
pub struct ConsensusRenaming {
    cfg: SystemConfig,
    my_id: OriginalId,
    flood: EchoReadyFlood<OriginalId>,
    consensus: Option<VectorPhaseKing<OriginalId>>,
    my_index: usize,
    king_links: Vec<LinkId>,
    decided: Option<NewName>,
}

impl ConsensusRenaming {
    /// Creates a correct process. `my_index`/`king_links` encode the granted
    /// global numbering (see [`opr_consensus::king_links_for`]).
    ///
    /// # Panics
    ///
    /// Panics unless `N ≥ 4t + 2` (inherited from phase king).
    pub fn new(
        cfg: SystemConfig,
        my_id: OriginalId,
        my_index: usize,
        king_links: Vec<LinkId>,
    ) -> Self {
        assert!(
            cfg.n() >= 4 * cfg.t() + 2,
            "consensus baseline needs N ≥ 4t + 2"
        );
        ConsensusRenaming {
            cfg,
            my_id,
            flood: EchoReadyFlood::new(cfg.n(), cfg.t(), Some(my_id)),
            consensus: None,
            my_index,
            king_links,
            decided: None,
        }
    }

    /// Total rounds: 4 (id selection) + 2(t+1) (phase king).
    pub fn total_rounds(t: usize) -> u32 {
        4 + 2 * (t as u32 + 1)
    }
}

impl Actor for ConsensusRenaming {
    type Msg = B2Msg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<B2Msg> {
        let r = round.number();
        if r <= 4 {
            match self.flood.send(r) {
                Some(m) => Outbox::Broadcast(B2Msg::Flood(m)),
                None => Outbox::Silent,
            }
        } else if r <= Self::total_rounds(self.cfg.t()) {
            let inner_round = Round::new(r - 4);
            match self
                .consensus
                .as_mut()
                .expect("consensus initialized at end of round 4")
                .send(inner_round)
            {
                Outbox::Silent => Outbox::Silent,
                Outbox::Broadcast(m) => Outbox::Broadcast(B2Msg::Consensus(m)),
                Outbox::Multicast(entries) => Outbox::Multicast(
                    entries
                        .into_iter()
                        .map(|(l, m)| (l, B2Msg::Consensus(m)))
                        .collect(),
                ),
            }
        } else {
            Outbox::Silent
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<B2Msg>) {
        let r = round.number();
        if r <= 4 {
            // Borrowed view straight over the shared broadcast payloads —
            // the flood never sees an owned per-receiver inbox.
            self.flood.deliver(
                r,
                inbox.messages().filter_map(|(l, m)| match m {
                    B2Msg::Flood(f) => Some((l, f)),
                    _ => None,
                }),
            );
            if r == 4 {
                let accepted = self
                    .flood
                    .result()
                    .expect("flood finishes at step 4")
                    .accepted
                    .clone();
                self.consensus = Some(VectorPhaseKing::new(
                    self.cfg.n(),
                    self.cfg.t(),
                    self.my_index,
                    self.king_links.clone(),
                    accepted,
                ));
            }
        } else if r <= Self::total_rounds(self.cfg.t()) {
            let inner_round = Round::new(r - 4);
            let consensus = self
                .consensus
                .as_mut()
                .expect("consensus initialized at end of round 4");
            consensus.deliver_borrowed(
                inner_round,
                inbox.messages().filter_map(|(l, m)| match m {
                    B2Msg::Consensus(c) => Some((l, c)),
                    _ => None,
                }),
            );
            if let Some(decided_set) = consensus.output() {
                let final_set: BTreeSet<OriginalId> = decided_set;
                let rank = final_set
                    .iter()
                    .position(|&id| id == self.my_id)
                    .expect("validity: own id decided into the set");
                self.decided = Some(NewName::new(rank as i64 + 1));
            }
        }
    }

    fn output(&self) -> Option<NewName> {
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_consensus::king_links_for;
    use opr_sim::{Network, Topology};
    use opr_types::RenamingOutcome;

    fn run(cfg: SystemConfig, raw_ids: &[u64], silent: usize, seed: u64) -> RenamingOutcome {
        assert_eq!(raw_ids.len() + silent, cfg.n());
        let topo = Topology::seeded(cfg.n(), seed);
        let mut actors: Vec<Box<dyn Actor<Msg = B2Msg, Output = NewName>>> = Vec::new();
        let mut correct = Vec::new();
        // Silent Byzantine actors occupy the first `silent` slots.
        struct SilentB2;
        impl Actor for SilentB2 {
            type Msg = B2Msg;
            type Output = NewName;
            fn send(&mut self, _r: Round) -> Outbox<B2Msg> {
                Outbox::Silent
            }
            fn deliver(&mut self, _r: Round, _i: Inbox<B2Msg>) {}
            fn output(&self) -> Option<NewName> {
                None
            }
        }
        for _ in 0..silent {
            actors.push(Box::new(SilentB2));
            correct.push(false);
        }
        for (offset, &x) in raw_ids.iter().enumerate() {
            let index = silent + offset;
            actors.push(Box::new(ConsensusRenaming::new(
                cfg,
                OriginalId::new(x),
                index,
                king_links_for(&topo, index),
            )));
            correct.push(true);
        }
        let mut net = Network::with_faults(actors, correct, topo);
        let report = net.run(ConsensusRenaming::total_rounds(cfg.t()));
        assert!(report.completed, "B2 must decide in 4 + 2(t+1) rounds");
        RenamingOutcome::new(
            raw_ids
                .iter()
                .enumerate()
                .map(|(i, &x)| (OriginalId::new(x), net.output_of(silent + i))),
        )
    }

    #[test]
    fn fault_free_consensus_renaming_is_exact() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        let outcome = run(cfg, &[60, 10, 50, 20, 40, 30], 0, 3);
        assert!(outcome.verify(6).is_empty());
        assert_eq!(outcome.name_of(OriginalId::new(10)), Some(NewName::new(1)));
        assert_eq!(outcome.name_of(OriginalId::new(60)), Some(NewName::new(6)));
    }

    #[test]
    fn tolerates_silent_byzantine() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        for seed in 0..5 {
            let outcome = run(cfg, &[11, 22, 33, 44, 55], 1, seed);
            assert!(
                outcome
                    .verify(cfg.namespace_bound(opr_types::Regime::LogTime))
                    .is_empty(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn all_correct_agree_because_consensus() {
        // The defining feature vs Algorithm 1: *exact* agreement on the id
        // set, so names are exactly the ranks in a common set.
        let cfg = SystemConfig::new(10, 2).unwrap();
        let ids: Vec<u64> = (1..=8).map(|i| i * 5).collect();
        let outcome = run(cfg, &ids, 2, 7);
        assert!(outcome.verify(12).is_empty());
        // Names must be a prefix-dense ranking 1..=8 (no holes) because all
        // correct processes decided the same set of exactly 8 ids.
        let names: Vec<i64> = ids
            .iter()
            .map(|&x| outcome.name_of(OriginalId::new(x)).unwrap().raw())
            .collect();
        let expected: Vec<i64> = (1..=8).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn round_budget_is_linear_in_t() {
        assert_eq!(ConsensusRenaming::total_rounds(1), 8);
        assert_eq!(ConsensusRenaming::total_rounds(4), 14);
        assert_eq!(ConsensusRenaming::total_rounds(10), 26);
    }

    #[test]
    #[should_panic(expected = "4t + 2")]
    fn rejects_insufficient_resilience() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let _ = ConsensusRenaming::new(
            cfg,
            OriginalId::new(1),
            0,
            (1..=5).map(LinkId::new).collect(),
        );
    }
}
