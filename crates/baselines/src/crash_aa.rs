//! B1: crash-tolerant order-preserving renaming (Okun-style, simplified).

use opr_sim::{Actor, Inbox, Outbox, WireSize, COUNT_BITS, ID_BITS, RANK_BITS, TAG_BITS};
use opr_types::math::ceil_log2;
use opr_types::{NewName, OriginalId, Rank, Round, SystemConfig};
use std::collections::BTreeMap;

/// Messages of the crash baseline.
#[derive(Clone, Debug, PartialEq)]
pub enum CrashMsg {
    /// Round 1: announce own id.
    Id(OriginalId),
    /// Rounds 2..: current rank array.
    Ranks(Vec<(OriginalId, Rank)>),
}

impl WireSize for CrashMsg {
    fn wire_bits(&self) -> u64 {
        match self {
            CrashMsg::Id(_) => TAG_BITS + ID_BITS,
            CrashMsg::Ranks(entries) => {
                TAG_BITS + COUNT_BITS + entries.len() as u64 * (ID_BITS + RANK_BITS)
            }
        }
    }
}

/// Stretch factor applied to initial positions: integer spacing 2 keeps
/// adjacent ids two units apart, so a final cross-process spread below 0.9
/// still rounds `rank/2` to distinct, ordered names.
const STRETCH: f64 = 2.0;

/// A correct process of the crash baseline.
///
/// Round 1 exchanges ids; each process ranks the ids it saw by sorted
/// position (stretched by 2). The following `⌈log₂ t⌉ + 3` rounds run
/// midpoint approximate agreement per id; the final name is
/// `round(rank/2)`.
///
/// In the crash model every correct id reaches every correct process in
/// round 1, so all correct arrays rank all correct ids; only ids of
/// processes that crashed *during* round 1 are partially known, which is
/// exactly the discrepancy AA repairs.
#[derive(Clone, Debug)]
pub struct CrashAaRenaming {
    my_id: OriginalId,
    total_rounds: u32,
    ranks: BTreeMap<OriginalId, Rank>,
    decided: Option<NewName>,
}

impl CrashAaRenaming {
    /// Creates a correct process; `cfg.t()` is read as the crash bound.
    pub fn new(cfg: SystemConfig, my_id: OriginalId) -> Self {
        CrashAaRenaming {
            my_id,
            total_rounds: Self::total_rounds(cfg.t()),
            ranks: BTreeMap::new(),
            decided: None,
        }
    }

    /// Total rounds: one id exchange plus `⌈log₂ t⌉ + 3` AA rounds.
    pub fn total_rounds(t: usize) -> u32 {
        1 + ceil_log2(t) + 3
    }
}

impl Actor for CrashAaRenaming {
    type Msg = CrashMsg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<CrashMsg> {
        if round.number() == 1 {
            Outbox::Broadcast(CrashMsg::Id(self.my_id))
        } else if round.number() <= self.total_rounds {
            Outbox::Broadcast(CrashMsg::Ranks(
                self.ranks.iter().map(|(&id, &r)| (id, r)).collect(),
            ))
        } else {
            Outbox::Silent
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<CrashMsg>) {
        if round.number() == 1 {
            let mut ids: Vec<OriginalId> = inbox
                .messages()
                .filter_map(|(_, m)| match m {
                    CrashMsg::Id(id) => Some(*id),
                    _ => None,
                })
                .collect();
            ids.sort_unstable();
            ids.dedup();
            self.ranks = ids
                .into_iter()
                .enumerate()
                .map(|(i, id)| (id, Rank::new((i + 1) as f64 * STRETCH)))
                .collect();
        } else if round.number() <= self.total_rounds {
            // Midpoint AA per id over all received arrays plus our own.
            let mut lo: BTreeMap<OriginalId, Rank> = self.ranks.clone();
            let mut hi: BTreeMap<OriginalId, Rank> = self.ranks.clone();
            for (_, msg) in inbox.messages() {
                if let CrashMsg::Ranks(entries) = msg {
                    for &(id, r) in entries {
                        lo.entry(id)
                            .and_modify(|cur| *cur = (*cur).min(r))
                            .or_insert(r);
                        hi.entry(id)
                            .and_modify(|cur| *cur = (*cur).max(r))
                            .or_insert(r);
                    }
                }
            }
            self.ranks = lo
                .into_iter()
                .map(|(id, l)| (id, l.midpoint(hi[&id])))
                .collect();
            if round.number() == self.total_rounds {
                // A process whose own announcement never circulated (it
                // crashed mid-broadcast before anyone heard it) has no rank;
                // it is faulty by definition and simply never decides.
                if let Some(own) = self.ranks.get(&self.my_id) {
                    self.decided = Some(NewName::new((own.value() / STRETCH).round() as i64));
                }
            }
        }
    }

    fn output(&self) -> Option<NewName> {
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_sim::{Network, Topology};
    use opr_types::RenamingOutcome;

    /// A process that crashes after sending in `alive` rounds (possibly 0).
    struct Crasher {
        inner: CrashAaRenaming,
        alive: u32,
    }
    impl Actor for Crasher {
        type Msg = CrashMsg;
        type Output = NewName;
        fn send(&mut self, round: Round) -> Outbox<CrashMsg> {
            if round.number() > self.alive {
                Outbox::Silent
            } else {
                self.inner.send(round)
            }
        }
        fn deliver(&mut self, round: Round, inbox: Inbox<CrashMsg>) {
            self.inner.deliver(round, inbox);
        }
        fn output(&self) -> Option<NewName> {
            None
        }
    }

    /// A process that crashes *mid-broadcast* in round 1: its id reaches
    /// only the first `reach` links — the worst case for rank discrepancy.
    struct PartialAnnouncer {
        my_id: OriginalId,
        reach: usize,
    }
    impl Actor for PartialAnnouncer {
        type Msg = CrashMsg;
        type Output = NewName;
        fn send(&mut self, round: Round) -> Outbox<CrashMsg> {
            if round.number() == 1 {
                Outbox::Multicast(
                    (1..=self.reach)
                        .map(|l| (opr_types::LinkId::new(l), CrashMsg::Id(self.my_id)))
                        .collect(),
                )
            } else {
                Outbox::Silent
            }
        }
        fn deliver(&mut self, _round: Round, _inbox: Inbox<CrashMsg>) {}
        fn output(&self) -> Option<NewName> {
            None
        }
    }

    fn verify_run(
        cfg: SystemConfig,
        actors: Vec<Box<dyn Actor<Msg = CrashMsg, Output = NewName>>>,
        correct: Vec<bool>,
        correct_ids: Vec<(usize, OriginalId)>,
        seed: u64,
    ) -> RenamingOutcome {
        let rounds = CrashAaRenaming::total_rounds(cfg.t());
        let mut net = Network::with_faults(actors, correct, Topology::seeded(cfg.n(), seed));
        let report = net.run(rounds);
        assert!(report.completed);
        RenamingOutcome::new(
            correct_ids
                .into_iter()
                .map(|(idx, id)| (id, net.output_of(idx))),
        )
    }

    #[test]
    fn crash_free_run_gives_exact_ranks() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let ids = [50u64, 10, 40, 20, 30];
        let actors: Vec<Box<dyn Actor<Msg = CrashMsg, Output = NewName>>> = ids
            .iter()
            .map(|&x| {
                Box::new(CrashAaRenaming::new(cfg, OriginalId::new(x)))
                    as Box<dyn Actor<Msg = CrashMsg, Output = NewName>>
            })
            .collect();
        let positions = ids
            .iter()
            .enumerate()
            .map(|(i, &x)| (i, OriginalId::new(x)))
            .collect();
        let outcome = verify_run(cfg, actors, vec![true; 5], positions, 1);
        assert!(outcome.verify(5).is_empty());
        assert_eq!(outcome.name_of(OriginalId::new(10)), Some(NewName::new(1)));
        assert_eq!(outcome.name_of(OriginalId::new(50)), Some(NewName::new(5)));
    }

    #[test]
    fn partial_round1_crash_is_repaired_by_aa() {
        // One process's id reaches only 2 of 4 correct processes; the AA
        // rounds must still produce consistent, ordered names.
        let cfg = SystemConfig::new(5, 1).unwrap();
        let correct_raw = [10u64, 20, 30, 40];
        for seed in 0..8 {
            let mut actors: Vec<Box<dyn Actor<Msg = CrashMsg, Output = NewName>>> =
                vec![Box::new(PartialAnnouncer {
                    my_id: OriginalId::new(25),
                    reach: 2,
                })];
            for &x in &correct_raw {
                actors.push(Box::new(CrashAaRenaming::new(cfg, OriginalId::new(x))));
            }
            let positions: Vec<(usize, OriginalId)> = correct_raw
                .iter()
                .enumerate()
                .map(|(i, &x)| (i + 1, OriginalId::new(x)))
                .collect();
            let mut correct = vec![false];
            correct.extend([true; 4]);
            let outcome = verify_run(cfg, actors, correct, positions, seed);
            assert!(
                outcome.verify(6).is_empty(),
                "seed {seed}: {:?}",
                outcome.verify(6)
            );
        }
    }

    #[test]
    fn mid_protocol_crash_preserves_properties() {
        let cfg = SystemConfig::new(6, 2).unwrap();
        let correct_raw = [5u64, 15, 25, 35];
        for alive in 0..4 {
            let mut actors: Vec<Box<dyn Actor<Msg = CrashMsg, Output = NewName>>> = vec![
                Box::new(Crasher {
                    inner: CrashAaRenaming::new(cfg, OriginalId::new(100)),
                    alive,
                }),
                Box::new(Crasher {
                    inner: CrashAaRenaming::new(cfg, OriginalId::new(1)),
                    alive: alive + 1,
                }),
            ];
            for &x in &correct_raw {
                actors.push(Box::new(CrashAaRenaming::new(cfg, OriginalId::new(x))));
            }
            let mut correct = vec![false, false];
            correct.extend([true; 4]);
            let positions = correct_raw
                .iter()
                .enumerate()
                .map(|(i, &x)| (i + 2, OriginalId::new(x)))
                .collect();
            let outcome = verify_run(cfg, actors, correct, positions, alive as u64);
            // Namespace: N + crashed-but-visible ids.
            assert!(
                outcome.verify(cfg.n() as u64 + 2).is_empty(),
                "alive={alive}: {:?}",
                outcome.verify(cfg.n() as u64 + 2)
            );
        }
    }

    #[test]
    fn round_budget_is_logarithmic_in_t() {
        assert_eq!(CrashAaRenaming::total_rounds(0), 4);
        assert_eq!(CrashAaRenaming::total_rounds(1), 4);
        assert_eq!(CrashAaRenaming::total_rounds(4), 6);
        assert_eq!(CrashAaRenaming::total_rounds(16), 8);
    }
}
