//! The lock-step round engine.

use crate::actor::{Actor, Inbox, Outbox};
use crate::metrics::{RoundMetrics, RunMetrics};
use crate::sealed::Sealed;
use crate::topology::Topology;
use crate::trace::{Trace, TraceEvent};
use crate::wire::WireSize;
use opr_types::{MalformedKind, MalformedSend, ProcessIndex, Round};
use std::fmt::Debug;

/// Result of [`Network::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Rounds actually executed.
    pub rounds_executed: u32,
    /// Whether every correct actor produced an output within the budget.
    pub completed: bool,
}

/// A synchronous network executing a set of [`Actor`]s in lock-step rounds.
///
/// The engine is deliberately single-threaded and deterministic: given the
/// same actors (including adversary seeds) and topology, a run is exactly
/// reproducible — runs *are* the experiments in this workspace.
pub struct Network<M, O> {
    actors: Vec<Box<dyn Actor<Msg = M, Output = O>>>,
    correct: Vec<bool>,
    topology: Topology,
    metrics: RunMetrics,
    next_round: Round,
    trace: Option<Trace>,
    delivery_filter: Option<DeliveryFilter>,
    payload_cap: Option<u64>,
    malformed: Vec<MalformedSend>,
    // Per-round arenas, keyed to the process count and reused across
    // rounds instead of reallocated: the outbox collection, the outer
    // inbox spine, and the multicast duplicate-link bitmap. The inner
    // inbox `Vec`s are *not* reusable — `Inbox::new` consumes them by
    // contract — so only the outer buffers live here.
    outbox_arena: Vec<Outbox<M>>,
    inbox_arena: Vec<Vec<(opr_types::LinkId, Sealed<M>)>>,
    seen_arena: Vec<bool>,
}

/// A transport-level delivery predicate: given the round, the sending
/// process and the *outgoing* link label at the sender, decide whether the
/// message traverses the link. Returning `false` models a transport fault
/// (drop, or delay past the round boundary — equivalent to silence in the
/// synchronous model): the message is never routed, counted or traced.
pub type DeliveryFilter = Box<dyn FnMut(Round, ProcessIndex, opr_types::LinkId) -> bool + Send>;

impl<M, O> Network<M, O>
where
    M: Clone + Debug + WireSize,
{
    /// Creates a network in which every actor is counted as correct.
    ///
    /// # Panics
    ///
    /// Panics if the number of actors differs from the topology size.
    pub fn new(actors: Vec<Box<dyn Actor<Msg = M, Output = O>>>, topology: Topology) -> Self {
        let correct = vec![true; actors.len()];
        Self::with_faults(actors, correct, topology)
    }

    /// Creates a network with an explicit correctness mask. Faulty actors
    /// participate fully (the engine routes whatever they send) but are
    /// excluded from termination detection and from the `correct` metrics.
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent with the topology.
    pub fn with_faults(
        actors: Vec<Box<dyn Actor<Msg = M, Output = O>>>,
        correct: Vec<bool>,
        topology: Topology,
    ) -> Self {
        assert_eq!(
            actors.len(),
            topology.n(),
            "actor count must match topology"
        );
        assert_eq!(actors.len(), correct.len(), "mask must cover every actor");
        let n = actors.len();
        Network {
            actors,
            correct,
            topology,
            metrics: RunMetrics::new(),
            next_round: Round::FIRST,
            trace: None,
            delivery_filter: None,
            payload_cap: None,
            malformed: Vec::new(),
            outbox_arena: Vec::with_capacity(n),
            inbox_arena: (0..n).map(|_| Vec::new()).collect(),
            seen_arena: vec![false; n],
        }
    }

    /// Installs a per-message payload cap in bits. Larger messages are
    /// recorded as [`MalformedSend`]s and dropped instead of routed.
    pub fn set_payload_cap(&mut self, cap: Option<u64>) {
        self.payload_cap = cap;
    }

    /// Every send the transport rejected so far (out-of-range or duplicate
    /// link labels, oversized payloads), in `(round, sender, occurrence)`
    /// order. Rejection is not an engine failure: the message is dropped —
    /// indistinguishable from a link fault to the receiver — and the caller
    /// decides whether the sender was within its rights (Byzantine) or
    /// buggy (correct).
    pub fn malformed_sends(&self) -> &[MalformedSend] {
        &self.malformed
    }

    /// Installs a transport-level [`DeliveryFilter`]. Messages the filter
    /// rejects are dropped before routing, metrics and tracing — exactly as
    /// if the link had failed for that round.
    pub fn set_delivery_filter(&mut self, filter: DeliveryFilter) {
        self.delivery_filter = Some(filter);
    }

    /// Starts recording deliveries into a bounded [`Trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::with_capacity(capacity));
    }

    /// Starts recording deliveries with an explicit overflow
    /// [`TraceMode`](crate::TraceMode).
    pub fn enable_trace_mode(&mut self, capacity: usize, mode: crate::TraceMode) {
        self.trace = Some(Trace::with_mode(capacity, mode));
    }

    /// Rotates a ring trace oldest-first; see
    /// [`Trace::normalize`](crate::Trace::normalize).
    pub fn normalize_trace(&mut self) {
        if let Some(trace) = &mut self.trace {
            trace.normalize();
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Executes one synchronous round: all sends, then all deliveries.
    pub fn step(&mut self) {
        let round = self.next_round;
        let n = self.actors.len();

        // Phase 1: collect every actor's outbox into the reusable arena.
        // The arenas are taken out of `self` for the duration of the round
        // so the routing closure below can still borrow `self` mutably.
        let mut outboxes = std::mem::take(&mut self.outbox_arena);
        debug_assert!(outboxes.is_empty(), "arena returned dirty last round");
        for actor in &mut self.actors {
            outboxes.push(actor.send(round));
        }

        // Phase 2: route. `inboxes[r]` accumulates (label, message) pairs.
        // The inner `Vec`s were consumed by `Inbox` last round, so reserve
        // the worst case (one message per sender) up front: one allocation
        // per receiver per round instead of a growth-doubling series.
        let mut inboxes = std::mem::take(&mut self.inbox_arena);
        debug_assert_eq!(inboxes.len(), n, "inbox spine sized to process count");
        for slot in &mut inboxes {
            slot.reserve(n);
        }
        let mut round_metrics = RoundMetrics::default();
        for (s, outbox) in outboxes.drain(..).enumerate() {
            let sender = ProcessIndex::new(s);
            let is_correct = self.correct[s];
            let mut deliver_one = |link: opr_types::LinkId, msg: Sealed<M>, net: &mut Self| {
                // Computed once per payload and cached inside the seal: the
                // cap check, metrics and trace below all reuse this value,
                // and the other N−1 links of a broadcast get it for free.
                let bits = msg.wire_bits();
                if let Some(cap) = net.payload_cap {
                    if bits > cap {
                        net.malformed.push(MalformedSend {
                            sender,
                            round,
                            kind: MalformedKind::OversizedPayload { bits, cap },
                        });
                        return;
                    }
                }
                if let Some(filter) = net.delivery_filter.as_mut() {
                    if !filter(round, sender, link) {
                        return;
                    }
                }
                let receiver = net.topology.peer(sender, link);
                let in_label = net.topology.incoming_label(receiver, sender);
                let self_loop = receiver == sender;
                if is_correct {
                    if !self_loop {
                        round_metrics.messages_correct += 1;
                        round_metrics.bits_correct += bits;
                    }
                    round_metrics.max_message_bits = round_metrics.max_message_bits.max(bits);
                } else if !self_loop {
                    round_metrics.messages_faulty += 1;
                }
                if let Some(trace) = &mut net.trace {
                    trace.record(TraceEvent {
                        round,
                        sender,
                        receiver,
                        link: in_label,
                        message: msg.rendered().to_owned(),
                    });
                }
                inboxes[receiver.index()].push((in_label, msg));
            };
            match outbox {
                Outbox::Silent => {}
                Outbox::Broadcast(msg) => {
                    // Seal once; every link's inbox slot shares the same
                    // allocation — fan-out is N refcount bumps, not N deep
                    // copies.
                    let sealed = Sealed::new(msg);
                    for l in 1..=n {
                        deliver_one(opr_types::LinkId::new(l), sealed.clone(), self);
                    }
                }
                Outbox::Multicast(entries) => {
                    let mut seen = std::mem::take(&mut self.seen_arena);
                    seen.clear();
                    seen.resize(n, false);
                    for (link, msg) in entries {
                        if link.label() > n {
                            self.malformed.push(MalformedSend {
                                sender,
                                round,
                                kind: MalformedKind::LinkOutOfRange {
                                    label: link.label(),
                                    n,
                                },
                            });
                            continue;
                        }
                        if std::mem::replace(&mut seen[link.index()], true) {
                            self.malformed.push(MalformedSend {
                                sender,
                                round,
                                kind: MalformedKind::DuplicateLink {
                                    label: link.label(),
                                },
                            });
                            continue;
                        }
                        // Equivocation stays per-link owned: each entry is
                        // its own payload, sealed individually.
                        deliver_one(link, Sealed::new(msg), self);
                    }
                    self.seen_arena = seen;
                }
            }
        }
        self.metrics.push_round(round_metrics);

        // Phase 3: deliver. Sort by label for determinism. The inbox
        // consumes each inner `Vec` (payloads stay sealed — shared
        // broadcast allocations are handed over, not copied), so
        // `mem::take` leaves a fresh (non-allocating) empty slot.
        for (r, slot) in inboxes.iter_mut().enumerate() {
            let mut entries = std::mem::take(slot);
            entries.sort_by_key(|(l, _)| *l);
            self.actors[r].deliver(round, Inbox::from_sealed(entries));
        }
        self.outbox_arena = outboxes;
        self.inbox_arena = inboxes;
        self.next_round = round.next();
    }

    /// Runs until every correct actor has an output, or `max_rounds` rounds
    /// have executed.
    pub fn run(&mut self, max_rounds: u32) -> RunReport {
        let mut executed = self.metrics.rounds_executed();
        while executed < max_rounds && !self.all_correct_decided() {
            self.step();
            executed = self.metrics.rounds_executed();
        }
        RunReport {
            rounds_executed: executed,
            completed: self.all_correct_decided(),
        }
    }

    fn all_correct_decided(&self) -> bool {
        self.actors
            .iter()
            .zip(&self.correct)
            .filter(|(_, &c)| c)
            .all(|(a, _)| a.output().is_some())
    }

    /// The output of actor `index`, if decided.
    pub fn output_of(&self, index: usize) -> Option<O> {
        self.actors[index].output()
    }

    /// Outputs of all actors (faulty included), in index order.
    pub fn outputs(&self) -> Vec<Option<O>> {
        self.actors.iter().map(|a| a.output()).collect()
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The correctness mask supplied at construction.
    pub fn correct_mask(&self) -> &[bool] {
        &self.correct
    }

    /// The topology the network routes over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_types::LinkId;

    #[derive(Clone, Debug)]
    struct Num(u64);
    impl WireSize for Num {
        fn wire_bits(&self) -> u64 {
            64
        }
    }

    /// Broadcasts its value; decides the sum of round-1 values.
    struct Summer {
        value: u64,
        sum: Option<u64>,
    }
    impl Actor for Summer {
        type Msg = Num;
        type Output = u64;
        fn send(&mut self, _round: Round) -> Outbox<Num> {
            Outbox::Broadcast(Num(self.value))
        }
        fn deliver(&mut self, _round: Round, inbox: Inbox<Num>) {
            if self.sum.is_none() {
                self.sum = Some(inbox.messages().map(|(_, m)| m.0).sum());
            }
        }
        fn output(&self) -> Option<u64> {
            self.sum
        }
    }

    /// Sends a different value to every link (equivocator), never decides.
    struct Equivocator;
    impl Actor for Equivocator {
        type Msg = Num;
        type Output = u64;
        fn send(&mut self, _round: Round) -> Outbox<Num> {
            Outbox::Multicast(
                (1..=3)
                    .map(|l| (LinkId::new(l), Num(100 * l as u64)))
                    .collect(),
            )
        }
        fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
        fn output(&self) -> Option<u64> {
            None
        }
    }

    fn summers(values: &[u64]) -> Vec<Box<dyn Actor<Msg = Num, Output = u64>>> {
        values
            .iter()
            .map(|&v| {
                Box::new(Summer {
                    value: v,
                    sum: None,
                }) as Box<dyn Actor<Msg = Num, Output = u64>>
            })
            .collect()
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let mut net = Network::new(summers(&[1, 2, 4]), Topology::canonical(3));
        let report = net.run(5);
        assert!(report.completed);
        assert_eq!(report.rounds_executed, 1);
        for i in 0..3 {
            assert_eq!(net.output_of(i), Some(7), "actor {i} must see all values");
        }
    }

    #[test]
    fn metrics_count_network_messages_not_self_loops() {
        let mut net = Network::new(summers(&[1, 2, 4]), Topology::canonical(3));
        net.run(1);
        // 3 actors × 2 non-self links.
        assert_eq!(net.metrics().messages_correct(), 6);
        assert_eq!(net.metrics().bits_correct(), 6 * 64);
        assert_eq!(net.metrics().max_message_bits(), 64);
    }

    #[test]
    fn faulty_messages_counted_separately() {
        let actors: Vec<Box<dyn Actor<Msg = Num, Output = u64>>> = vec![
            Box::new(Summer {
                value: 1,
                sum: None,
            }),
            Box::new(Summer {
                value: 2,
                sum: None,
            }),
            Box::new(Equivocator),
        ];
        let mut net = Network::with_faults(actors, vec![true, true, false], Topology::canonical(3));
        let report = net.run(1);
        assert!(report.completed, "correct actors decided");
        // The equivocator multicast to links 1..=3 of a 3-process system:
        // two peers plus the self-loop, so two network messages.
        assert_eq!(net.metrics().messages_faulty(), 2);
        assert_eq!(net.metrics().messages_correct(), 4);
    }

    #[test]
    fn equivocator_delivers_different_values_per_link() {
        let actors: Vec<Box<dyn Actor<Msg = Num, Output = u64>>> = vec![
            Box::new(Summer {
                value: 1,
                sum: None,
            }),
            Box::new(Summer {
                value: 2,
                sum: None,
            }),
            Box::new(Equivocator),
        ];
        let topo = Topology::canonical(3);
        let mut net = Network::with_faults(actors, vec![true, true, false], topo);
        net.run(1);
        // Each summer saw: both correct values + one of the equivocator's
        // per-link values (100·l for the equivocator's link l to them). The
        // two sums must therefore differ — equivocation is really per-link.
        let a = net.output_of(0).unwrap();
        let b = net.output_of(1).unwrap();
        assert_ne!(a, b, "equivocator must be able to split correct views");
    }

    #[test]
    fn run_respects_round_budget() {
        struct Never;
        impl Actor for Never {
            type Msg = Num;
            type Output = u64;
            fn send(&mut self, _round: Round) -> Outbox<Num> {
                Outbox::Silent
            }
            fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
            fn output(&self) -> Option<u64> {
                None
            }
        }
        let actors: Vec<Box<dyn Actor<Msg = Num, Output = u64>>> = vec![Box::new(Never)];
        let mut net = Network::new(actors, Topology::canonical(1));
        let report = net.run(4);
        assert!(!report.completed);
        assert_eq!(report.rounds_executed, 4);
    }

    #[test]
    fn trace_records_deliveries() {
        let mut net = Network::new(summers(&[1, 2]), Topology::canonical(2));
        net.enable_trace(100);
        net.run(1);
        let trace = net.trace().unwrap();
        // 2 senders × 2 links (peer + self-loop).
        assert_eq!(trace.events().len(), 4);
    }

    #[test]
    fn duplicate_link_in_multicast_is_recorded_and_dropped() {
        struct Dup;
        impl Actor for Dup {
            type Msg = Num;
            type Output = u64;
            fn send(&mut self, _round: Round) -> Outbox<Num> {
                Outbox::Multicast(vec![(LinkId::new(1), Num(1)), (LinkId::new(1), Num(2))])
            }
            fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
            fn output(&self) -> Option<u64> {
                None
            }
        }
        let actors: Vec<Box<dyn Actor<Msg = Num, Output = u64>>> = vec![
            Box::new(Dup),
            Box::new(Summer {
                value: 0,
                sum: None,
            }),
        ];
        let mut net = Network::new(actors, Topology::canonical(2));
        net.step();
        // The first message on the link went through; the duplicate was
        // recorded and dropped, not panicked on.
        assert_eq!(net.output_of(1), Some(1));
        let malformed = net.malformed_sends();
        assert_eq!(malformed.len(), 1);
        assert!(matches!(
            malformed[0].kind,
            opr_types::MalformedKind::DuplicateLink { label: 1 }
        ));
        assert_eq!(malformed[0].sender, ProcessIndex::new(0));
    }

    #[test]
    fn out_of_range_link_is_recorded_and_dropped() {
        struct Wild;
        impl Actor for Wild {
            type Msg = Num;
            type Output = u64;
            fn send(&mut self, _round: Round) -> Outbox<Num> {
                Outbox::Multicast(vec![(LinkId::new(9), Num(1)), (LinkId::new(1), Num(2))])
            }
            fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
            fn output(&self) -> Option<u64> {
                None
            }
        }
        let actors: Vec<Box<dyn Actor<Msg = Num, Output = u64>>> = vec![
            Box::new(Wild),
            Box::new(Summer {
                value: 0,
                sum: None,
            }),
        ];
        let mut net = Network::new(actors, Topology::canonical(2));
        net.step();
        assert_eq!(net.output_of(1), Some(2), "in-range message still routed");
        assert!(matches!(
            net.malformed_sends(),
            [MalformedSend {
                kind: opr_types::MalformedKind::LinkOutOfRange { label: 9, n: 2 },
                ..
            }]
        ));
    }

    #[test]
    fn payload_cap_rejects_oversized_messages() {
        let mut net = Network::new(summers(&[1, 2]), Topology::canonical(2));
        net.set_payload_cap(Some(32));
        let report = net.run(2);
        // Every 64-bit message got rejected: nobody hears anything, sums are
        // zero, and each sender is flagged once per attempted delivery.
        assert!(report.completed);
        assert_eq!(net.output_of(0), Some(0));
        assert_eq!(net.metrics().messages_correct(), 0);
        assert_eq!(net.malformed_sends().len(), 4);
        assert!(net.malformed_sends().iter().all(|m| matches!(
            m.kind,
            opr_types::MalformedKind::OversizedPayload { bits: 64, cap: 32 }
        )));
    }

    #[test]
    #[should_panic(expected = "actor count")]
    fn actor_count_must_match_topology() {
        let _ = Network::new(summers(&[1]), Topology::canonical(2));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = |seed| {
            let mut net = Network::new(summers(&[5, 6, 7, 8]), Topology::seeded(4, seed));
            net.run(1);
            (net.outputs(), net.metrics().clone())
        };
        assert_eq!(run(42), run(42));
    }
}
