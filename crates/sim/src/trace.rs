//! A bounded, human-readable event trace for debugging protocol runs.
//!
//! Tracing is opt-in (see [`Network::enable_trace`](crate::Network)); when
//! enabled, every delivery is recorded as a formatted [`TraceEvent`]. The
//! buffer is capacity-bounded so pathological runs cannot exhaust memory.

use opr_types::{LinkId, ProcessIndex, Round};
use std::fmt;

/// One recorded delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The round the message was sent and delivered in.
    pub round: Round,
    /// Sending process (simulator index).
    pub sender: ProcessIndex,
    /// Receiving process (simulator index).
    pub receiver: ProcessIndex,
    /// The label the receiver saw the message arrive on.
    pub link: LinkId,
    /// Debug rendering of the message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] {:?} -> {:?} (on {:?}): {}",
            self.round, self.sender, self.receiver, self.link, self.message
        )
    }
}

/// A capacity-bounded event buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace retaining at most `capacity` events (oldest first;
    /// once full, further events are counted but not stored).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (or counts it as dropped when full).
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events did not fit in the buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events delivered to a given receiver.
    pub fn deliveries_to(&self, receiver: ProcessIndex) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.receiver == receiver)
    }

    /// Events belonging to a given round.
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.round == round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: u32, s: usize, r: usize) -> TraceEvent {
        TraceEvent {
            round: Round::new(round),
            sender: ProcessIndex::new(s),
            receiver: ProcessIndex::new(r),
            link: LinkId::new(1),
            message: "m".to_owned(),
        }
    }

    #[test]
    fn records_until_capacity_then_counts_drops() {
        let mut t = Trace::with_capacity(2);
        t.record(event(1, 0, 1));
        t.record(event(1, 1, 0));
        t.record(event(2, 0, 1));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn filters_by_receiver_and_round() {
        let mut t = Trace::with_capacity(10);
        t.record(event(1, 0, 1));
        t.record(event(1, 2, 1));
        t.record(event(2, 0, 2));
        assert_eq!(t.deliveries_to(ProcessIndex::new(1)).count(), 2);
        assert_eq!(t.in_round(Round::new(2)).count(), 1);
    }

    #[test]
    fn display_contains_endpoints() {
        let e = event(3, 4, 5);
        let s = e.to_string();
        assert!(s.contains("r3") && s.contains("p4") && s.contains("p5"));
    }
}
