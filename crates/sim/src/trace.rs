//! A bounded, human-readable event trace for debugging protocol runs.
//!
//! Tracing is opt-in (see [`Network::enable_trace`](crate::Network)); when
//! enabled, every delivery is recorded as a formatted [`TraceEvent`]. The
//! buffer is capacity-bounded so pathological runs cannot exhaust memory.

use opr_types::{LinkId, ProcessIndex, Round};
use std::fmt;

/// One recorded delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The round the message was sent and delivered in.
    pub round: Round,
    /// Sending process (simulator index).
    pub sender: ProcessIndex,
    /// Receiving process (simulator index).
    pub receiver: ProcessIndex,
    /// The label the receiver saw the message arrive on.
    pub link: LinkId,
    /// Debug rendering of the message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] {:?} -> {:?} (on {:?}): {}",
            self.round, self.sender, self.receiver, self.link, self.message
        )
    }
}

/// What a full [`Trace`] buffer sacrifices.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Keep the oldest `capacity` events, count the rest as dropped (the
    /// historical behavior — good for "how did it start" questions).
    #[default]
    KeepFirst,
    /// Keep the *newest* `capacity` events in a ring, dropping the oldest —
    /// good for failure forensics, where the interesting deliveries are the
    /// final rounds that [`TraceMode::KeepFirst`] loses.
    KeepLast,
}

/// A capacity-bounded event buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    mode: TraceMode,
    /// Ring start index in [`TraceMode::KeepLast`]; [`normalize`](Trace::normalize)
    /// rotates it back to 0.
    start: usize,
}

impl Trace {
    /// Creates a trace retaining at most `capacity` events (oldest first;
    /// once full, further events are counted but not stored).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_mode(capacity, TraceMode::KeepFirst)
    }

    /// Creates a trace with an explicit overflow [`TraceMode`].
    pub fn with_mode(capacity: usize, mode: TraceMode) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
            mode,
            start: 0,
        }
    }

    /// The trace's overflow mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Records an event; when full, drops the newest or the oldest event
    /// according to the [`TraceMode`].
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
            return;
        }
        self.dropped += 1;
        if self.mode == TraceMode::KeepLast && self.capacity > 0 {
            self.events[self.start] = event;
            self.start = (self.start + 1) % self.capacity;
        }
    }

    /// Rotates a [`TraceMode::KeepLast`] ring so that
    /// [`events`](Trace::events) is oldest-first. Idempotent; backends call
    /// it once after a run finishes.
    pub fn normalize(&mut self) {
        if self.start != 0 {
            self.events.rotate_left(self.start);
            self.start = 0;
        }
    }

    /// The recorded events, oldest first.
    ///
    /// # Panics
    ///
    /// Debug-panics if a [`TraceMode::KeepLast`] ring has wrapped and has
    /// not been [`normalize`](Trace::normalize)d yet.
    pub fn events(&self) -> &[TraceEvent] {
        debug_assert_eq!(
            self.start, 0,
            "call normalize() before reading a ring trace"
        );
        &self.events
    }

    /// How many events did not fit in the buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events delivered to a given receiver.
    pub fn deliveries_to(&self, receiver: ProcessIndex) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.receiver == receiver)
    }

    /// Events belonging to a given round.
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.round == round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: u32, s: usize, r: usize) -> TraceEvent {
        TraceEvent {
            round: Round::new(round),
            sender: ProcessIndex::new(s),
            receiver: ProcessIndex::new(r),
            link: LinkId::new(1),
            message: "m".to_owned(),
        }
    }

    #[test]
    fn records_until_capacity_then_counts_drops() {
        let mut t = Trace::with_capacity(2);
        t.record(event(1, 0, 1));
        t.record(event(1, 1, 0));
        t.record(event(2, 0, 1));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn keep_last_retains_the_newest_events() {
        let mut t = Trace::with_mode(3, TraceMode::KeepLast);
        for round in 1..=7u32 {
            t.record(event(round, 0, 1));
        }
        t.normalize();
        assert_eq!(t.dropped(), 4);
        let rounds: Vec<u32> = t.events().iter().map(|e| e.round.number()).collect();
        assert_eq!(rounds, vec![5, 6, 7]);
        // normalize is idempotent.
        t.normalize();
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn keep_last_zero_capacity_only_counts() {
        let mut t = Trace::with_mode(0, TraceMode::KeepLast);
        t.record(event(1, 0, 1));
        t.normalize();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn filters_by_receiver_and_round() {
        let mut t = Trace::with_capacity(10);
        t.record(event(1, 0, 1));
        t.record(event(1, 2, 1));
        t.record(event(2, 0, 2));
        assert_eq!(t.deliveries_to(ProcessIndex::new(1)).count(), 2);
        assert_eq!(t.in_round(Round::new(2)).count(), 1);
    }

    #[test]
    fn display_contains_endpoints() {
        let e = event(3, 4, 5);
        let s = e.to_string();
        assert!(s.contains("r3") && s.contains("p4") && s.contains("p5"));
    }
}
