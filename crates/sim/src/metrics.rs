//! Run metrics: rounds, messages and bits, split by sender correctness.
//!
//! The message-complexity experiment (T3) compares these counters against
//! the paper's `O(N² log t)` message bound and per-message bit bounds, so the
//! network engine maintains them for every run.

/// Counters for a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Messages sent by correct processes (self-loop deliveries excluded —
    /// the paper counts network messages).
    pub messages_correct: u64,
    /// Messages sent by faulty processes.
    pub messages_faulty: u64,
    /// Total bits sent by correct processes.
    pub bits_correct: u64,
    /// Largest single message (in bits) sent by a correct process.
    pub max_message_bits: u64,
}

impl RoundMetrics {
    /// Total messages from all processes.
    pub fn messages_total(&self) -> u64 {
        self.messages_correct + self.messages_faulty
    }
}

/// Counters for a complete run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    rounds: Vec<RoundMetrics>,
}

impl RunMetrics {
    /// An empty metrics accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the metrics of the next round.
    pub fn push_round(&mut self, round: RoundMetrics) {
        self.rounds.push(round);
    }

    /// Number of rounds executed, saturating at `u32::MAX` (no real run gets
    /// near that, but a bare `as` cast would silently wrap).
    pub fn rounds_executed(&self) -> u32 {
        u32::try_from(self.rounds.len()).unwrap_or(u32::MAX)
    }

    /// Per-round counters, in execution order.
    pub fn per_round(&self) -> &[RoundMetrics] {
        &self.rounds
    }

    /// Total messages sent by correct processes over the run.
    pub fn messages_correct(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages_correct).sum()
    }

    /// Total messages from all processes over the run.
    pub fn messages_total(&self) -> u64 {
        self.rounds.iter().map(RoundMetrics::messages_total).sum()
    }

    /// Total messages sent by faulty processes over the run.
    pub fn messages_faulty(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages_faulty).sum()
    }

    /// Total bits sent by correct processes over the run.
    pub fn bits_correct(&self) -> u64 {
        self.rounds.iter().map(|r| r.bits_correct).sum()
    }

    /// The largest single correct message over the run, in bits.
    pub fn max_message_bits(&self) -> u64 {
        self.rounds
            .iter()
            .map(|r| r.max_message_bits)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_rounds() {
        let mut m = RunMetrics::new();
        m.push_round(RoundMetrics {
            messages_correct: 10,
            messages_faulty: 2,
            bits_correct: 480,
            max_message_bits: 48,
        });
        m.push_round(RoundMetrics {
            messages_correct: 5,
            messages_faulty: 0,
            bits_correct: 500,
            max_message_bits: 100,
        });
        assert_eq!(m.rounds_executed(), 2);
        assert_eq!(m.messages_correct(), 15);
        assert_eq!(m.messages_total(), 17);
        assert_eq!(m.bits_correct(), 980);
        assert_eq!(m.max_message_bits(), 100);
        assert_eq!(m.per_round().len(), 2);
    }

    #[test]
    fn empty_run() {
        let m = RunMetrics::new();
        assert_eq!(m.rounds_executed(), 0);
        assert_eq!(m.messages_total(), 0);
        assert_eq!(m.max_message_bits(), 0);
    }
}
