//! Shared, immutable message payloads for zero-copy broadcast fan-out.
//!
//! The paper's algorithms are full-information broadcasts: every correct
//! process sends the *same* `⟨AA, ranks⟩` vector on all `N` links for every
//! voting step. Fanning that out used to deep-copy the payload once per
//! link — O(N²) heap allocations of O(N+t)-sized vectors per round across
//! the system. [`Sealed`] makes the fan-out a refcount bump instead: the
//! engine seals a broadcast payload exactly once and every inbox slot (and,
//! on the threaded backend, every `mpsc` queue) shares the same allocation.
//!
//! # Ownership rules
//!
//! A sealed payload is immutable for its entire lifetime — `Sealed` hands
//! out `&M` only, never `&mut M`. Mutation ends where sealing begins: an
//! actor owns its message exclusively until it returns it from
//! [`Actor::send`](crate::Actor::send); the engine seals it during routing;
//! consumers borrow from the shared allocation (or clone an owned copy out
//! via [`Sealed::into_inner`] for the rare value they keep).
//!
//! Alongside the payload, `Sealed` caches the two derived values the
//! delivery pipeline used to recompute per link:
//!
//! * [`WireSize::wire_bits`] — computed once, reused for the payload cap
//!   check, metrics and traces on all `N` links.
//! * The `Debug` rendering — traces record `format!("{msg:?}")` per
//!   delivery; sealing renders once and shares the string.

use crate::wire::WireSize;
use std::fmt::{self, Debug};
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

struct SealedInner<M> {
    msg: M,
    bits: OnceLock<u64>,
    rendered: OnceLock<String>,
}

/// An immutable, cheaply-clonable (`Arc`-backed) message payload with
/// one-time cached wire size and `Debug` rendering.
///
/// `Sealed<M>` derefs to `M`, renders (`Debug`) and sizes ([`WireSize`])
/// exactly like the payload it wraps, so sealing is observationally
/// invisible: metrics, traces and malformed-send records are bit-for-bit
/// what an owned payload would have produced.
pub struct Sealed<M> {
    inner: Arc<SealedInner<M>>,
}

impl<M> Sealed<M> {
    /// Seals a payload. From here on the message is immutable and shared.
    pub fn new(msg: M) -> Self {
        Sealed {
            inner: Arc::new(SealedInner {
                msg,
                bits: OnceLock::new(),
                rendered: OnceLock::new(),
            }),
        }
    }

    /// Borrows the payload.
    pub fn get(&self) -> &M {
        &self.inner.msg
    }

    /// Recovers an owned payload: moves it out if this is the last handle,
    /// clones from the shared allocation otherwise.
    pub fn into_inner(self) -> M
    where
        M: Clone,
    {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.msg,
            Err(shared) => shared.msg.clone(),
        }
    }

    /// The cached `Debug` rendering, computed on first use and shared by
    /// every handle — what the delivery trace records per link.
    pub fn rendered(&self) -> &str
    where
        M: Debug,
    {
        self.inner
            .rendered
            .get_or_init(|| format!("{:?}", self.inner.msg))
    }
}

impl<M> Clone for Sealed<M> {
    /// A refcount bump — never a payload copy.
    fn clone(&self) -> Self {
        Sealed {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M> Deref for Sealed<M> {
    type Target = M;
    fn deref(&self) -> &M {
        &self.inner.msg
    }
}

impl<M: WireSize> WireSize for Sealed<M> {
    /// The payload's wire size, computed once and cached across all links.
    fn wire_bits(&self) -> u64 {
        *self.inner.bits.get_or_init(|| self.inner.msg.wire_bits())
    }
}

impl<M: Debug> Debug for Sealed<M> {
    /// Renders exactly like the wrapped payload. The common non-alternate
    /// form (`{:?}` — what traces record) is cached; alternate formatting
    /// (`{:#?}`) delegates to the payload directly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            self.inner.msg.fmt(f)
        } else {
            f.write_str(self.rendered())
        }
    }
}

impl<M: PartialEq> PartialEq for Sealed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.inner.msg == other.inner.msg
    }
}

impl<M: Eq> Eq for Sealed<M> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SIZE_CALLS: AtomicU64 = AtomicU64::new(0);

    #[derive(Clone, Debug, PartialEq)]
    struct Counted(Vec<u64>);
    impl WireSize for Counted {
        fn wire_bits(&self) -> u64 {
            SIZE_CALLS.fetch_add(1, Ordering::SeqCst);
            64 * self.0.len() as u64
        }
    }

    #[test]
    fn clone_shares_the_allocation() {
        let sealed = Sealed::new(Counted(vec![1, 2, 3]));
        let copy = sealed.clone();
        assert!(std::ptr::eq(sealed.get(), copy.get()));
    }

    #[test]
    fn wire_bits_is_computed_once_across_handles() {
        let before = SIZE_CALLS.load(Ordering::SeqCst);
        let sealed = Sealed::new(Counted(vec![7; 4]));
        let copy = sealed.clone();
        assert_eq!(sealed.wire_bits(), 64 * 4);
        assert_eq!(copy.wire_bits(), 64 * 4);
        assert_eq!(sealed.wire_bits(), 64 * 4);
        assert_eq!(SIZE_CALLS.load(Ordering::SeqCst) - before, 1);
    }

    #[test]
    fn debug_matches_the_payload_exactly() {
        let payload = Counted(vec![9, 8]);
        let sealed = Sealed::new(payload.clone());
        assert_eq!(format!("{sealed:?}"), format!("{payload:?}"));
        assert_eq!(format!("{sealed:#?}"), format!("{payload:#?}"));
        assert_eq!(sealed.rendered(), format!("{payload:?}"));
    }

    #[test]
    fn into_inner_moves_when_unique_and_clones_when_shared() {
        let unique = Sealed::new(Counted(vec![1]));
        assert_eq!(unique.into_inner(), Counted(vec![1]));
        let shared = Sealed::new(Counted(vec![2]));
        let copy = shared.clone();
        assert_eq!(shared.into_inner(), Counted(vec![2]));
        assert_eq!(copy.into_inner(), Counted(vec![2]));
    }

    #[test]
    fn deref_exposes_the_payload_api() {
        let sealed = Sealed::new(Counted(vec![1, 2]));
        assert_eq!(sealed.0.len(), 2);
    }
}
