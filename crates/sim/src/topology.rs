//! Full-mesh topology with per-process local link labelling.
//!
//! Process `p`'s links are labelled `1 ⋯ N`; label `N` is always the
//! self-loop (paper, Section II). The mapping from labels to peers is a
//! per-process permutation: *locally* meaningful, *globally* meaningless.
//! [`Topology::seeded`] draws independent random permutations so that any
//! protocol that smuggles identity information through labels breaks
//! deterministically in tests.

use opr_types::{LinkId, ProcessIndex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The full mesh with each process's local link labelling.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    /// `peer_of[p][l-1]` = process reached from `p` via link label `l`.
    peer_of: Vec<Vec<ProcessIndex>>,
    /// `label_of[receiver][sender]` = label the receiver's side gives to the
    /// link from `sender`.
    label_of: Vec<Vec<LinkId>>,
}

impl Topology {
    /// A topology whose labellings are independent seeded permutations of
    /// the peers (self-loop fixed at label `N`).
    pub fn seeded(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "topology needs at least one process");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x746f_706f_6c6f_6779);
        let mut peer_of = Vec::with_capacity(n);
        for p in 0..n {
            let mut peers: Vec<ProcessIndex> =
                (0..n).filter(|&q| q != p).map(ProcessIndex::new).collect();
            peers.shuffle(&mut rng);
            peers.push(ProcessIndex::new(p)); // label N: self-loop
            peer_of.push(peers);
        }
        Self::from_peer_table(n, peer_of)
    }

    /// A topology where process `p`'s label for peer `q` follows a fixed
    /// arithmetic pattern — convenient for hand-written unit tests.
    pub fn canonical(n: usize) -> Self {
        assert!(n >= 1, "topology needs at least one process");
        let mut peer_of = Vec::with_capacity(n);
        for p in 0..n {
            let mut peers: Vec<ProcessIndex> =
                (1..n).map(|off| ProcessIndex::new((p + off) % n)).collect();
            peers.push(ProcessIndex::new(p));
            peer_of.push(peers);
        }
        Self::from_peer_table(n, peer_of)
    }

    fn from_peer_table(n: usize, peer_of: Vec<Vec<ProcessIndex>>) -> Self {
        let mut label_of = vec![vec![LinkId::new(1); n]; n];
        for (r, peers) in peer_of.iter().enumerate() {
            debug_assert_eq!(peers.len(), n);
            debug_assert_eq!(peers[n - 1].index(), r, "label N must be the self-loop");
            for (idx, peer) in peers.iter().enumerate() {
                // Receiver r sees messages from `peer` on r's link idx+1:
                // the incoming label is defined by the receiver's own table.
                label_of[r][peer.index()] = LinkId::new(idx + 1);
            }
        }
        Topology {
            n,
            peer_of,
            label_of,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The process reached from `sender` via local link label `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link.label() > N` or `sender` is out of range.
    pub fn peer(&self, sender: ProcessIndex, link: LinkId) -> ProcessIndex {
        self.peer_of[sender.index()][link.index()]
    }

    /// The label `receiver` gives to its link from `sender` (the label the
    /// receiver observes when `sender`'s message arrives).
    pub fn incoming_label(&self, receiver: ProcessIndex, sender: ProcessIndex) -> LinkId {
        self.label_of[receiver.index()][sender.index()]
    }

    /// All `(link, peer)` pairs for `sender`, in label order — what a
    /// broadcast fans out to.
    pub fn links_of(
        &self,
        sender: ProcessIndex,
    ) -> impl Iterator<Item = (LinkId, ProcessIndex)> + '_ {
        self.peer_of[sender.index()]
            .iter()
            .enumerate()
            .map(|(idx, peer)| (LinkId::new(idx + 1), *peer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn check_wellformed(topo: &Topology) {
        let n = topo.n();
        for p in 0..n {
            let p = ProcessIndex::new(p);
            // Label N is the self-loop.
            assert_eq!(topo.peer(p, LinkId::new(n)), p);
            // Labels 1..N-1 hit each other process exactly once.
            let peers: BTreeSet<usize> = (1..n)
                .map(|l| topo.peer(p, LinkId::new(l)).index())
                .collect();
            assert_eq!(peers.len(), n - 1);
            assert!(!peers.contains(&p.index()));
            // incoming_label is the inverse of peer.
            for l in 1..=n {
                let link = LinkId::new(l);
                let q = topo.peer(p, link);
                assert_eq!(topo.incoming_label(p, q), link, "inverse at p={p:?} l={l}");
            }
        }
    }

    #[test]
    fn canonical_topology_is_wellformed() {
        for n in 1..=8 {
            check_wellformed(&Topology::canonical(n));
        }
    }

    #[test]
    fn seeded_topology_is_wellformed() {
        for seed in 0..5 {
            check_wellformed(&Topology::seeded(7, seed));
        }
    }

    #[test]
    fn seeded_topology_is_deterministic() {
        let a = Topology::seeded(6, 99);
        let b = Topology::seeded(6, 99);
        for p in 0..6 {
            for l in 1..=6 {
                assert_eq!(
                    a.peer(ProcessIndex::new(p), LinkId::new(l)),
                    b.peer(ProcessIndex::new(p), LinkId::new(l))
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_labellings() {
        let a = Topology::seeded(16, 1);
        let b = Topology::seeded(16, 2);
        let mut differs = false;
        for p in 0..16 {
            for l in 1..16 {
                if a.peer(ProcessIndex::new(p), LinkId::new(l))
                    != b.peer(ProcessIndex::new(p), LinkId::new(l))
                {
                    differs = true;
                }
            }
        }
        assert!(differs, "seeds should shuffle labels differently");
    }

    #[test]
    fn labels_are_local_not_global() {
        // In the seeded topology there exist p, q where p's label for q
        // differs from q's label for p — labels carry no global identity.
        let topo = Topology::seeded(10, 3);
        let asymmetric = (0..10).any(|p| {
            (0..10).any(|q| {
                p != q
                    && topo.incoming_label(ProcessIndex::new(p), ProcessIndex::new(q))
                        != topo.incoming_label(ProcessIndex::new(q), ProcessIndex::new(p))
            })
        });
        assert!(asymmetric);
    }

    #[test]
    fn links_of_enumerates_all_labels() {
        let topo = Topology::canonical(5);
        let links: Vec<_> = topo.links_of(ProcessIndex::new(2)).collect();
        assert_eq!(links.len(), 5);
        assert_eq!(links[4].0, LinkId::new(5));
        assert_eq!(links[4].1, ProcessIndex::new(2));
    }

    #[test]
    fn single_process_topology() {
        let topo = Topology::canonical(1);
        assert_eq!(
            topo.peer(ProcessIndex::new(0), LinkId::new(1)),
            ProcessIndex::new(0)
        );
    }
}
