//! The protocol interface: what a process does each synchronous round.

use crate::sealed::Sealed;
use opr_types::{LinkId, Round};

/// What a process emits in one round.
///
/// Correct protocol code uses [`Outbox::Broadcast`] (the paper's algorithms
/// are all full-information broadcasts) or [`Outbox::Silent`]. Byzantine
/// strategies additionally use [`Outbox::Multicast`] to equivocate — sending
/// different messages on different links — or to address only a subset of
/// links.
#[derive(Clone, Debug)]
pub enum Outbox<M> {
    /// Send nothing this round.
    Silent,
    /// Send the same message on every link, including the self-loop.
    Broadcast(M),
    /// Send per-link messages; at most one per link (the model allows one
    /// message per link per round). Links absent from the list receive
    /// nothing.
    Multicast(Vec<(LinkId, M)>),
}

impl<M> Outbox<M> {
    /// Number of links this outbox addresses in a system of `n` processes.
    pub fn fanout(&self, n: usize) -> usize {
        match self {
            Outbox::Silent => 0,
            Outbox::Broadcast(_) => n,
            Outbox::Multicast(entries) => entries.len(),
        }
    }
}

/// The messages delivered to a process at the end of one round, each tagged
/// with the local label of the link it arrived on.
///
/// Payloads are stored [`Sealed`]: a broadcast delivers the *same*
/// allocation to every receiver, so holding an inbox costs refcounts, not
/// copies. The borrowing accessors ([`messages`](Inbox::messages),
/// [`from_link`](Inbox::from_link),
/// [`count_links_where`](Inbox::count_links_where)) hand out `&M` straight
/// from the shared payload; [`into_messages`](Inbox::into_messages) clones
/// owned copies out only when a consumer really needs ownership.
///
/// `Inbox` provides the counting idioms the paper's pseudo-code uses
/// ("received from at least `N − t` distinct links").
#[derive(Clone, Debug)]
pub struct Inbox<M> {
    entries: Vec<(LinkId, Sealed<M>)>,
}

impl<M> Inbox<M> {
    /// Builds an inbox from owned `(link, message)` pairs, sealing each
    /// payload individually. The engines use
    /// [`from_sealed`](Inbox::from_sealed) instead so broadcast payloads
    /// stay shared; this constructor is for tests and hand-built inboxes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the same link delivers twice — the model
    /// allows one message per link per round, and the network enforces it.
    pub fn new(entries: Vec<(LinkId, M)>) -> Self {
        debug_assert!(
            entries
                .iter()
                .enumerate()
                .all(|(i, (l, _))| entries[i + 1..].iter().all(|(l2, _)| l2 != l)),
            "a link delivered more than one message in a round"
        );
        Inbox {
            entries: entries
                .into_iter()
                .map(|(l, m)| (l, Sealed::new(m)))
                .collect(),
        }
    }

    /// Builds an inbox from already-sealed pairs in **ascending label
    /// order** — the zero-copy path the engines use after their canonical
    /// per-round sort. Shared broadcast payloads stay shared.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the entries are not strictly ascending
    /// by label — unsorted input or a link delivering twice.
    pub fn from_sealed(entries: Vec<(LinkId, Sealed<M>)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "a link delivered more than one message in a round \
             (or entries were not label-sorted)"
        );
        Inbox { entries }
    }

    /// An empty inbox.
    pub fn empty() -> Self {
        Inbox {
            entries: Vec::new(),
        }
    }

    /// Iterates over `(link, message)` pairs, borrowing payloads from the
    /// shared allocations.
    pub fn messages(&self) -> impl Iterator<Item = (LinkId, &M)> {
        self.entries.iter().map(|(l, m)| (*l, m.get()))
    }

    /// Iterates over the sealed `(link, payload)` pairs — for consumers
    /// that want to keep sharing the allocation (a refcount bump per kept
    /// message instead of a clone).
    pub fn sealed_messages(&self) -> impl Iterator<Item = (LinkId, &Sealed<M>)> {
        self.entries.iter().map(|(l, m)| (*l, m))
    }

    /// Consumes the inbox, yielding owned `(link, message)` pairs. Payloads
    /// still shared with other receivers (broadcasts) are cloned out;
    /// prefer [`messages`](Inbox::messages) and cloning only what you keep.
    pub fn into_messages(self) -> impl Iterator<Item = (LinkId, M)>
    where
        M: Clone,
    {
        self.entries.into_iter().map(|(l, m)| (l, m.into_inner()))
    }

    /// The number of links that delivered anything.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing arrived.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counts distinct links whose message satisfies `pred` — the paper's
    /// "received ⟨X⟩ from at least k distinct links" idiom. Links are unique
    /// per round by construction, so this is a plain filter-count.
    pub fn count_links_where<F>(&self, mut pred: F) -> usize
    where
        F: FnMut(&M) -> bool,
    {
        self.entries.iter().filter(|(_, m)| pred(m)).count()
    }

    /// The message delivered on `link`, if any.
    pub fn from_link(&self, link: LinkId) -> Option<&M> {
        self.entries
            .iter()
            .find(|(l, _)| *l == link)
            .map(|(_, m)| m.get())
    }
}

impl<M> FromIterator<(LinkId, M)> for Inbox<M> {
    fn from_iter<I: IntoIterator<Item = (LinkId, M)>>(iter: I) -> Self {
        Inbox::new(iter.into_iter().collect())
    }
}

impl<M> FromIterator<(LinkId, Sealed<M>)> for Inbox<M> {
    fn from_iter<I: IntoIterator<Item = (LinkId, Sealed<M>)>>(iter: I) -> Self {
        let mut entries: Vec<(LinkId, Sealed<M>)> = iter.into_iter().collect();
        entries.sort_by_key(|(l, _)| *l);
        Inbox::from_sealed(entries)
    }
}

/// A process in the synchronous model.
///
/// Each round `r`, the network first calls [`Actor::send`] on every process,
/// then routes, then calls [`Actor::deliver`] on every process with the full
/// inbox of round `r`. State transitions therefore happen in lock-step, as
/// the model requires. [`Actor::output`] is polled after each round; a run
/// completes once every *correct* actor reports `Some`.
///
/// Actors are `Send` so execution substrates may place each process on its
/// own OS thread (`opr-transport`'s threaded backend); the deterministic
/// simulator does not otherwise rely on it.
pub trait Actor: Send {
    /// Message vocabulary of the protocol.
    type Msg;
    /// The value a process decides.
    type Output;

    /// Produce this round's messages. Called exactly once per round, before
    /// any delivery of that round.
    fn send(&mut self, round: Round) -> Outbox<Self::Msg>;

    /// Consume this round's inbox. Called exactly once per round, after all
    /// sends of that round.
    fn deliver(&mut self, round: Round, inbox: Inbox<Self::Msg>);

    /// The decided value, once available. Must be stable: after returning
    /// `Some(v)`, keep returning `Some(v)`.
    fn output(&self) -> Option<Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lnk(l: usize) -> LinkId {
        LinkId::new(l)
    }

    #[test]
    fn outbox_fanout() {
        assert_eq!(Outbox::<u8>::Silent.fanout(5), 0);
        assert_eq!(Outbox::Broadcast(1u8).fanout(5), 5);
        assert_eq!(
            Outbox::Multicast(vec![(lnk(1), 1u8), (lnk(3), 2u8)]).fanout(5),
            2
        );
    }

    #[test]
    fn inbox_counting_idiom() {
        let inbox = Inbox::new(vec![(lnk(1), 10), (lnk(2), 10), (lnk(3), 20)]);
        assert_eq!(inbox.count_links_where(|m| *m == 10), 2);
        assert_eq!(inbox.count_links_where(|m| *m == 20), 1);
        assert_eq!(inbox.count_links_where(|m| *m == 99), 0);
        assert_eq!(inbox.len(), 3);
        assert!(!inbox.is_empty());
    }

    #[test]
    fn inbox_from_link_lookup() {
        let inbox = Inbox::new(vec![(lnk(2), 7u32)]);
        assert_eq!(inbox.from_link(lnk(2)), Some(&7));
        assert_eq!(inbox.from_link(lnk(1)), None);
    }

    #[test]
    #[should_panic(expected = "more than one message")]
    #[cfg(debug_assertions)]
    fn inbox_rejects_duplicate_links() {
        let _ = Inbox::new(vec![(lnk(1), 1), (lnk(1), 2)]);
    }

    #[test]
    #[should_panic(expected = "more than one message")]
    #[cfg(debug_assertions)]
    fn sealed_inbox_rejects_duplicate_links() {
        let _ = Inbox::from_sealed(vec![(lnk(1), Sealed::new(1)), (lnk(1), Sealed::new(2))]);
    }

    #[test]
    fn sealed_inbox_shares_broadcast_payloads() {
        let payload = Sealed::new(42u64);
        let inbox = Inbox::from_sealed(vec![(lnk(1), payload.clone()), (lnk(2), payload.clone())]);
        let borrowed: Vec<&u64> = inbox.sealed_messages().map(|(_, s)| s.get()).collect();
        // Both entries borrow the same allocation — the broadcast fan-out
        // really is zero-copy end to end.
        assert!(std::ptr::eq(borrowed[0], borrowed[1]));
        assert!(std::ptr::eq(borrowed[0], payload.get()));
        assert_eq!(inbox.from_link(lnk(2)), Some(&42));
    }

    #[test]
    fn inbox_collects_from_iterator() {
        let inbox: Inbox<u8> = vec![(lnk(1), 1u8), (lnk(2), 2u8)].into_iter().collect();
        assert_eq!(inbox.len(), 2);
        let owned: Vec<(LinkId, u8)> = inbox.into_messages().collect();
        assert_eq!(owned.len(), 2);
    }

    #[test]
    fn empty_inbox() {
        let inbox = Inbox::<u8>::empty();
        assert!(inbox.is_empty());
        assert_eq!(inbox.len(), 0);
    }
}
