#![warn(missing_docs)]
//! Synchronous full-mesh network simulator — the substrate every protocol in
//! this workspace runs on.
//!
//! # The model (paper, Section II)
//!
//! * `N` processes in a fully-connected synchronous network; computation
//!   proceeds in lock-step *rounds* (communication steps).
//! * Each process's links are labelled `1 ⋯ N` **locally**; link `N` is a
//!   self-loop. A receiver knows the label of the link a message arrived on,
//!   but labels are *not* globally consistent — process `p`'s label for `q`
//!   is unrelated to `q`'s label for `p`. The simulator assigns labels from a
//!   seeded permutation so protocols that accidentally rely on labels as
//!   global identities fail loudly in tests.
//! * Channels are reliable: every message sent in round `r` is delivered in
//!   round `r`.
//! * Byzantine processes can send *different* messages on different links
//!   ([`Outbox::Multicast`]) or stay silent; they cannot forge link-of-origin
//!   (the network routes every message along a real link) and cannot break
//!   synchrony.
//!
//! # Pieces
//!
//! * [`Actor`] — the protocol interface: `send` then `deliver` per round.
//! * [`Topology`] — per-process link labelling over the full mesh.
//! * [`Network`] — the lock-step engine with metrics.
//! * [`Sealed`] — shared, immutable message payloads: broadcasts are sealed
//!   once and fanned out as refcount bumps, never per-link deep copies.
//! * [`RunMetrics`] — rounds, message and bit counters per round, used by the
//!   message-complexity experiment (T3).
//! * [`WireSize`] — model-level message size accounting in bits.
//!
//! # Example: three processes flooding their ids
//!
//! ```
//! use opr_sim::{Actor, Inbox, Network, Outbox, Topology, WireSize};
//! use opr_types::Round;
//!
//! #[derive(Clone, Debug)]
//! struct Flood(u64);
//! impl WireSize for Flood {
//!     fn wire_bits(&self) -> u64 { 64 }
//! }
//!
//! struct Proc { my: u64, seen: Vec<u64> }
//! impl Actor for Proc {
//!     type Msg = Flood;
//!     type Output = Vec<u64>;
//!     fn send(&mut self, _round: Round) -> Outbox<Flood> {
//!         Outbox::Broadcast(Flood(self.my))
//!     }
//!     fn deliver(&mut self, _round: Round, inbox: Inbox<Flood>) {
//!         self.seen = inbox.messages().map(|(_, m)| m.0).collect();
//!         self.seen.sort_unstable();
//!     }
//!     fn output(&self) -> Option<Vec<u64>> {
//!         (!self.seen.is_empty()).then(|| self.seen.clone())
//!     }
//! }
//!
//! let actors: Vec<Box<dyn Actor<Msg = Flood, Output = Vec<u64>>>> = vec![
//!     Box::new(Proc { my: 10, seen: vec![] }),
//!     Box::new(Proc { my: 20, seen: vec![] }),
//!     Box::new(Proc { my: 30, seen: vec![] }),
//! ];
//! let mut net = Network::new(actors, Topology::seeded(3, 7));
//! let report = net.run(1);
//! assert_eq!(report.rounds_executed, 1);
//! assert_eq!(net.output_of(0), Some(vec![10, 20, 30]));
//! ```

pub mod actor;
pub mod metrics;
pub mod network;
pub mod sealed;
pub mod topology;
pub mod trace;
pub mod wire;

pub use actor::{Actor, Inbox, Outbox};
pub use metrics::{RoundMetrics, RunMetrics};
pub use network::{DeliveryFilter, Network, RunReport};
pub use sealed::Sealed;
pub use topology::Topology;
pub use trace::{Trace, TraceEvent, TraceMode};
pub use wire::{WireSize, COUNT_BITS, ID_BITS, RANK_BITS, TAG_BITS};
