//! Model-level wire-size accounting.
//!
//! The paper states message sizes in bits as functions of `log N_max` and
//! `log N` (Sections IV-D and VI-B). To report comparable numbers without
//! tying results to a particular serializer, every message type implements
//! [`WireSize`] and computes its size from the same model quantities.

/// Bits to encode one original id: `⌈log₂ N_max⌉` for the default namespace
/// `N_max = 2⁴⁸`.
pub const ID_BITS: u64 = 48;

/// Bits to encode one rank value (an IEEE-754 double).
pub const RANK_BITS: u64 = 64;

/// Bits for a message-type tag.
pub const TAG_BITS: u64 = 4;

/// Bits for a length prefix of a collection.
pub const COUNT_BITS: u64 = 16;

/// Types that know their size on the wire, in bits.
///
/// Implementations should be *model-accurate*: charge [`ID_BITS`] per id,
/// [`RANK_BITS`] per rank, [`TAG_BITS`] per tag and [`COUNT_BITS`] per
/// collection, rather than `size_of` (which reflects Rust layout, not the
/// protocol).
pub trait WireSize {
    /// Size of this message on the wire, in bits.
    fn wire_bits(&self) -> u64;
}

impl WireSize for () {
    fn wire_bits(&self) -> u64 {
        TAG_BITS
    }
}

impl WireSize for opr_types::OriginalId {
    fn wire_bits(&self) -> u64 {
        ID_BITS
    }
}

impl WireSize for opr_types::Rank {
    fn wire_bits(&self) -> u64 {
        RANK_BITS
    }
}

impl WireSize for opr_types::NewName {
    fn wire_bits(&self) -> u64 {
        RANK_BITS
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bits(&self) -> u64 {
        self.0.wire_bits() + self.1.wire_bits()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bits(&self) -> u64 {
        1 + self.as_ref().map_or(0, WireSize::wire_bits)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bits(&self) -> u64 {
        COUNT_BITS + self.iter().map(WireSize::wire_bits).sum::<u64>()
    }
}

/// Size of a set of `k` original ids: tag + count + `k` ids.
pub fn id_set_bits(k: usize) -> u64 {
    TAG_BITS + COUNT_BITS + k as u64 * ID_BITS
}

/// Size of a vector of `k` `(id, rank)` entries: tag + count + `k` pairs.
pub fn rank_vector_bits(k: usize) -> u64 {
    TAG_BITS + COUNT_BITS + k as u64 * (ID_BITS + RANK_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_set_scales_linearly() {
        let base = id_set_bits(0);
        assert_eq!(id_set_bits(10) - base, 10 * ID_BITS);
    }

    #[test]
    fn rank_vector_charges_both_fields() {
        let one = rank_vector_bits(1) - rank_vector_bits(0);
        assert_eq!(one, ID_BITS + RANK_BITS);
    }

    #[test]
    fn option_and_vec_impls() {
        assert_eq!(().wire_bits(), TAG_BITS);
        assert_eq!(Some(()).wire_bits(), 1 + TAG_BITS);
        assert_eq!(None::<()>.wire_bits(), 1);
        let v = vec![(), (), ()];
        assert_eq!(v.wire_bits(), COUNT_BITS + 3 * TAG_BITS);
    }

    #[test]
    fn paper_message_size_bound_alg1() {
        // Alg.1 messages carry at most N+t−1 (id, rank) pairs; the paper
        // bounds this by O((N+t−1)(log Nmax + log N)). Our accounting is
        // within a constant factor of that.
        let (n, t) = (100u64, 33u64);
        let entries = (n + t - 1) as usize;
        let bits = rank_vector_bits(entries);
        let paper_order = (n + t - 1) * (ID_BITS + RANK_BITS);
        assert!(bits >= paper_order);
        assert!(bits <= paper_order + TAG_BITS + COUNT_BITS);
    }
}
