//! Flight recorder: a bounded ring of recent epoch summaries, dumped when an
//! oracle trips or a worker panics so the operator sees the run-up, not just
//! the crash frame.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One epoch's worth of service health, cheap enough to record always-on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochSummary {
    pub epoch: u64,
    pub grants: u64,
    pub releases: u64,
    pub deferred: u64,
    pub recycled: u64,
    pub queue_depth: u64,
    pub backlog: u64,
    pub free_names: u64,
    pub live_names: u64,
    pub protocol_runs: u64,
    pub latency_micros: u64,
}

/// Fixed-capacity ring of the last K [`EpochSummary`] records.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<EpochSummary>,
    dropped: u64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ring: VecDeque::with_capacity(capacity.max(1)),
            dropped: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn push(&mut self, summary: EpochSummary) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(summary);
    }

    /// Oldest-first view of the retained summaries.
    pub fn summaries(&self) -> Vec<EpochSummary> {
        self.ring.iter().cloned().collect()
    }

    /// Count of summaries that aged out of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the ring as a fixed-width table headed by `reason`.
    pub fn render(&self, reason: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "flight recorder dump ({reason}): last {} of {} epochs\n",
            self.ring.len(),
            self.ring.len() as u64 + self.dropped,
        ));
        out.push_str(
            "  epoch   grants releases deferred recycled  queue backlog   free   live   runs  lat_us\n",
        );
        for s in &self.ring {
            out.push_str(&format!(
                "  {:>5} {:>8} {:>8} {:>8} {:>8} {:>6} {:>7} {:>6} {:>6} {:>6} {:>7}\n",
                s.epoch,
                s.grants,
                s.releases,
                s.deferred,
                s.recycled,
                s.queue_depth,
                s.backlog,
                s.free_names,
                s.live_names,
                s.protocol_runs,
                s.latency_micros,
            ));
        }
        out
    }
}

/// Shared handle: the service engine pushes, the driver/bin dumps.
pub type SharedFlightRecorder = Arc<Mutex<FlightRecorder>>;

pub fn shared_flight_recorder(capacity: usize) -> SharedFlightRecorder {
    Arc::new(Mutex::new(FlightRecorder::new(capacity)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_last_k() {
        let mut fr = FlightRecorder::new(4);
        for epoch in 0..10 {
            fr.push(EpochSummary {
                epoch,
                ..Default::default()
            });
        }
        let kept: Vec<u64> = fr.summaries().iter().map(|s| s.epoch).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert_eq!(fr.dropped(), 6);
        let dump = fr.render("test");
        assert!(dump.contains("last 4 of 10 epochs"));
        assert!(dump.lines().count() == 2 + 4);
    }
}
