//! Power-of-two log-bucketed histogram support.
//!
//! Bucket `k` holds values `v` with `v <= 2^k` (and `v > 2^(k-1)` for `k > 0`),
//! so upper bounds run 1, 2, 4, 8, ... 2^63, with one final overflow bucket for
//! values above `2^63`. Index computation is a single `leading_zeros`, cheap
//! enough for the hot path.

/// Number of buckets: upper bounds `2^0 ..= 2^63` plus one overflow bucket.
pub const BUCKETS: usize = 65;

/// Index of the overflow bucket (`le = +Inf`).
pub const OVERFLOW_BUCKET: usize = BUCKETS - 1;

/// Return the bucket index for a recorded value.
///
/// `0` and `1` land in bucket 0 (`le = 1`); otherwise the value lands in the
/// smallest bucket whose upper bound `2^k` is `>= v`. Values above `2^63` land
/// in the overflow bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        64 - (value - 1).leading_zeros() as usize
    }
}

/// Upper bound of bucket `k` as a label string (`"+Inf"` for the overflow bucket).
pub fn bucket_bound_label(k: usize) -> String {
    if k >= OVERFLOW_BUCKET {
        "+Inf".to_string()
    } else {
        (1u128 << k).to_string()
    }
}

/// An immutable, mergeable histogram: per-bucket counts plus total count and sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (used to build deterministic snapshots directly).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Fold another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Approximate quantile: upper bound of the bucket holding rank `q * count`.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if k >= OVERFLOW_BUCKET {
                    u64::MAX
                } else {
                    1u64 << k
                };
            }
        }
        u64::MAX
    }

    /// Index of the highest non-empty bucket, if any observation was recorded.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(9), 4);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(1u64 << 63), 63);
        assert_eq!(bucket_index((1u64 << 63) + 1), OVERFLOW_BUCKET);
        assert_eq!(bucket_index(u64::MAX), OVERFLOW_BUCKET);
    }

    #[test]
    fn record_and_merge_agree_with_direct_counts() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        for v in [0, 1, 2, 3, 100, 5000] {
            a.record(v);
        }
        for v in [7, 7, 7] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count, 9);
        assert_eq!(a.sum, 1 + 2 + 3 + 100 + 5000 + 21);
        assert_eq!(a.buckets[3], 3); // (4, 8] holds 7, 7, 7
        assert_eq!(a.buckets[0], 2); // 0 and 1
    }

    #[test]
    fn quantiles_are_bucket_bounds() {
        let mut h = HistogramSnapshot::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_bound(0.5), 64); // rank 50 falls in (32, 64]
        assert_eq!(h.quantile_bound(1.0), 128);
        assert_eq!(h.max_bucket(), Some(7));
    }
}
