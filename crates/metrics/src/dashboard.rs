//! Compact ANSI terminal dashboard for a metrics snapshot.
//!
//! One screenful: counters and gauges in two columns, histograms as a
//! p50/p95/max line plus a log-scale sparkline over non-empty buckets.
//! Colour is plain ANSI (no terminfo); pass `color = false` for log files.

use crate::hist::HistogramSnapshot;
use crate::snapshot::MetricsSnapshot;

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(hist: &HistogramSnapshot) -> String {
    let top = match hist.max_bucket() {
        Some(t) => t,
        None => return String::new(),
    };
    let lo = hist.buckets[..=top]
        .iter()
        .position(|&c| c > 0)
        .unwrap_or(0);
    let max = hist.buckets[lo..=top]
        .iter()
        .copied()
        .max()
        .max(Some(1))
        .unwrap();
    hist.buckets[lo..=top]
        .iter()
        .map(|&c| {
            if c == 0 {
                ' '
            } else {
                BARS[((c * (BARS.len() as u64 - 1)) / max) as usize]
            }
        })
        .collect()
}

fn paint(s: &str, code: &str, color: bool) -> String {
    if color {
        format!("\x1b[{code}m{s}\x1b[0m")
    } else {
        s.to_string()
    }
}

/// Render the snapshot as a compact dashboard. `title` heads the block.
pub fn render_dashboard(title: &str, snap: &MetricsSnapshot, color: bool) -> String {
    let mut out = String::new();
    out.push_str(&paint(&format!("── {title} "), "1;36", color));
    out.push_str(&"─".repeat(40usize.saturating_sub(title.len().min(40))));
    out.push('\n');

    if !snap.counters.is_empty() {
        out.push_str(&paint("counters", "1", color));
        out.push('\n');
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<44} {v:>12}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str(&paint("gauges", "1", color));
        out.push('\n');
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<44} {v:>12}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str(&paint("histograms", "1", color));
        out.push('\n');
        for (name, h) in &snap.histograms {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            out.push_str(&format!(
                "  {name:<32} n={:<8} mean≈{:<10} p50≤{:<10} p95≤{:<10} {}\n",
                h.count,
                mean,
                h.quantile_bound(0.50),
                h.quantile_bound(0.95),
                paint(&sparkline(h), "32", color),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dashboard_mentions_every_metric() {
        let mut s = MetricsSnapshot::new();
        s.add_counter("c_total", 7);
        s.set_gauge("depth", 3);
        for v in [1u64, 2, 2, 9, 300] {
            s.record("lat_us", v);
        }
        let plain = render_dashboard("svc", &s, false);
        assert!(plain.contains("c_total"));
        assert!(plain.contains("depth"));
        assert!(plain.contains("lat_us"));
        assert!(!plain.contains('\x1b'));
        let ansi = render_dashboard("svc", &s, true);
        assert!(ansi.contains('\x1b'));
    }
}
