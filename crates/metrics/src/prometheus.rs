//! Hand-rolled Prometheus text exposition (format 0.0.4).
//!
//! Output is byte-stable for a given snapshot: metrics render in lexicographic
//! name order (the snapshot's `BTreeMap` order), `# TYPE` lines appear once
//! per base name, histogram buckets are cumulative with power-of-two `le`
//! bounds, and labels keep the order they were embedded with.

use crate::hist::bucket_bound_label;
use crate::snapshot::{split_labels, MetricsSnapshot};

fn push_type_line(out: &mut String, seen: &mut Option<String>, base: &str, kind: &str) {
    if seen.as_deref() != Some(base) {
        out.push_str("# TYPE ");
        out.push_str(base);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        *seen = Some(base.to_string());
    }
}

/// Render a snapshot as Prometheus text exposition.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen: Option<String> = None;

    for (name, value) in &snap.counters {
        let (base, _) = split_labels(name);
        push_type_line(&mut out, &mut seen, base, "counter");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }

    seen = None;
    for (name, value) in &snap.gauges {
        let (base, _) = split_labels(name);
        push_type_line(&mut out, &mut seen, base, "gauge");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }

    seen = None;
    for (name, hist) in &snap.histograms {
        let (base, labels) = split_labels(name);
        push_type_line(&mut out, &mut seen, base, "histogram");
        let inner = labels.trim_start_matches('{').trim_end_matches('}');
        let mut cumulative = 0u64;
        let top = hist.max_bucket().unwrap_or(0);
        for k in 0..=top {
            cumulative += hist.buckets[k];
            out.push_str(base);
            out.push_str("_bucket{");
            if !inner.is_empty() {
                out.push_str(inner);
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(&bucket_bound_label(k));
            out.push_str("\"} ");
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
        out.push_str(base);
        out.push_str("_bucket{");
        if !inner.is_empty() {
            out.push_str(inner);
            out.push(',');
        }
        out.push_str("le=\"+Inf\"} ");
        out.push_str(&hist.count.to_string());
        out.push('\n');
        out.push_str(base);
        out.push_str("_sum");
        out.push_str(labels);
        out.push(' ');
        out.push_str(&hist.sum.to_string());
        out.push('\n');
        out.push_str(base);
        out.push_str("_count");
        out.push_str(labels);
        out.push(' ');
        out.push_str(&hist.count.to_string());
        out.push('\n');
    }

    out
}

/// Cheap structural validation of an exposition document: every non-comment,
/// non-empty line must be `name[{labels}] <integer>`. Returns the first bad
/// line on failure. Used by tests and the `--metrics` smoke path.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value separator: {line}"))?;
        if value.parse::<i128>().is_err() {
            return Err(format!("non-integer value: {line}"));
        }
        let base = match name.find('{') {
            Some(i) => {
                if !name.ends_with('}') {
                    return Err(format!("unterminated label block: {line}"));
                }
                &name[..i]
            }
            None => name,
        };
        if base.is_empty()
            || !base
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("bad metric name: {line}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_histograms() {
        let mut s = MetricsSnapshot::new();
        s.add_counter("a_total", 3);
        s.add_counter("a_total{shard=\"1\"}", 2);
        s.set_gauge("depth", -4);
        s.record("lat", 1);
        s.record("lat", 3);
        s.record("lat", 3);
        let text = render_prometheus(&s);
        assert!(text.contains("# TYPE a_total counter\n"));
        assert!(text.contains("a_total 3\n"));
        assert!(text.contains("a_total{shard=\"1\"} 2\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth -4\n"));
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_sum 7\n"));
        assert!(text.contains("lat_count 3\n"));
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn type_line_emitted_once_per_base() {
        let mut s = MetricsSnapshot::new();
        s.add_counter("x_total{shard=\"0\"}", 1);
        s.add_counter("x_total{shard=\"1\"}", 1);
        let text = render_prometheus(&s);
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1);
    }

    #[test]
    fn validation_rejects_garbage() {
        assert!(validate_prometheus("ok_total 3\n").is_ok());
        assert!(validate_prometheus("bad line here\n").is_err());
        assert!(validate_prometheus("name{oops 3\n").is_err());
    }
}
