//! # opr-metrics — always-on aggregates for the renaming stack
//!
//! A std-only metrics layer with two strictly separate planes, extending the
//! PR-5 observability discipline:
//!
//! * **Deterministic plane** — protocol facts (messages, wire bits, quorum
//!   crossings, grants, recycled names, oracle margins) derived from run
//!   artefacts into a [`MetricsSnapshot`]. Bit-identical across the Sim,
//!   Threaded, and Pooled backends and any `--jobs` value; safe to pin in
//!   goldens and equivalence suites.
//! * **Wall-clock plane** — latencies and queue waits recorded live through a
//!   [`MetricsRegistry`] of sharded atomic cells. Never enters goldens or
//!   cross-backend equality checks.
//!
//! The hot path is one relaxed `fetch_add`; with no registry attached the
//! instrumented code pays nothing (alloc-bracket gated in `opr-bench`).
//! Renderers: [`render_prometheus`] (stable text exposition) and
//! [`render_dashboard`] (compact ANSI). A [`FlightRecorder`] ring retains the
//! last K epoch summaries for post-mortem dumps on oracle violations.

mod dashboard;
mod flight;
mod hist;
mod prometheus;
mod registry;
mod snapshot;

pub use dashboard::render_dashboard;
pub use flight::{shared_flight_recorder, EpochSummary, FlightRecorder, SharedFlightRecorder};
pub use hist::{bucket_bound_label, bucket_index, HistogramSnapshot, BUCKETS, OVERFLOW_BUCKET};
pub use prometheus::{render_prometheus, validate_prometheus};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, SHARDS};
pub use snapshot::{labeled, split_labels, MetricsSnapshot};
