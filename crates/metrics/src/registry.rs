//! Live, thread-safe metric registry.
//!
//! Handles (`Counter`, `Gauge`, `Histogram`) are cheap `Arc` clones whose hot
//! path is a single relaxed `fetch_add` on a per-worker shard — no locks, no
//! allocation, no false sharing (shards are cache-line padded). Shards merge
//! lazily at [`MetricsRegistry::snapshot`] time. When no registry is attached
//! anywhere (the `Option<MetricsRegistry>` is `None`), instrumented code pays
//! literally nothing — the bench suite gates this with alloc bracketing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{bucket_index, HistogramSnapshot, BUCKETS};
use crate::snapshot::MetricsSnapshot;

/// Number of shards per metric. Power of two; eight covers the worker counts
/// the `RunPool` actually spawns while keeping snapshot merges trivial.
pub const SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a round-robin shard assignment on first use; all its
    /// metric writes land on that shard, so two workers never contend on the
    /// same cache line.
    static THREAD_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// A `u64` cell padded to a cache line so neighbouring shards never share one.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

struct CounterCells {
    shards: [PaddedU64; SHARDS],
}

impl CounterCells {
    fn new() -> Self {
        Self {
            shards: Default::default(),
        }
    }

    fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Monotonic counter handle. `add` is one relaxed `fetch_add`.
#[derive(Clone)]
pub struct Counter {
    cells: Arc<CounterCells>,
}

impl Counter {
    #[inline]
    pub fn add(&self, delta: u64) {
        self.cells.shards[shard()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merged value across shards (snapshot-consistency only per-shard).
    pub fn value(&self) -> u64 {
        self.cells.total()
    }
}

/// Instantaneous gauge handle: one atomic cell, `set`/`add` semantics.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    #[inline]
    pub fn set(&self, value: i64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[repr(align(64))]
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        Self {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

struct HistCells {
    shards: [HistShard; SHARDS],
}

impl HistCells {
    fn new() -> Self {
        Self {
            shards: Default::default(),
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::new();
        for s in &self.shards {
            for (k, b) in s.buckets.iter().enumerate() {
                let c = b.load(Ordering::Relaxed);
                out.buckets[k] += c;
                out.count += c;
            }
            out.sum = out.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
        }
        out
    }
}

/// Log-bucketed histogram handle. `record` is two relaxed `fetch_add`s
/// (bucket + sum) on the caller's shard.
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    #[inline]
    pub fn record(&self, value: u64) {
        let s = &self.cells.shards[shard()];
        s.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Fold a pre-aggregated snapshot in (used when deterministic folds are
    /// mirrored into a live registry).
    pub fn merge(&self, snap: &HistogramSnapshot) {
        let s = &self.cells.shards[shard()];
        for (k, &c) in snap.buckets.iter().enumerate() {
            if c > 0 {
                s.buckets[k].fetch_add(c, Ordering::Relaxed);
            }
        }
        s.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cells.snapshot()
    }
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<CounterCells>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCells>>>,
}

/// Shared registry of named metrics. Cloning shares the underlying store, so
/// one registry can be handed to every backend, pool worker, and service shard
/// and merged with a single [`snapshot`](Self::snapshot) call.
///
/// Handle *creation* takes a lock and may allocate; do it once at setup, then
/// write through the returned handles on the hot path.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.lock().unwrap().len())
            .field("gauges", &self.inner.gauges.lock().unwrap().len())
            .field("histograms", &self.inner.histograms.lock().unwrap().len())
            .finish()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create a counter by full name (labels via [`crate::labeled`]).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().unwrap();
        let cells = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterCells::new()))
            .clone();
        Counter { cells }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().unwrap();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)))
            .clone();
        Gauge { cell }
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().unwrap();
        let cells = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistCells::new()))
            .clone();
        Histogram { cells }
    }

    /// Merge all shards of every metric into an order-stable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for (name, cells) in self.inner.counters.lock().unwrap().iter() {
            snap.counters.insert(name.clone(), cells.total());
        }
        for (name, cell) in self.inner.gauges.lock().unwrap().iter() {
            snap.gauges
                .insert(name.clone(), cell.load(Ordering::Relaxed));
        }
        for (name, cells) in self.inner.histograms.lock().unwrap().iter() {
            snap.histograms.insert(name.clone(), cells.snapshot());
        }
        snap
    }

    /// Mirror a pre-aggregated (deterministic) snapshot into the live store:
    /// counters add, gauges set, histogram buckets add.
    pub fn fold(&self, snap: &MetricsSnapshot) {
        for (name, v) in &snap.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(name).set(*v);
        }
        for (name, h) in &snap.histograms {
            self.histogram(name).merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_merges_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t_total");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.snapshot().counter("t_total"), 80_000);
    }

    #[test]
    fn histogram_shards_merge_exactly() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let h = h.clone();
                thread::spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v + i * 1000);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.sum, (0..4000u64).sum::<u64>());
    }

    #[test]
    fn same_name_returns_same_cells() {
        let reg = MetricsRegistry::new();
        reg.counter("x").add(3);
        reg.counter("x").add(4);
        assert_eq!(reg.snapshot().counter("x"), 7);
    }

    #[test]
    fn fold_mirrors_deterministic_snapshot() {
        let mut det = MetricsSnapshot::new();
        det.add_counter("c", 9);
        det.set_gauge("g", -2);
        det.record("h", 17);
        let reg = MetricsRegistry::new();
        reg.fold(&det);
        let live = reg.snapshot();
        assert_eq!(live.counter("c"), 9);
        assert_eq!(live.gauge("g"), Some(-2));
        assert_eq!(live.histogram("h").unwrap().count, 1);
        assert_eq!(live.histogram("h").unwrap().sum, 17);
    }
}
