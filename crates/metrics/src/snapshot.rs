//! Point-in-time, order-stable view of a registry (or a hand-built
//! deterministic fold). `MetricsSnapshot` derives `Eq` so equivalence suites
//! can pin the deterministic plane bit-identical across backends and job
//! counts.

use std::collections::BTreeMap;

use crate::hist::HistogramSnapshot;

/// Immutable metrics view: counters, gauges, and histograms keyed by full
/// metric name (labels embedded via [`labeled`]). `BTreeMap` keeps iteration —
/// and therefore every rendering — in stable lexicographic order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Add to a counter (creating it at zero first).
    pub fn add_counter(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: impl Into<String>, value: i64) {
        self.gauges.insert(name.into(), value);
    }

    /// Record one observation into a named histogram.
    pub fn record(&mut self, name: impl Into<String>, value: u64) {
        self.histograms
            .entry(name.into())
            .or_default()
            .record(value);
    }

    /// Fold another snapshot into this one: counters and histogram buckets
    /// add, gauges take the other side's value (last write wins).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Left-biased union: entries absent from `self` are copied from
    /// `other`; entries `self` already has are kept untouched. Used to
    /// overlay the deterministic plane under a live wall-plane snapshot —
    /// metrics the live registry tracked (same names, same deterministic
    /// values) are not double counted.
    pub fn merge_missing(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            self.counters.entry(name.clone()).or_insert(*v);
        }
        for (name, v) in &other.gauges {
            self.gauges.entry(name.clone()).or_insert(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(|| h.clone());
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

/// Build a full metric name with labels in stable (given) order:
/// `labeled("opr_grants_total", &[("shard", "2")])` → `opr_grants_total{shard="2"}`.
///
/// Callers pass labels already sorted by key; the function preserves order so
/// the rendered exposition is reproducible byte-for-byte.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Split a full metric name into `(base, label_block)` where `label_block`
/// includes the braces (empty when the name carries no labels).
pub fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_builds_stable_names() {
        assert_eq!(labeled("x_total", &[]), "x_total");
        assert_eq!(
            labeled("x_total", &[("a", "1"), ("b", "two")]),
            "x_total{a=\"1\",b=\"two\"}"
        );
        assert_eq!(split_labels("x_total{a=\"1\"}"), ("x_total", "{a=\"1\"}"));
        assert_eq!(split_labels("plain"), ("plain", ""));
    }

    #[test]
    fn merge_missing_is_left_biased() {
        let mut live = MetricsSnapshot::new();
        live.add_counter("shared_total", 7);
        let mut det = MetricsSnapshot::new();
        det.add_counter("shared_total", 7);
        det.add_counter("det_only_total", 3);
        det.record("det_hist", 1);
        live.merge_missing(&det);
        assert_eq!(live.counter("shared_total"), 7, "not doubled");
        assert_eq!(live.counter("det_only_total"), 3);
        assert_eq!(live.histogram("det_hist").unwrap().count, 1);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsSnapshot::new();
        a.add_counter("c", 2);
        a.set_gauge("g", 5);
        a.record("h", 3);
        let mut b = MetricsSnapshot::new();
        b.add_counter("c", 3);
        b.set_gauge("g", -1);
        b.record("h", 3);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.gauge("g"), Some(-1));
        assert_eq!(a.histogram("h").unwrap().count, 2);
    }
}
