//! The experiment index (DESIGN.md §3): one module per table/figure.
//!
//! Each module exposes `run() -> ExperimentTable` producing the table the
//! corresponding bench target prints. The integration tests assert the
//! *shape* claims on these tables (who wins, by what factor, bounds never
//! exceeded); EXPERIMENTS.md records a captured instance of each.

pub mod a1;
pub mod a2;
pub mod a3;
pub mod e1;
pub mod f1;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;

use crate::table::ExperimentTable;

/// Runs every experiment, in the order they appear in DESIGN.md.
pub fn all() -> Vec<ExperimentTable> {
    vec![
        t1::run(),
        t2::run(),
        t3::run(),
        t4::run(),
        t5::run(),
        f1::run(),
        f2::run(),
        f3::run(),
        f4::run(),
        a1::run(),
        a2::run(),
        a3::run(),
        e1::run(),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_experiment_produces_rows() {
        for table in super::all() {
            assert!(!table.rows.is_empty(), "{} has no rows", table.id);
            assert!(!table.columns.is_empty(), "{} has no columns", table.id);
        }
    }
}
