//! T4 — lemma validation: the paper's structural invariants measured as
//! maxima/minima over the full adversary suite.

use crate::id_dist::IdDistribution;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_core::runner::{run_alg1, run_two_step, Alg1Options};
use opr_types::{OriginalId, Regime, SystemConfig};
use std::collections::BTreeSet;

/// Runs the experiment over `(N, t) ∈ {(7,2), (10,3)}` for Algorithm 1 and
/// `(11, 2)` for Algorithm 4, suite × 3 seeds × 2 id layouts.
pub fn run() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "T4",
        "lemma validation: measured worst case vs proved bound, over the adversary suite",
        ["lemma", "claim", "measured-worst", "bound", "holds"]
            .map(String::from)
            .to_vec(),
    );

    // --- Algorithm 1 invariants.
    let mut max_accepted = 0usize;
    let mut accepted_bound = 0usize;
    let mut containment_violations = 0usize;
    let mut min_timely_coverage = usize::MAX;
    let mut max_initial_spread: f64 = 0.0;
    let mut initial_spread_bound: f64 = 0.0;
    // Final spread is threshold-relative, so track it per configuration.
    let mut final_spreads: Vec<(usize, usize, f64, f64)> = Vec::new();
    let mut rejected_votes_total = 0u64;

    for (n, t) in [(7usize, 2usize), (10, 3)] {
        let cfg = SystemConfig::new(n, t).expect("valid");
        accepted_bound = accepted_bound.max(cfg.accepted_bound());
        initial_spread_bound = initial_spread_bound.max(cfg.initial_spread_bound());
        let mut config_final: f64 = 0.0;
        for dist in [IdDistribution::EvenSpaced, IdDistribution::SparseRandom] {
            for spec in AdversarySpec::ALG1 {
                for seed in 0..3u64 {
                    let ids = dist.generate(n - t, seed + 17);
                    let result = run_alg1(
                        cfg,
                        Regime::LogTime,
                        &ids,
                        t,
                        |env| spec.build_alg1(env),
                        Alg1Options {
                            seed,
                            ..Alg1Options::default()
                        },
                    )
                    .expect("legal regime");
                    assert_eq!(
                        result
                            .outcome
                            .verify(cfg.namespace_bound(Regime::LogTime))
                            .len(),
                        0,
                        "{spec} must not break the algorithm"
                    );
                    max_accepted = max_accepted
                        .max(result.probe.accepted_sizes().into_iter().max().unwrap_or(0));
                    containment_violations += result.probe.containment_violations();
                    min_timely_coverage = min_timely_coverage
                        .min(result.probe.timely_sizes().into_iter().min().unwrap_or(0));
                    let series = result.probe.spread_series();
                    if let Some(&first) = series.first() {
                        max_initial_spread = max_initial_spread.max(first);
                    }
                    if let Some(&last) = series.last() {
                        config_final = config_final.max(last);
                    }
                    rejected_votes_total += result.probe.total_rejected_votes();
                }
            }
        }
        final_spreads.push((n, t, config_final, cfg.delta()));
    }
    table.push_row(vec![
        "IV.1".into(),
        "timely anywhere ⊆ accepted everywhere".into(),
        containment_violations.to_string(),
        "0 violations".into(),
        (containment_violations == 0).to_string(),
    ]);
    table.push_row(vec![
        "IV.2".into(),
        "every correct id timely at every correct process".into(),
        format!("min |timely| = {min_timely_coverage}"),
        "≥ N−t (= 5 at the smallest config)".into(),
        (min_timely_coverage >= 5).to_string(),
    ]);
    table.push_row(vec![
        "IV.3".into(),
        "|accepted| ≤ N + ⌊t²/(N−2t)⌋".into(),
        max_accepted.to_string(),
        accepted_bound.to_string(),
        (max_accepted <= accepted_bound).to_string(),
    ]);
    table.push_row(vec![
        "IV.7".into(),
        "initial spread Δ₅ ≤ (t + ⌊t²/(N−2t)⌋)·δ".into(),
        format!("{max_initial_spread:.4}"),
        format!("{initial_spread_bound:.4}"),
        (max_initial_spread <= initial_spread_bound + 1e-9).to_string(),
    ]);
    // Reproduction finding (see EXPERIMENTS.md): at small t the paper's
    // 3⌈log t⌉+3 schedule does NOT reach Lemma IV.9's (δ−1)/2 target under
    // the divergence adversary — the analytic constants are loose there.
    // Order preservation nevertheless held in every run because the
    // *sufficient* rounding condition is the weaker Δ < δ−1, which the
    // schedule does satisfy. Both criteria are reported per configuration.
    for &(n, t, measured, delta) in &final_spreads {
        let paper_target = (delta - 1.0) / 2.0;
        table.push_row(vec![
            format!("IV.9 @N={n},t={t}"),
            "final spread < (δ−1)/2 (paper target)".into(),
            format!("{measured:.6}"),
            format!("{paper_target:.6}"),
            (measured < paper_target).to_string(),
        ]);
        let sufficient = delta - 1.0;
        table.push_row(vec![
            format!("IV.9' @N={n},t={t}"),
            "final spread < δ−1 (sufficient for rounding)".into(),
            format!("{measured:.6}"),
            format!("{sufficient:.6}"),
            (measured < sufficient).to_string(),
        ]);
    }
    table.push_row(vec![
        "IV.4".into(),
        "isValid rejects only non-correct votes (rejections observed)".into(),
        rejected_votes_total.to_string(),
        "> 0 under order-invert/noise".into(),
        (rejected_votes_total > 0).to_string(),
    ]);

    // --- Algorithm 4 invariants.
    let cfg = SystemConfig::new(11, 2).expect("valid");
    let mut max_delta = 0i64;
    let mut min_gap = i64::MAX;
    for spec in AdversarySpec::TWO_STEP {
        for seed in 0..3u64 {
            let ids = IdDistribution::EvenSpaced.generate(9, seed + 3);
            let correct: BTreeSet<OriginalId> = ids.iter().copied().collect();
            let result = run_two_step(cfg, &ids, 2, |env| spec.build_two_step(env), seed)
                .expect("legal regime");
            assert_eq!(result.outcome.verify(121).len(), 0);
            max_delta = max_delta.max(result.probe.max_discrepancy(&correct));
            min_gap = min_gap.min(result.probe.min_correct_gap(&correct));
        }
    }
    table.push_row(vec![
        "VI.1".into(),
        "two-step discrepancy Δ ≤ 2t²".into(),
        max_delta.to_string(),
        (2 * cfg.t() * cfg.t()).to_string(),
        (max_delta <= 2 * (cfg.t() as i64) * (cfg.t() as i64)).to_string(),
    ]);
    table.push_row(vec![
        "VI.2".into(),
        "consecutive correct names ≥ N−t apart".into(),
        min_gap.to_string(),
        format!("≥ {}", cfg.quorum()),
        (min_gap >= cfg.quorum() as i64).to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_lemmas_hold_except_the_documented_iv9_gap() {
        let table = super::run();
        for row in &table.rows {
            if row[0].starts_with("IV.9 @N=7,t=2") {
                // The documented finding: the paper's schedule misses its
                // own (δ−1)/2 target at the smallest configuration. If this
                // ever flips to "true" the divergence adversary has
                // regressed — investigate before celebrating.
                assert_eq!(row[4], "false", "expected the IV.9 gap: {row:?}");
            } else {
                assert_eq!(row[4], "true", "lemma {} failed: {:?}", row[0], row);
            }
        }
    }
}
