//! T1 — step complexity: every implementation's measured rounds vs the
//! paper's formulas (§IV-D, Theorem V.3, §VI-B, and the related-work costs).

use crate::id_dist::IdDistribution;
use crate::run::Algorithm;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_types::SystemConfig;

/// The adversary each implementation is measured under (rounds are
/// schedule-determined, so any adversary gives the same count; we use an
/// aggressive one where available to prove the point).
fn adversary_for(alg: Algorithm) -> AdversarySpec {
    match alg {
        Algorithm::Alg1LogTime | Algorithm::Alg1ConstantTime => AdversarySpec::IdForge,
        Algorithm::TwoStep => AdversarySpec::FakeFlood,
        _ => AdversarySpec::Silent,
    }
}

/// Runs the experiment: `t ∈ 1..=4`, each implementation at its minimal `N`.
pub fn run() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "T1",
        "step complexity: measured rounds vs paper formula, at minimal N per regime",
        ["t", "algorithm", "N", "rounds-measured", "rounds-formula"]
            .map(String::from)
            .to_vec(),
    );
    for t in 1..=4usize {
        for alg in Algorithm::ALL {
            let n = alg.minimal_n(t);
            let cfg = SystemConfig::new(n, t).expect("minimal N is valid");
            let ids = IdDistribution::SparseRandom.generate(n - t, 1000 + t as u64);
            let stats = alg
                .run(cfg, &ids, t, adversary_for(alg), 1)
                .unwrap_or_else(|e| panic!("{alg} t={t}: {e}"));
            assert_eq!(
                stats.violations, 0,
                "{alg} t={t}: properties must hold while measuring"
            );
            table.push_row(vec![
                t.to_string(),
                alg.label().to_owned(),
                n.to_string(),
                stats.rounds.to_string(),
                alg.rounds(n, t).to_string(),
            ]);
        }
    }
    table.add_note(
        "alg1-log: 3⌈log₂ t⌉+7; alg1-const: 8; alg4: 2; b1: ⌈log₂ t⌉+4; \
         b2: 2t+6; b3: ⌈log₂ N⌉+1; b4: 2(⌈log₂ 2N⌉+1)",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_equals_formula_everywhere() {
        let table = run();
        let measured = table.column("rounds-measured");
        let formula = table.column("rounds-formula");
        assert_eq!(measured, formula);
    }

    #[test]
    fn two_step_always_wins_and_consensus_grows_linearly() {
        let table = run();
        let algs = table.column("algorithm");
        let rounds: Vec<u32> = table
            .column("rounds-measured")
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        // Algorithm 4 is the global minimum.
        let min = rounds.iter().min().unwrap();
        for (a, r) in algs.iter().zip(&rounds) {
            if *a == "alg4-2step" {
                assert_eq!(r, min);
            }
        }
        // Consensus rounds at t=1 vs t=4 grow by 2·(4−1) = 6.
        let b2: Vec<u32> = algs
            .iter()
            .zip(&rounds)
            .filter(|(a, _)| **a == "b2-consensus")
            .map(|(_, r)| *r)
            .collect();
        assert_eq!(b2.last().unwrap() - b2.first().unwrap(), 6);
    }
}
