//! E1 — early-output extension: decision latency as a function of the
//! *actual* adversary behaviour, in the spirit of the early-deciding
//! renaming of Alistarh et al. \[1\] (`O(log f)` where `f` is the number of
//! actual faults).
//!
//! The rule (see [`Alg1Tweaks::early_output`](opr_core::Alg1Tweaks)): a
//! process outputs as soon as one voting step delivers a unanimous valid
//! quorum equal to its own rank vector — provably the frozen fixed point of
//! every later step. With silent (or absent) faults, views coincide and
//! everyone outputs at the *first* voting step; only actively-equivocating
//! adversaries force the full schedule.

use crate::id_dist::IdDistribution;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_core::runner::{run_alg1, Alg1Options};
use opr_core::Alg1Tweaks;
use opr_types::{Regime, SystemConfig};

/// Runs the experiment at `(N, t) = (10, 3)` across adversary behaviours.
pub fn run() -> ExperimentTable {
    let (n, t) = (10usize, 3usize);
    let cfg = SystemConfig::new(n, t).expect("valid");
    let schedule_end = cfg.total_steps(Regime::LogTime);
    let mut table = ExperimentTable::new(
        "E1",
        "early-output extension: worst correct decision step vs adversary (N=10, t=3)",
        [
            "adversary",
            "faulty",
            "decision-step",
            "schedule-end",
            "saved-steps",
        ]
        .map(String::from)
        .to_vec(),
    );
    let cases: Vec<(AdversarySpec, usize)> = vec![
        (AdversarySpec::Silent, 0),
        (AdversarySpec::Silent, t),
        (AdversarySpec::CrashMidway, t),
        (AdversarySpec::IdForge, t),
        (AdversarySpec::EchoSplit, t),
        (AdversarySpec::RankSkew, t),
    ];
    for (spec, faulty) in cases {
        let ids = IdDistribution::SparseRandom.generate(n - faulty, 31);
        let result = run_alg1(
            cfg,
            Regime::LogTime,
            &ids,
            faulty,
            |env| spec.build_alg1(env),
            Alg1Options {
                seed: 5,
                allow_regime_violation: false,
                tweaks: Alg1Tweaks {
                    early_output: true,
                    ..Alg1Tweaks::default()
                },
                ..Alg1Options::default()
            },
        )
        .expect("legal run");
        assert!(
            result
                .outcome
                .verify(cfg.namespace_bound(Regime::LogTime))
                .is_empty(),
            "{spec}: early output must never change correctness"
        );
        let decision = result
            .probe
            .last_decision_step()
            .expect("all correct decided");
        table.push_row(vec![
            spec.label().to_owned(),
            faulty.to_string(),
            decision.to_string(),
            schedule_end.to_string(),
            (schedule_end - decision).to_string(),
        ]);
    }
    table.add_note(
        "with f = 0 or silent faults every correct process sees a unanimous \
         quorum at voting step 1 (communication step 5) and outputs 8 steps \
         early; active equivocators (echo-split, rank-skew) delay freezing",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn silent_faults_decide_at_first_voting_step() {
        let table = super::run();
        for row in &table.rows {
            if row[0] == "silent" {
                assert_eq!(row[2], "5", "silent runs freeze at step 5: {row:?}");
            }
            // Early output never exceeds the schedule.
            let d: u32 = row[2].parse().unwrap();
            let end: u32 = row[3].parse().unwrap();
            assert!(d <= end);
        }
    }
}
