//! A2 — clamp ablation: remove the `min(counter, N − t)` offset clamp from
//! Algorithm 4 and the half-echo adversary breaks order preservation; with
//! the clamp, the same adversary is a no-op.
//!
//! This validates the paper's Section VI remark that the clamp "prevents
//! Byzantine processes from introducing an additional error linear in the
//! number of correct processes by choosing to echo correct ids for some
//! processes but not others".

use crate::id_dist::IdDistribution;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_core::runner::run_two_step_clamped;
use opr_core::TwoStepProbe;
use opr_types::{OriginalId, SystemConfig};
use std::collections::BTreeSet;

fn measure(n: usize, t: usize, clamp: bool, seeds: u64) -> (u32, u32, i64) {
    let cfg = SystemConfig::new(n, t).expect("valid");
    let mut runs = 0;
    let mut violating = 0;
    let mut max_delta = 0i64;
    for seed in 0..seeds {
        let ids = IdDistribution::EvenSpaced.generate(n - t, seed + 1);
        let correct: BTreeSet<OriginalId> = ids.iter().copied().collect();
        runs += 1;
        let result = run_two_step_clamped(
            cfg,
            &ids,
            t,
            |env| AdversarySpec::HalfEcho.build_two_step(env),
            seed,
            clamp,
        )
        .expect("legal regime");
        if !result.outcome.verify((n * n) as u64).is_empty() {
            violating += 1;
        }
        let probe: &TwoStepProbe = &result.probe;
        max_delta = max_delta.max(probe.max_discrepancy(&correct));
    }
    (runs, violating, max_delta)
}

/// Runs the ablation for `t ∈ {2, 3}` at minimal `N`.
pub fn run() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "A2",
        "ablation: offset clamp min(counter, N−t) on/off under the half-echo adversary",
        [
            "N",
            "t",
            "clamp",
            "runs",
            "violating-runs",
            "max-delta",
            "bound-2t2",
        ]
        .map(String::from)
        .to_vec(),
    );
    for t in [2usize, 3] {
        let n = 2 * t * t + t + 1;
        for clamp in [true, false] {
            let (runs, violating, max_delta) = measure(n, t, clamp, 6);
            table.push_row(vec![
                n.to_string(),
                t.to_string(),
                clamp.to_string(),
                runs.to_string(),
                violating.to_string(),
                max_delta.to_string(),
                (2 * t * t).to_string(),
            ]);
        }
    }
    table.add_note(
        "half-echo delivers its echo only to half the correct processes: \
         with the clamp both halves floor every correct id's offset at N−t \
         (Δ stays ≤ 2t²); without it the per-id counter gap accumulates \
         along the sorted id sequence and crosses the N−t name gap",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn clamp_is_load_bearing() {
        let table = super::run();
        for row in &table.rows {
            let clamp: bool = row[2].parse().unwrap();
            let violating: u32 = row[4].parse().unwrap();
            let max_delta: i64 = row[5].parse().unwrap();
            let bound: i64 = row[6].parse().unwrap();
            if clamp {
                assert_eq!(violating, 0, "clamped runs must be clean: {row:?}");
                assert!(max_delta <= bound, "clamped Δ within 2t²: {row:?}");
            } else {
                assert!(violating > 0, "unclamped runs must break: {row:?}");
                assert!(max_delta > bound, "unclamped Δ exceeds 2t²: {row:?}");
            }
        }
    }
}
