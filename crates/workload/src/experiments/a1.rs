//! A1 — validation ablation: remove the `isValid` filter (Algorithm 2) and
//! the pair-squeeze adversary destroys order preservation; with the filter,
//! the same adversary is harmless.
//!
//! This is the empirical demonstration of the paper's central design point
//! (Section I): Byzantine-tolerant approximate agreement alone is *not*
//! order-preserving, because adversaries can make per-id value hulls
//! overlap and then steer different ids to a common value.

use crate::id_dist::IdDistribution;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_core::runner::{run_alg1, Alg1Options};
use opr_core::Alg1Tweaks;
use opr_types::{Regime, SystemConfig};

fn violating_runs(n: usize, t: usize, validation: bool, seeds: u64) -> (u32, u32) {
    let cfg = SystemConfig::new(n, t).expect("valid");
    let mut runs = 0;
    let mut violating = 0;
    for seed in 0..seeds {
        let ids = IdDistribution::EvenSpaced.generate(n - t, seed + 1);
        runs += 1;
        let result = run_alg1(
            cfg,
            Regime::LogTime,
            &ids,
            t,
            |env| AdversarySpec::PairSqueeze.build_alg1(env),
            Alg1Options {
                seed,
                allow_regime_violation: false,
                tweaks: Alg1Tweaks {
                    disable_validation: !validation,
                    ..Alg1Tweaks::default()
                },
                ..Alg1Options::default()
            },
        );
        match result {
            Ok(res) => {
                if !res
                    .outcome
                    .verify(cfg.namespace_bound(Regime::LogTime))
                    .is_empty()
                {
                    violating += 1;
                }
            }
            Err(_) => violating += 1,
        }
    }
    (runs, violating)
}

/// Runs the ablation for `(N, t) ∈ {(7,2), (10,3), (13,4)}`.
pub fn run() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "A1",
        "ablation: isValid vote filter on/off under the pair-squeeze adversary",
        ["N", "t", "isValid", "runs", "violating-runs"]
            .map(String::from)
            .to_vec(),
    );
    for (n, t) in [(7usize, 2usize), (10, 3), (13, 4)] {
        for validation in [true, false] {
            let (runs, violating) = violating_runs(n, t, validation, 6);
            table.push_row(vec![
                n.to_string(),
                t.to_string(),
                validation.to_string(),
                runs.to_string(),
                violating.to_string(),
            ]);
        }
    }
    table.add_note(
        "the pair-squeeze votes rank two adjacent correct ids at the same \
         value; isValid rejects them (spacing 0 < δ); without the filter \
         they pass the per-id trim (they lie inside the overlapping hulls \
         created by the divergence gadget) and merge the two ids' names",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn validation_is_load_bearing() {
        let table = super::run();
        for row in &table.rows {
            let on: bool = row[2].parse().unwrap();
            let violating: u32 = row[4].parse().unwrap();
            if on {
                assert_eq!(violating, 0, "validated runs must be clean: {row:?}");
            } else {
                assert!(violating > 0, "ablated runs must break: {row:?}");
            }
        }
    }
}
