//! T2 — namespace: the largest name any correct process picks, maximized
//! over the adversary suite, vs the paper's bounds (Theorem IV.10,
//! Lemma V.1, Theorem VI.3) and the baselines' bounds.

use crate::id_dist::IdDistribution;
use crate::run::Algorithm;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_types::{Regime, SystemConfig};

/// Config points: one per implementation, chosen so Byzantine forgery has
/// room to inflate the namespace.
fn config_for(alg: Algorithm) -> (usize, usize) {
    match alg {
        Algorithm::Alg1LogTime => (10, 3),
        Algorithm::Alg1ConstantTime => (16, 3),
        Algorithm::TwoStep => (11, 2),
        Algorithm::CrashAa => (10, 3),
        Algorithm::Consensus => (10, 2),
        Algorithm::Cht => (10, 3),
        Algorithm::Translated => (10, 3),
    }
}

fn suite_for(alg: Algorithm) -> Vec<AdversarySpec> {
    match alg {
        Algorithm::Alg1LogTime | Algorithm::Alg1ConstantTime => AdversarySpec::ALG1.to_vec(),
        Algorithm::TwoStep => AdversarySpec::TWO_STEP.to_vec(),
        _ => vec![AdversarySpec::Silent],
    }
}

/// Runs the experiment.
pub fn run() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "T2",
        "namespace: max name over adversary suite × seeds × id layouts vs guaranteed bound",
        ["algorithm", "N", "t", "max-name", "bound", "tight-to-N"]
            .map(String::from)
            .to_vec(),
    );
    for alg in Algorithm::ALL {
        let (n, t) = config_for(alg);
        let cfg = SystemConfig::new(n, t).expect("valid config");
        let bound = alg.namespace_bound(n, t);
        let mut max_name = 0i64;
        for dist in [IdDistribution::EvenSpaced, IdDistribution::SparseRandom] {
            for spec in suite_for(alg) {
                for seed in 0..3u64 {
                    let ids = dist.generate(n - t, seed * 31 + 5);
                    let stats = alg
                        .run(cfg, &ids, t, spec, seed)
                        .unwrap_or_else(|e| panic!("{alg}/{spec}: {e}"));
                    assert_eq!(stats.violations, 0, "{alg}/{spec} seed {seed}");
                    max_name = max_name.max(stats.max_name.unwrap_or(0));
                }
            }
        }
        table.push_row(vec![
            alg.label().to_owned(),
            n.to_string(),
            t.to_string(),
            max_name.to_string(),
            bound.to_string(),
            (max_name <= n as i64).to_string(),
        ]);
    }
    table.add_note(
        "paper bounds: alg1-log N+t−1, alg1-const N (strong), alg4 N²; \
         b4 loses tightness under forgery (the paper's critique of [15])",
    );
    table.add_note(
        "Regime bounds checked: alg1-const is the only Byzantine algorithm that stays tight to N",
    );
    let _ = Regime::ALL; // anchor the doc reference
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_algorithm_exceeds_its_bound() {
        let table = run();
        for row in &table.rows {
            let max: i64 = row[3].parse().unwrap();
            let bound: i64 = row[4].parse().unwrap();
            assert!(max <= bound, "{}: {max} > {bound}", row[0]);
        }
    }

    #[test]
    fn constant_time_variant_is_tight_to_n() {
        let table = run();
        for row in &table.rows {
            if row[0] == "alg1-const" {
                assert_eq!(row[5], "true", "strong renaming must stay within N");
            }
        }
    }
}
