//! A3 — schedule ablation and margin study: how many voting steps does
//! Algorithm 1 *actually* need under the divergence adversary, compared to
//! the paper's `3⌈log₂ t⌉ + 3` budget and the analytically safe budget?
//!
//! Also records the reproduction finding on Lemma IV.9: at minimal `N` and
//! small `t` the paper's budget drives the final spread below the
//! *sufficient* rounding threshold `δ − 1` but not below the paper's own
//! `(δ−1)/2` target.

use crate::id_dist::IdDistribution;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_core::runner::{run_alg1, Alg1Options};
use opr_core::Alg1Tweaks;
use opr_types::{Regime, SystemConfig};

/// Violating runs when Algorithm 1 is truncated to `steps` voting steps.
fn violations_at(cfg: SystemConfig, steps: u32, seeds: u64) -> (u32, u32, f64) {
    let mut runs = 0;
    let mut violating = 0;
    let mut max_final: f64 = 0.0;
    for seed in 0..seeds {
        let ids = IdDistribution::EvenSpaced.generate(cfg.n() - cfg.t(), seed + 1);
        runs += 1;
        let result = run_alg1(
            cfg,
            Regime::LogTime,
            &ids,
            cfg.t(),
            |env| AdversarySpec::PairSqueeze.build_alg1(env),
            Alg1Options {
                seed,
                allow_regime_violation: false,
                tweaks: Alg1Tweaks {
                    voting_steps_override: Some(steps),
                    ..Alg1Tweaks::default()
                },
                ..Alg1Options::default()
            },
        );
        match result {
            Ok(res) => {
                if !res
                    .outcome
                    .verify(cfg.namespace_bound(Regime::LogTime))
                    .is_empty()
                {
                    violating += 1;
                }
                if let Some(&last) = res.probe.spread_series().last() {
                    max_final = max_final.max(last);
                }
            }
            Err(_) => violating += 1,
        }
    }
    (runs, violating, max_final)
}

/// Runs the ablation at `(N, t) = (13, 4)`: truncated schedules vs the
/// paper's and the analytically safe budget.
pub fn run() -> ExperimentTable {
    let (n, t) = (13usize, 4usize);
    let cfg = SystemConfig::new(n, t).expect("valid");
    let paper = cfg.voting_steps(Regime::LogTime);
    let safe = cfg.safe_voting_steps();
    let mut table = ExperimentTable::new(
        "A3",
        "ablation: voting-schedule length vs violations and final spread (N=13, t=4)",
        [
            "voting-steps",
            "schedule",
            "runs",
            "violating-runs",
            "max-final-spread",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut candidates: Vec<(u32, String)> =
        (1..=3u32).map(|s| (s, format!("truncated-{s}"))).collect();
    candidates.push((paper, format!("paper (3⌈log t⌉+3 = {paper})")));
    candidates.push((safe, format!("analytic-safe ({safe})")));
    for (steps, label) in candidates {
        let (runs, violating, max_final) = violations_at(cfg, steps, 6);
        table.push_row(vec![
            steps.to_string(),
            label,
            runs.to_string(),
            violating.to_string(),
            format!("{max_final:.6}"),
        ]);
    }
    table.add_note(&format!(
        "thresholds at this config: paper target (δ−1)/2 = {:.6}, sufficient δ−1 = {:.6}",
        (cfg.delta() - 1.0) / 2.0,
        cfg.delta() - 1.0
    ));
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn truncated_schedules_break_and_full_schedules_do_not() {
        let table = super::run();
        let mut saw_truncated_break = false;
        for row in &table.rows {
            let violating: u32 = row[3].parse().unwrap();
            if (row[1].starts_with("truncated-1") || row[1].starts_with("truncated-2"))
                && violating > 0
            {
                saw_truncated_break = true;
            }
            if row[1].starts_with("paper") || row[1].starts_with("analytic") {
                assert_eq!(violating, 0, "full schedule must be clean: {row:?}");
            }
        }
        assert!(
            saw_truncated_break,
            "severely truncated schedules must exhibit violations"
        );
    }

    #[test]
    fn safe_schedule_meets_the_paper_target_where_paper_budget_does_not() {
        let table = super::run();
        let threshold = {
            let cfg = opr_types::SystemConfig::new(13, 4).unwrap();
            (cfg.delta() - 1.0) / 2.0
        };
        let spread_of = |prefix: &str| -> f64 {
            table
                .rows
                .iter()
                .find(|r| r[1].starts_with(prefix))
                .map(|r| r[4].parse().unwrap())
                .expect("row present")
        };
        assert!(
            spread_of("analytic") < threshold,
            "the analytically safe budget must reach the (δ−1)/2 target"
        );
    }
}
