//! F1 — approximate-agreement convergence: the measured rank spread `Δ_r`
//! per voting step vs the `σ_t`-contraction prediction (Lemmas IV.7–IV.9).
//!
//! The adversary is the pair-squeezer running with validation *enabled*:
//! its staggered-fake id-selection phase creates the worst measured initial
//! divergence `Δ₅` (its squeeze votes are rejected by `isValid`, so only
//! the divergence matters here), and the series shows the per-step
//! contraction repairing it.

use crate::id_dist::IdDistribution;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_core::runner::{run_alg1, Alg1Options};
use opr_types::{Regime, SystemConfig};

/// Runs the experiment at `(N, t) = (13, 4)` under the strongest
/// divergence adversary.
pub fn run() -> ExperimentTable {
    let (n, t) = (13usize, 4usize);
    let cfg = SystemConfig::new(n, t).expect("valid");
    let ids = IdDistribution::EvenSpaced.generate(n - t, 77);
    // Take the worst spread series across a few seeds.
    let mut worst_series: Vec<f64> = Vec::new();
    for seed in 0..3u64 {
        let result = run_alg1(
            cfg,
            Regime::LogTime,
            &ids,
            t,
            |env| AdversarySpec::PairSqueeze.build_alg1(env),
            Alg1Options {
                seed,
                ..Alg1Options::default()
            },
        )
        .expect("legal regime");
        assert!(result
            .outcome
            .verify(cfg.namespace_bound(Regime::LogTime))
            .is_empty());
        let series = result.probe.spread_series();
        if worst_series.is_empty() {
            worst_series = series;
        } else {
            for (w, s) in worst_series.iter_mut().zip(series) {
                *w = w.max(s);
            }
        }
    }

    let sigma = cfg.sigma() as f64;
    let delta5_bound = cfg.initial_spread_bound();
    let mut table = ExperimentTable::new(
        "F1",
        "AA convergence: measured max rank spread per voting step vs σ_t prediction",
        ["step", "measured-spread", "predicted-bound", "within-bound"]
            .map(String::from)
            .to_vec(),
    );
    for (i, measured) in worst_series.iter().enumerate() {
        // Index 0 is Δ₅ (after id selection); each voting step divides the
        // *bound* by σ_t.
        let bound = delta5_bound / sigma.powi(i as i32);
        table.push_row(vec![
            if i == 0 {
                "after-id-selection".to_owned()
            } else {
                format!("voting-{i}")
            },
            format!("{measured:.6}"),
            format!("{bound:.6}"),
            (*measured <= bound + 1e-9).to_string(),
        ]);
    }
    table.add_note(&format!(
        "N={n}, t={t}, σ_t={}, adversary=pair-squeeze (validated), worst over 3 seeds",
        cfg.sigma()
    ));
    table.add_note(&format!(
        "order-preservation threshold (δ−1)/2 = {:.6}",
        (cfg.delta() - 1.0) / 2.0
    ));
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_step_is_within_the_contracted_bound() {
        let table = super::run();
        for row in &table.rows {
            assert_eq!(row[3], "true", "step {} exceeded its bound", row[0]);
        }
    }

    #[test]
    fn spread_ends_below_the_rounding_threshold() {
        let table = super::run();
        let last = table.rows.last().unwrap();
        let measured: f64 = last[1].parse().unwrap();
        // (δ−1)/2 at N=13, t=4: 1/(6·17).
        assert!(measured < 1.0 / (6.0 * 17.0), "final spread {measured}");
    }
}
