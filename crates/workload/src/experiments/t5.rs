//! T5 — resilience boundary: Algorithm 1 at `N = 3t + 1` (legal) vs
//! `N = 3t` (one process short of the optimal bound, cited from \[15\]).

use crate::id_dist::IdDistribution;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_core::runner::{run_alg1, Alg1Options};
use opr_types::{Regime, RenamingError, SystemConfig};

/// Aggressive strategies for the boundary probe.
const ATTACKS: [AdversarySpec; 4] = [
    AdversarySpec::IdForge,
    AdversarySpec::EchoSplit,
    AdversarySpec::RankSkew,
    AdversarySpec::RandomNoise,
];

fn violation_runs(n: usize, t: usize, seeds: u64) -> (u32, u32) {
    let cfg = SystemConfig::new(n, t).expect("t < n");
    let mut runs = 0u32;
    let mut violating = 0u32;
    for spec in ATTACKS {
        for seed in 0..seeds {
            let ids = IdDistribution::EvenSpaced.generate(n - t, seed + 1);
            runs += 1;
            let outcome = run_alg1(
                cfg,
                Regime::LogTime,
                &ids,
                t,
                |env| spec.build_alg1(env),
                Alg1Options {
                    seed,
                    allow_regime_violation: true,
                    ..Alg1Options::default()
                },
            );
            match outcome {
                Ok(result) => {
                    if !result
                        .outcome
                        .verify(cfg.namespace_bound(Regime::LogTime))
                        .is_empty()
                    {
                        violating += 1;
                    }
                }
                // A correct process failing to decide is a termination
                // violation.
                Err(RenamingError::MissedTermination { .. }) => violating += 1,
                Err(e) => panic!("unexpected setup error: {e}"),
            }
        }
    }
    (runs, violating)
}

/// Runs the experiment for `t ∈ {2, 3}`.
pub fn run() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "T5",
        "resilience boundary: violation runs at N = 3t+1 (legal) vs N = 3t (illegal)",
        ["t", "N", "regime-legal", "runs", "violating-runs"]
            .map(String::from)
            .to_vec(),
    );
    for t in [2usize, 3] {
        for n in [3 * t + 1, 3 * t] {
            let (runs, violating) = violation_runs(n, t, 3);
            table.push_row(vec![
                t.to_string(),
                n.to_string(),
                (n > 3 * t).to_string(),
                runs.to_string(),
                violating.to_string(),
            ]);
        }
    }
    table.add_note(
        "at N = 3t the N−2t threshold no longer implies a correct backer per \
         Byzantine quorum; guarantees may fail, and measured violations are \
         reported as-is (zero violations at N = 3t does not make N = 3t safe — \
         the bound is worst-case)",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn legal_configurations_never_violate() {
        let table = super::run();
        for row in &table.rows {
            if row[2] == "true" {
                assert_eq!(row[4], "0", "legal config violated: {row:?}");
            }
        }
    }
}
