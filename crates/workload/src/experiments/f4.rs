//! F4 — two-step discrepancy: measured `Δ` (largest cross-process
//! disagreement about a correct id's new name) vs the `2t²` bound of
//! Lemma VI.1, at the minimal `N = 2t² + t + 1` per `t`.

use crate::id_dist::IdDistribution;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_core::runner::run_two_step;
use opr_types::{OriginalId, SystemConfig};
use std::collections::BTreeSet;

/// Runs the experiment for `t ∈ 1..=3`.
pub fn run() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "F4",
        "two-step discrepancy: measured Δ over the suite vs the 2t² bound, at minimal N",
        [
            "t",
            "N",
            "max-delta",
            "bound-2t2",
            "min-gap",
            "gap-bound-N-t",
        ]
        .map(String::from)
        .to_vec(),
    );
    for t in 1..=3usize {
        let n = 2 * t * t + t + 1;
        let cfg = SystemConfig::new(n, t).expect("valid");
        let mut max_delta = 0i64;
        let mut min_gap = i64::MAX;
        for spec in AdversarySpec::TWO_STEP {
            for seed in 0..4u64 {
                let ids = IdDistribution::EvenSpaced.generate(n - t, seed + 11);
                let correct: BTreeSet<OriginalId> = ids.iter().copied().collect();
                let result = run_two_step(cfg, &ids, t, |env| spec.build_two_step(env), seed)
                    .expect("legal regime");
                assert!(
                    result.outcome.verify((n * n) as u64).is_empty(),
                    "{spec} t={t} seed={seed}"
                );
                max_delta = max_delta.max(result.probe.max_discrepancy(&correct));
                min_gap = min_gap.min(result.probe.min_correct_gap(&correct));
            }
        }
        table.push_row(vec![
            t.to_string(),
            n.to_string(),
            max_delta.to_string(),
            (2 * t * t).to_string(),
            min_gap.to_string(),
            cfg.quorum().to_string(),
        ]);
    }
    table.add_note(
        "order preservation needs Δ < (N−t) − … which N > 2t²+t guarantees: \
         the measured Δ column must stay below both 2t² and the min-gap column",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn discrepancy_within_bound_and_below_gap() {
        let table = super::run();
        for row in &table.rows {
            let delta: i64 = row[2].parse().unwrap();
            let bound: i64 = row[3].parse().unwrap();
            let gap: i64 = row[4].parse().unwrap();
            let gap_bound: i64 = row[5].parse().unwrap();
            assert!(delta <= bound, "t={}: Δ={delta} > {bound}", row[0]);
            assert!(gap >= gap_bound, "t={}: gap {gap} < {gap_bound}", row[0]);
            // The order-preservation mechanism: discrepancy strictly below
            // the guaranteed gap.
            assert!(delta < gap, "t={}: Δ={delta} ≥ gap={gap}", row[0]);
        }
    }
}
