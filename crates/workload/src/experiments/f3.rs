//! F3 — rounds crossover: Algorithm 1 (`O(log t)`) vs the consensus
//! baseline (`Θ(t)`), both run at `N = 4t + 2` so the comparison is
//! apples-to-apples (the consensus baseline's stricter requirement).

use crate::id_dist::IdDistribution;
use crate::run::Algorithm;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_types::SystemConfig;

/// Runs the experiment for `t ∈ 1..=6`.
pub fn run() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "F3",
        "rounds crossover: Algorithm 1 vs consensus-based renaming at N = 4t+2",
        ["t", "N", "alg1-rounds", "consensus-rounds", "alg1-wins"]
            .map(String::from)
            .to_vec(),
    );
    for t in 1..=6usize {
        let n = 4 * t + 2;
        let cfg = SystemConfig::new(n, t).expect("valid");
        let ids = IdDistribution::SparseRandom.generate(n - t, t as u64);
        let alg1 = Algorithm::Alg1LogTime
            .run(cfg, &ids, t, AdversarySpec::EchoSplit, 1)
            .expect("alg1");
        let cons = Algorithm::Consensus
            .run(cfg, &ids, t, AdversarySpec::Silent, 1)
            .expect("consensus");
        assert_eq!(alg1.violations, 0);
        assert_eq!(cons.violations, 0);
        table.push_row(vec![
            t.to_string(),
            n.to_string(),
            alg1.rounds.to_string(),
            cons.rounds.to_string(),
            (alg1.rounds < cons.rounds).to_string(),
        ]);
    }
    table.add_note(
        "3⌈log₂ t⌉+7 vs 2(t+1)+6: the small-t constants trade blows (consensus \
         even wins at t = 3), but the logarithmic schedule pulls ahead \
         permanently once 3⌈log t⌉ < 2t − 1, and the gap grows linearly in t",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn alg1_wins_for_large_t_and_gap_widens() {
        let table = super::run();
        let wins: Vec<bool> = table.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        // Small-t constants trade blows: consensus wins at t = 3…
        assert!(!wins[2], "at t=3 consensus (12) beats alg1 (13)");
        // …but Algorithm 1 wins at t = 4 and t = 6 and never loses again.
        assert!(wins[3] && wins[5], "alg1 must win for t ∈ {{4, 6}}");
        // The gap at t=6 exceeds the gap at t=4: linear vs logarithmic.
        let gap =
            |row: &Vec<String>| row[3].parse::<i64>().unwrap() - row[2].parse::<i64>().unwrap();
        assert!(gap(&table.rows[5]) > gap(&table.rows[3]));
    }
}
