//! F2 — namespace growth in `t` at fixed `N`, per algorithm.

use crate::id_dist::IdDistribution;
use crate::run::Algorithm;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_types::SystemConfig;

/// The fixed system size.
pub const N: usize = 31;

/// Runs the experiment: `t` sweeps as far as each regime allows at `N = 31`.
pub fn run() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "F2",
        "namespace vs t at fixed N=31: measured max name and guaranteed bound",
        ["algorithm", "t", "max-name", "bound"]
            .map(String::from)
            .to_vec(),
    );
    let sweeps: [(Algorithm, AdversarySpec, Vec<usize>); 3] = [
        (
            Algorithm::Alg1LogTime,
            AdversarySpec::IdForge,
            vec![1, 2, 4, 6, 8, 10],
        ),
        (
            Algorithm::Alg1ConstantTime,
            AdversarySpec::IdForge,
            vec![1, 2, 3, 4],
        ),
        (Algorithm::TwoStep, AdversarySpec::FakeFlood, vec![1, 2, 3]),
    ];
    for (alg, spec, ts) in sweeps {
        for t in ts {
            assert!(N >= alg.minimal_n(t), "{alg} t={t} out of regime at N={N}");
            let cfg = SystemConfig::new(N, t).expect("valid");
            let mut max_name = 0i64;
            for seed in 0..2u64 {
                let ids = IdDistribution::EvenSpaced.generate(N - t, seed + 2);
                let stats = alg.run(cfg, &ids, t, spec, seed).expect("run");
                assert_eq!(stats.violations, 0, "{alg} t={t}");
                max_name = max_name.max(stats.max_name.unwrap_or(0));
            }
            table.push_row(vec![
                alg.label().to_owned(),
                t.to_string(),
                max_name.to_string(),
                alg.namespace_bound(N, t).to_string(),
            ]);
        }
    }
    table.add_note("alg1-log bound N+t−1 grows with t; alg1-const stays N; alg4 pays N²");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_and_const_variant_stays_flat() {
        let table = run();
        for row in &table.rows {
            let max: i64 = row[2].parse().unwrap();
            let bound: i64 = row[3].parse().unwrap();
            assert!(max <= bound, "{} t={}", row[0], row[1]);
            if row[0] == "alg1-const" {
                assert!(max <= N as i64);
            }
        }
    }

    #[test]
    fn log_variant_namespace_grows_with_t_in_the_bound() {
        let table = run();
        let bounds: Vec<i64> = table
            .rows
            .iter()
            .filter(|r| r[0] == "alg1-log")
            .map(|r| r[3].parse().unwrap())
            .collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }
}
