//! T3 — message complexity: measured message and bit counts vs the paper's
//! `O(N² log t)` total and per-message size bounds (§IV-D, §VI-B).

use crate::id_dist::IdDistribution;
use crate::run::Algorithm;
use crate::table::ExperimentTable;
use opr_adversary::AdversarySpec;
use opr_sim::{ID_BITS, RANK_BITS};
use opr_types::SystemConfig;

/// Runs the experiment: Algorithm 1 over growing `N` at `t ≈ N/4`, and
/// Algorithm 4 at its minimal configurations.
pub fn run() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "T3",
        "message complexity: totals and per-message sizes vs paper bounds",
        [
            "algorithm",
            "N",
            "t",
            "rounds",
            "messages",
            "msg-bound",
            "max-msg-bits",
            "msg-bits-bound",
        ]
        .map(String::from)
        .to_vec(),
    );
    // Algorithm 1 (log schedule): message bound = rounds × N(N−1) (all-to-all
    // each step; correct senders only are counted, so measured ≤ bound).
    for n in [8usize, 16, 32] {
        let t = (n - 1) / 4;
        let cfg = SystemConfig::new(n, t).expect("valid");
        let ids = IdDistribution::SparseRandom.generate(n - t, n as u64);
        let stats = Algorithm::Alg1LogTime
            .run(cfg, &ids, t, AdversarySpec::IdForge, 2)
            .expect("run");
        let rounds = stats.rounds as u64;
        let msg_bound = rounds * (n as u64) * (n as u64 - 1);
        // Per-message: at most N+t−1 (id, rank) entries plus framing.
        let bits_bound = (n as u64 + t as u64) * (ID_BITS + RANK_BITS) + 64;
        table.push_row(vec![
            "alg1-log".into(),
            n.to_string(),
            t.to_string(),
            stats.rounds.to_string(),
            stats.messages.to_string(),
            msg_bound.to_string(),
            stats.max_message_bits.to_string(),
            bits_bound.to_string(),
        ]);
    }
    // Algorithm 4: 2N² total messages, O(N log Nmax) bits per message.
    for t in [1usize, 2, 3] {
        let n = 2 * t * t + t + 1;
        let cfg = SystemConfig::new(n, t).expect("valid");
        let ids = IdDistribution::SparseRandom.generate(n - t, t as u64 + 9);
        let stats = Algorithm::TwoStep
            .run(cfg, &ids, t, AdversarySpec::FakeFlood, 3)
            .expect("run");
        let msg_bound = 2 * (n as u64) * (n as u64);
        let bits_bound = (n as u64) * ID_BITS + 64;
        table.push_row(vec![
            "alg4-2step".into(),
            n.to_string(),
            t.to_string(),
            stats.rounds.to_string(),
            stats.messages.to_string(),
            msg_bound.to_string(),
            stats.max_message_bits.to_string(),
            bits_bound.to_string(),
        ]);
    }
    table.add_note(
        "message counts exclude self-loop deliveries and faulty senders, \
         matching the paper's counting of correct network messages",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_counts_stay_within_bounds() {
        let table = run();
        for row in &table.rows {
            let messages: u64 = row[4].parse().unwrap();
            let msg_bound: u64 = row[5].parse().unwrap();
            let max_bits: u64 = row[6].parse().unwrap();
            let bits_bound: u64 = row[7].parse().unwrap();
            assert!(messages <= msg_bound, "{}: messages", row[0]);
            assert!(max_bits <= bits_bound, "{}: message size", row[0]);
        }
    }

    #[test]
    fn alg1_messages_grow_quadratically() {
        let table = run();
        let alg1: Vec<(u64, u64)> = table
            .rows
            .iter()
            .filter(|r| r[0] == "alg1-log")
            .map(|r| (r[1].parse().unwrap(), r[4].parse().unwrap()))
            .collect();
        // Doubling N should multiply messages by ~4 (modulo the log t round
        // factor): check the growth is at least quadratic/2 and at most
        // quadratic×4.
        for w in alg1.windows(2) {
            let (n0, m0) = w[0];
            let (n1, m1) = w[1];
            let ratio = m1 as f64 / m0 as f64;
            let quad = ((n1 * n1) as f64) / ((n0 * n0) as f64);
            assert!(ratio >= quad / 2.0 && ratio <= quad * 4.0, "ratio {ratio}");
        }
    }
}
