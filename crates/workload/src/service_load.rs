//! Open-loop service workload: a seeded arrival schedule of acquire/release
//! intent for up to millions of synthetic clients.
//!
//! The service layer (`opr-service`) multiplexes many renaming instances
//! over epochs; this module generates the *demand* side deterministically,
//! so every service run is an exactly replayable function of its seeds. The
//! schedule is open-loop in the queueing sense: acquire arrivals happen at a
//! configured rate regardless of how the service is keeping up (a saturated
//! admission queue rejects them — that is the backpressure signal under
//! test, not a reason to slow arrivals down).
//!
//! Releases are described by *policy* rather than by a precomputed list:
//! every client has a deterministic hold time in epochs, and the service
//! driver materializes the release operation once the grant actually lands
//! (a release cannot be scheduled open-loop against a name that was never
//! granted — though clients that wrap around the universe *do* produce
//! release-before-grant and duplicate-acquire traffic naturally, which is
//! exactly the admission-edge behaviour the service tests exercise).

use opr_types::OriginalId;
use std::fmt;

/// A synthetic service client (tenant), identified by a dense `u64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(u64);

impl ClientId {
    /// Wraps a raw client number.
    pub const fn new(raw: u64) -> Self {
        ClientId(raw)
    }

    /// The raw client number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// splitmix64 — the same self-contained mixer `fault_placement` uses, so
/// workload generation is stable across rand-shim versions.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One acquire arrival: a client asking the service for a name, presenting
/// its original id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Arrival {
    /// Who is asking.
    pub client: ClientId,
    /// The original id the client presents to the renaming protocol.
    pub original: OriginalId,
}

/// A deterministic open-loop workload over a universe of synthetic clients.
///
/// Everything is a pure function of the fields: arrivals for an epoch can be
/// generated on demand (no per-client state, so "millions of clients" costs
/// nothing until they arrive), and two workloads with equal fields produce
/// bit-identical schedules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServiceWorkload {
    /// Size of the client universe. Arrival `k` comes from client
    /// `k mod clients`, so a universe smaller than the total arrival count
    /// wraps around: returning clients re-acquire after their release (the
    /// recycling traffic) or collide with their own live grant (the
    /// duplicate-acquire traffic).
    pub clients: u64,
    /// How many epochs of arrivals the schedule describes.
    pub epochs: u64,
    /// Acquire arrivals per epoch, independent of service state (open loop).
    pub arrivals_per_epoch: usize,
    /// Upper bound on per-client hold time; each client holds its grant for
    /// a deterministic `1 ⋯ max_hold` epochs before releasing.
    pub max_hold: u64,
    /// Workload seed (original ids, hold times).
    pub seed: u64,
}

impl ServiceWorkload {
    /// The acquire arrivals of `epoch`, in arrival order.
    pub fn arrivals(&self, epoch: u64) -> Vec<Arrival> {
        (0..self.arrivals_per_epoch as u64)
            .map(|i| {
                let k = epoch * self.arrivals_per_epoch as u64 + i;
                let client = ClientId::new(k % self.clients.max(1));
                Arrival {
                    client,
                    original: self.original_id(client),
                }
            })
            .collect()
    }

    /// The original id `client` presents — stable per client, drawn from
    /// `[1, 2⁴⁷]` so the service keeps headroom above every real id for its
    /// per-epoch filler ids.
    pub fn original_id(&self, client: ClientId) -> OriginalId {
        OriginalId::new(1 + mix(self.seed ^ 0x6f72_6967, client.raw()) % (1 << 47))
    }

    /// How many epochs `client` holds a grant before releasing it
    /// (`1 ⋯ max_hold`, deterministic per client).
    pub fn hold_epochs(&self, client: ClientId) -> u64 {
        1 + mix(self.seed ^ 0x686f_6c64, client.raw()) % self.max_hold.max(1)
    }

    /// Total acquire arrivals over the whole schedule.
    pub fn total_arrivals(&self) -> u64 {
        self.epochs * self.arrivals_per_epoch as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ServiceWorkload {
        ServiceWorkload {
            clients: 1000,
            epochs: 10,
            arrivals_per_epoch: 8,
            max_hold: 3,
            seed: 42,
        }
    }

    #[test]
    fn arrivals_are_deterministic_and_open_loop() {
        let w = base();
        assert_eq!(w.arrivals(3), w.arrivals(3));
        for epoch in 0..w.epochs {
            assert_eq!(w.arrivals(epoch).len(), w.arrivals_per_epoch);
        }
        assert_eq!(w.total_arrivals(), 80);
    }

    #[test]
    fn clients_wrap_around_the_universe() {
        let w = ServiceWorkload {
            clients: 5,
            ..base()
        };
        let first = w.arrivals(0);
        let second = w.arrivals(1);
        // 8 arrivals over 5 clients: epoch 0 reuses clients 0–2, epoch 1
        // continues the global counter.
        assert_eq!(first[0].client, ClientId::new(0));
        assert_eq!(first[5].client, ClientId::new(0));
        assert_eq!(second[0].client, ClientId::new(3));
        // A returning client always presents the same original id.
        assert_eq!(first[0].original, first[5].original);
    }

    #[test]
    fn original_ids_leave_filler_headroom() {
        let w = base();
        for c in [0u64, 1, 999, u64::MAX] {
            let id = w.original_id(ClientId::new(c));
            assert!(id.raw() >= 1 && id.raw() <= 1 << 47, "{id:?}");
        }
    }

    #[test]
    fn hold_times_are_in_range_and_vary() {
        let w = base();
        let holds: Vec<u64> = (0..100).map(|c| w.hold_epochs(ClientId::new(c))).collect();
        assert!(holds.iter().all(|&h| (1..=3).contains(&h)));
        assert!(holds.iter().any(|&h| h != holds[0]));
    }

    #[test]
    fn zero_guards_do_not_divide_by_zero() {
        let w = ServiceWorkload {
            clients: 0,
            max_hold: 0,
            ..base()
        };
        assert_eq!(w.arrivals(0)[0].client, ClientId::new(0));
        assert_eq!(w.hold_epochs(ClientId::new(7)), 1);
    }
}
