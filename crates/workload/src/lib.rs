#![warn(missing_docs)]
//! Experiment harness: workloads, sweeps and table generation.
//!
//! This crate turns the algorithm crates into *experiments*. The paper is a
//! theory paper — its "evaluation" is a set of theorems — so each experiment
//! regenerates one theorem/claim as a measured table or figure series (the
//! experiment ids T1–T5 / F1–F4 are defined in DESIGN.md §3 and reported in
//! EXPERIMENTS.md):
//!
//! * [`experiments::t1`] — step complexity of every algorithm vs `t`.
//! * [`experiments::t2`] — achieved namespace vs the paper's bounds.
//! * [`experiments::t3`] — message and bit complexity vs `N`.
//! * [`experiments::t4`] — lemma-by-lemma invariant validation under the
//!   full adversary suite.
//! * [`experiments::t5`] — behaviour at and beyond the `N > 3t` resilience
//!   boundary.
//! * [`experiments::f1`] — per-round AA convergence (measured `Δ_r` vs
//!   `σ_t` prediction).
//! * [`experiments::f2`] — namespace growth in `t` at fixed `N`.
//! * [`experiments::f3`] — rounds crossover: Algorithm 1 vs the consensus
//!   baseline.
//! * [`experiments::f4`] — 2-step discrepancy `Δ` vs the `2t²` bound.
//!
//! Supporting pieces: [`IdDistribution`] generates original-id workloads,
//! [`Algorithm`] gives every implementation (paper + baselines) a uniform
//! run interface producing [`RunStats`], [`RenamingRun`] is the builder
//! used in examples, [`ServiceWorkload`] generates the open-loop
//! acquire/release schedules the service layer (`opr-service`) consumes,
//! and [`ExperimentTable`] renders markdown/CSV.

pub mod experiments;
pub mod id_dist;
pub mod run;
pub mod service_load;
pub mod table;

pub use id_dist::IdDistribution;
pub use run::{run_grid, Algorithm, DiagnosedRun, GridPoint, RenamingRun, RunOutput, RunStats};
pub use service_load::{Arrival, ClientId, ServiceWorkload};
pub use table::ExperimentTable;
