//! Uniform run interface over the paper's algorithms and all baselines.

use opr_adversary::AdversarySpec;
use opr_baselines::{ChtRenaming, ConsensusRenaming, CrashAaRenaming, TranslatedRenaming};
use opr_core::runner::{
    run_alg1, run_alg1_observed, run_two_step_observed, run_two_step_with, Alg1Options,
    TwoStepOptions,
};
use opr_core::{Alg1Probe, TwoStepProbe};
use opr_metrics::{labeled, MetricsRegistry, MetricsSnapshot};
use opr_obs::{ProtocolEvent, RunLog, SharedSpanLog};
use opr_sim::{Actor, Inbox, Outbox, RunMetrics, Topology, Trace, TraceMode, WireSize};
use opr_transport::{BackendKind, FaultPlan, Job};
use opr_types::{
    DegradedOutcome, MalformedSend, NewName, OriginalId, Regime, RenamingError, RenamingOutcome,
    Round, SystemConfig,
};
use std::fmt;
use std::fmt::Debug;

/// Every runnable renaming implementation in the workspace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Algorithm {
    /// Algorithm 1, logarithmic voting schedule (`N > 3t`).
    Alg1LogTime,
    /// Algorithm 1, 4 voting steps (`N > t² + 2t`, strong renaming).
    Alg1ConstantTime,
    /// Algorithm 4 (`N > 2t² + t`, 2 steps).
    TwoStep,
    /// B1: crash-tolerant AA renaming (crash model).
    CrashAa,
    /// B2: consensus-based renaming (`N ≥ 4t + 2`, granted numbering).
    Consensus,
    /// B3: CHT interval-splitting renaming (crash model).
    Cht,
    /// B4: echo-translated Byzantine renaming.
    Translated,
}

impl Algorithm {
    /// All implementations, paper first.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::Alg1LogTime,
        Algorithm::Alg1ConstantTime,
        Algorithm::TwoStep,
        Algorithm::CrashAa,
        Algorithm::Consensus,
        Algorithm::Cht,
        Algorithm::Translated,
    ];

    /// A short stable label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Alg1LogTime => "alg1-log",
            Algorithm::Alg1ConstantTime => "alg1-const",
            Algorithm::TwoStep => "alg4-2step",
            Algorithm::CrashAa => "b1-crash-aa",
            Algorithm::Consensus => "b2-consensus",
            Algorithm::Cht => "b3-cht",
            Algorithm::Translated => "b4-translated",
        }
    }

    /// The smallest `N` this implementation supports for a given `t`.
    pub fn minimal_n(&self, t: usize) -> usize {
        match self {
            Algorithm::Alg1LogTime => 3 * t + 1,
            Algorithm::Alg1ConstantTime => t * t + 2 * t + 1,
            Algorithm::TwoStep => 2 * t * t + t + 1,
            Algorithm::CrashAa | Algorithm::Cht => (3 * t + 1).max(2),
            Algorithm::Consensus => 4 * t + 2,
            Algorithm::Translated => 3 * t + 1,
        }
    }

    /// The target namespace bound `M` this implementation guarantees.
    pub fn namespace_bound(&self, n: usize, t: usize) -> u64 {
        let (n64, t64) = (n as u64, t as u64);
        match self {
            Algorithm::Alg1LogTime => n64 + t64.saturating_sub(1),
            Algorithm::Alg1ConstantTime => n64,
            Algorithm::TwoStep => n64 * n64,
            // B1: names are rounded rank/2 over at most N visible ids.
            Algorithm::CrashAa => n64,
            Algorithm::Consensus => n64 + t64.saturating_sub(1),
            Algorithm::Cht => n64,
            Algorithm::Translated => 2 * n64,
        }
    }

    /// The exact number of communication steps this implementation takes.
    pub fn rounds(&self, n: usize, t: usize) -> u32 {
        match self {
            Algorithm::Alg1LogTime => 3 * opr_types::math::ceil_log2(t) + 7,
            Algorithm::Alg1ConstantTime => 8,
            Algorithm::TwoStep => 2,
            Algorithm::CrashAa => CrashAaRenaming::total_rounds(t),
            Algorithm::Consensus => ConsensusRenaming::total_rounds(t),
            Algorithm::Cht => ChtRenaming::total_rounds(n),
            Algorithm::Translated => TranslatedRenaming::total_rounds(n),
        }
    }

    /// Whether this implementation withstands the full Byzantine adversary
    /// suite (the baselines run under their canonical weaker adversaries —
    /// crash, silence or consistent forgery — as documented in
    /// `opr-baselines`).
    pub fn byzantine_suite_applicable(&self) -> bool {
        matches!(
            self,
            Algorithm::Alg1LogTime | Algorithm::Alg1ConstantTime | Algorithm::TwoStep
        )
    }

    /// Runs the implementation on `cfg` with the given correct ids and
    /// `faulty` adversarial actors, and verifies the outcome.
    ///
    /// `adversary` selects the Byzantine strategy for the paper's
    /// algorithms; baselines use their canonical adversary and record its
    /// label.
    ///
    /// # Errors
    ///
    /// Propagates [`RenamingError`] from the underlying runner.
    pub fn run(
        &self,
        cfg: SystemConfig,
        correct_ids: &[OriginalId],
        faulty: usize,
        adversary: AdversarySpec,
        seed: u64,
    ) -> Result<RunStats, RenamingError> {
        self.run_on(
            BackendKind::default_for(cfg.n()),
            cfg,
            correct_ids,
            faulty,
            adversary,
            seed,
        )
    }

    /// [`Algorithm::run`] on an explicitly chosen execution substrate.
    /// Backends are observationally equivalent, so the stats are identical;
    /// this selects how the system executes, not what it computes.
    ///
    /// # Errors
    ///
    /// Propagates [`RenamingError`] from the underlying runner.
    pub fn run_on(
        &self,
        backend: BackendKind,
        cfg: SystemConfig,
        correct_ids: &[OriginalId],
        faulty: usize,
        adversary: AdversarySpec,
        seed: u64,
    ) -> Result<RunStats, RenamingError> {
        let bound = self.namespace_bound(cfg.n(), cfg.t());
        match self {
            Algorithm::Alg1LogTime | Algorithm::Alg1ConstantTime => {
                let regime = if *self == Algorithm::Alg1LogTime {
                    Regime::LogTime
                } else {
                    Regime::ConstantTime
                };
                let result = run_alg1(
                    cfg,
                    regime,
                    correct_ids,
                    faulty,
                    |env| adversary.build_alg1(env),
                    Alg1Options {
                        seed,
                        backend,
                        ..Alg1Options::default()
                    },
                )?;
                Ok(RunStats::collect(
                    *self,
                    cfg,
                    adversary.label(),
                    &result.outcome,
                    result.rounds,
                    &result.metrics,
                    bound,
                ))
            }
            Algorithm::TwoStep => {
                let result = run_two_step_with(
                    cfg,
                    correct_ids,
                    faulty,
                    |env| adversary.build_two_step(env),
                    TwoStepOptions {
                        seed,
                        backend,
                        ..TwoStepOptions::default()
                    },
                )?;
                Ok(RunStats::collect(
                    *self,
                    cfg,
                    adversary.label(),
                    &result.outcome,
                    result.rounds,
                    &result.metrics,
                    bound,
                ))
            }
            Algorithm::CrashAa => self.run_crash_aa(backend, cfg, correct_ids, faulty, seed, bound),
            Algorithm::Consensus => {
                self.run_consensus(backend, cfg, correct_ids, faulty, seed, bound)
            }
            Algorithm::Cht => self.run_cht(backend, cfg, correct_ids, faulty, seed, bound),
            Algorithm::Translated => {
                self.run_translated(backend, cfg, correct_ids, faulty, seed, bound)
            }
        }
    }

    fn run_crash_aa(
        &self,
        backend: BackendKind,
        cfg: SystemConfig,
        correct_ids: &[OriginalId],
        faulty: usize,
        seed: u64,
        bound: u64,
    ) -> Result<RunStats, RenamingError> {
        let rounds = CrashAaRenaming::total_rounds(cfg.t());
        let fake_base = correct_ids.iter().map(|i| i.raw()).max().unwrap_or(0) + 1000;
        type B1Actor = Box<dyn Actor<Msg = opr_baselines::crash_aa::CrashMsg, Output = NewName>>;
        let mut actors: Vec<B1Actor> = Vec::new();
        for k in 0..faulty {
            let inner = CrashAaRenaming::new(cfg, OriginalId::new(fake_base + k as u64));
            let alive = 1 + (seed + k as u64) as u32 % rounds;
            actors.push(Box::new(opr_adversary::generic::CrashAfter::new(
                inner, alive,
            )));
        }
        for &id in correct_ids {
            actors.push(Box::new(CrashAaRenaming::new(cfg, id)));
        }
        run_baseline(
            *self,
            backend,
            cfg,
            "crash",
            correct_ids,
            faulty,
            actors,
            rounds,
            seed,
            bound,
        )
    }

    fn run_consensus(
        &self,
        backend: BackendKind,
        cfg: SystemConfig,
        correct_ids: &[OriginalId],
        faulty: usize,
        seed: u64,
        bound: u64,
    ) -> Result<RunStats, RenamingError> {
        let rounds = ConsensusRenaming::total_rounds(cfg.t());
        let topo = Topology::seeded(cfg.n(), seed);
        type B2Actor =
            Box<dyn Actor<Msg = opr_baselines::consensus_renaming::B2Msg, Output = NewName>>;
        let mut actors: Vec<B2Actor> = Vec::new();
        for _ in 0..faulty {
            actors.push(Box::new(opr_core::runner::SilentActor::new()));
        }
        for (offset, &id) in correct_ids.iter().enumerate() {
            let index = faulty + offset;
            actors.push(Box::new(ConsensusRenaming::new(
                cfg,
                id,
                index,
                opr_consensus::king_links_for(&topo, index),
            )));
        }
        run_baseline_with_topology(
            *self,
            backend,
            cfg,
            "silent",
            correct_ids,
            faulty,
            actors,
            rounds,
            topo,
            bound,
        )
    }

    fn run_cht(
        &self,
        backend: BackendKind,
        cfg: SystemConfig,
        correct_ids: &[OriginalId],
        faulty: usize,
        seed: u64,
        bound: u64,
    ) -> Result<RunStats, RenamingError> {
        let rounds = ChtRenaming::total_rounds(cfg.n());
        type B3Actor = Box<dyn Actor<Msg = opr_baselines::cht::ChtMsg, Output = NewName>>;
        let mut actors: Vec<B3Actor> = Vec::new();
        for _ in 0..faulty {
            actors.push(Box::new(opr_core::runner::SilentActor::new()));
        }
        for &id in correct_ids {
            actors.push(Box::new(ChtRenaming::new(cfg.n(), id)));
        }
        run_baseline(
            *self,
            backend,
            cfg,
            "crash-at-start",
            correct_ids,
            faulty,
            actors,
            rounds,
            seed,
            bound,
        )
    }

    fn run_translated(
        &self,
        backend: BackendKind,
        cfg: SystemConfig,
        correct_ids: &[OriginalId],
        faulty: usize,
        seed: u64,
        bound: u64,
    ) -> Result<RunStats, RenamingError> {
        let rounds = TranslatedRenaming::total_rounds(cfg.n());
        // Canonical adversary: forge interleaved fake ids consistently.
        let fakes: Vec<u64> = correct_ids
            .windows(2)
            .filter_map(|w| {
                let mid = w[0].raw() + (w[1].raw() - w[0].raw()) / 2;
                (mid > w[0].raw() && mid < w[1].raw()).then_some(mid)
            })
            .take(faulty)
            .collect();
        type B4Actor = Box<dyn Actor<Msg = opr_baselines::translated::B4Msg, Output = NewName>>;
        let mut actors: Vec<B4Actor> = Vec::new();
        for k in 0..faulty {
            let fake = fakes
                .get(k)
                .copied()
                .unwrap_or(correct_ids.last().map(|i| i.raw()).unwrap_or(0) + 1 + k as u64);
            actors.push(Box::new(Forger(TranslatedRenaming::new(
                cfg,
                OriginalId::new(fake),
            ))));
        }
        for &id in correct_ids {
            actors.push(Box::new(TranslatedRenaming::new(cfg, id)));
        }
        run_baseline(
            *self,
            backend,
            cfg,
            "consistent-forge",
            correct_ids,
            faulty,
            actors,
            rounds,
            seed,
            bound,
        )
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A faulty process that follows the translated protocol with a forged id
/// (and never decides).
struct Forger(TranslatedRenaming);

impl Actor for Forger {
    type Msg = opr_baselines::translated::B4Msg;
    type Output = NewName;
    fn send(&mut self, round: Round) -> Outbox<Self::Msg> {
        self.0.send(round)
    }
    fn deliver(&mut self, round: Round, inbox: Inbox<Self::Msg>) {
        self.0.deliver(round, inbox);
    }
    fn output(&self) -> Option<NewName> {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn run_baseline<M: Clone + Debug + WireSize + Send + Sync + 'static>(
    algorithm: Algorithm,
    backend: BackendKind,
    cfg: SystemConfig,
    adversary_label: &str,
    correct_ids: &[OriginalId],
    faulty: usize,
    actors: Vec<Box<dyn Actor<Msg = M, Output = NewName>>>,
    rounds: u32,
    seed: u64,
    bound: u64,
) -> Result<RunStats, RenamingError> {
    let topo = Topology::seeded(cfg.n(), seed);
    run_baseline_with_topology(
        algorithm,
        backend,
        cfg,
        adversary_label,
        correct_ids,
        faulty,
        actors,
        rounds,
        topo,
        bound,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_baseline_with_topology<M: Clone + Debug + WireSize + Send + Sync + 'static>(
    algorithm: Algorithm,
    backend: BackendKind,
    cfg: SystemConfig,
    adversary_label: &str,
    correct_ids: &[OriginalId],
    faulty: usize,
    actors: Vec<Box<dyn Actor<Msg = M, Output = NewName>>>,
    rounds: u32,
    topology: Topology,
    bound: u64,
) -> Result<RunStats, RenamingError> {
    if correct_ids.len() + faulty != cfg.n() {
        return Err(RenamingError::WrongIdCount {
            got: correct_ids.len(),
            expected: cfg.n() - faulty,
        });
    }
    let mut correct_mask = vec![false; faulty];
    correct_mask.extend(vec![true; correct_ids.len()]);
    let report = backend.execute(Job::with_faulty(actors, correct_mask, topology, rounds));
    if !report.completed {
        return Err(RenamingError::MissedTermination { budget: rounds });
    }
    let outcome = RenamingOutcome::new(
        correct_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, report.outputs[faulty + i])),
    );
    Ok(RunStats::collect(
        algorithm,
        cfg,
        adversary_label,
        &outcome,
        report.rounds_executed,
        &report.metrics,
        bound,
    ))
}

/// Measurements of one run, uniform across implementations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStats {
    /// Which implementation ran.
    pub algorithm: Algorithm,
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Adversary label.
    pub adversary: String,
    /// Rounds executed.
    pub rounds: u32,
    /// Messages sent by correct processes.
    pub messages: u64,
    /// Bits sent by correct processes.
    pub bits: u64,
    /// Largest single correct message, in bits.
    pub max_message_bits: u64,
    /// Largest name decided (None if nobody decided).
    pub max_name: Option<i64>,
    /// Renaming-property violations against the implementation's bound.
    pub violations: usize,
}

impl RunStats {
    fn collect(
        algorithm: Algorithm,
        cfg: SystemConfig,
        adversary: &str,
        outcome: &RenamingOutcome,
        rounds: u32,
        metrics: &opr_sim::RunMetrics,
        bound: u64,
    ) -> Self {
        RunStats {
            algorithm,
            n: cfg.n(),
            t: cfg.t(),
            adversary: adversary.to_owned(),
            rounds,
            messages: metrics.messages_correct(),
            bits: metrics.bits_correct(),
            max_message_bits: metrics.max_message_bits(),
            max_name: outcome.max_name().map(|n| n.raw()),
            violations: outcome.verify(bound).len(),
        }
    }
}

/// Builder for one-off runs of the paper's algorithms — the friendly entry
/// point used by the examples.
///
/// ```
/// use opr_workload::RenamingRun;
/// use opr_adversary::AdversarySpec;
/// use opr_types::{OriginalId, Regime, SystemConfig};
///
/// let cfg = SystemConfig::new(7, 2)?;
/// let ids: Vec<OriginalId> = [14u64, 3, 77, 21, 58].map(OriginalId::new).into();
/// let out = RenamingRun::builder(cfg, Regime::LogTime)
///     .correct_ids(ids)
///     .adversary(AdversarySpec::EchoSplit, 2)
///     .seed(42)
///     .run()?;
/// assert!(out.outcome.verify(cfg.namespace_bound(Regime::LogTime)).is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct RenamingRun {
    cfg: SystemConfig,
    regime: Regime,
    ids: Vec<OriginalId>,
    adversary: AdversarySpec,
    faulty: usize,
    seed: u64,
    extra_voting_steps: u32,
    backend: BackendKind,
    faults: FaultPlan,
    allow_fault_overrun: bool,
    payload_cap: Option<u64>,
    trace_capacity: Option<usize>,
    trace_mode: TraceMode,
    record_events: bool,
    spans: Option<SharedSpanLog>,
    metrics: Option<MetricsRegistry>,
}

/// The structured result of [`RenamingRun::run_diagnosed`]: what happened,
/// judged against the paper's invariants over the *healthy* correct
/// processes, with everything a chaos oracle or cross-backend comparison
/// needs alongside.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagnosedRun {
    /// The diagnosis over the healthy correct processes — correct actors
    /// whose outgoing links the fault plan does not disturb. A correct
    /// process silenced by the transport is, to every receiver,
    /// indistinguishable from a faulty one, so it is excluded from the
    /// judged set exactly as if it had been placed Byzantine.
    pub degraded: DegradedOutcome,
    /// Decisions of *all* correct processes, transport-disturbed included.
    pub full_outcome: RenamingOutcome,
    /// Network metrics (identical across backends for the same run).
    pub metrics: RunMetrics,
    /// Rounds executed.
    pub rounds: u32,
    /// Sends the transport rejected, in `(round, sender, occurrence)` order.
    pub malformed: Vec<MalformedSend>,
    /// Which actor indices were Byzantine (`true` = faulty).
    pub faulty_mask: Vec<bool>,
    /// Original ids of correct processes excluded from the judged set
    /// because the fault plan disturbs their outgoing links.
    pub excluded: Vec<OriginalId>,
    /// Delivery events, present iff [`RenamingRun::trace`] requested them.
    pub trace: Option<Trace>,
    /// Per-process protocol event streams, present iff
    /// [`RenamingRun::record_events`] requested them. Deterministic:
    /// bit-identical across backends and job counts for the same run.
    pub events: Option<RunLog>,
}

impl DiagnosedRun {
    /// The effective fault load: Byzantine actors plus correct processes
    /// whose outgoing links the fault plan disturbs. This is the number the
    /// chaos budget regimes compare against `t`.
    pub fn effective_faults(&self) -> usize {
        self.faulty_mask.iter().filter(|&&f| f).count() + self.excluded.len()
    }

    /// Fold the run into a deterministic [`MetricsSnapshot`]: message and
    /// wire-bit counters, per-round message-count histogram, fault gauges,
    /// and — when [`RenamingRun::record_events`] was requested — quorum
    /// crossings, vote verdicts and decisions from the event streams.
    ///
    /// Everything here is a pure function of the run's deterministic
    /// artefacts, so the snapshot is bit-identical across Sim/Threaded/
    /// Pooled backends and any job count (the equivalence suites pin this).
    /// Wall-clock timings never appear in it.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.add_counter("opr_rounds_total", u64::from(self.rounds));
        snap.add_counter(
            labeled("opr_messages_total", &[("class", "correct")]),
            self.metrics.messages_correct(),
        );
        snap.add_counter(
            labeled("opr_messages_total", &[("class", "faulty")]),
            self.metrics.messages_faulty(),
        );
        snap.add_counter("opr_wire_bits_total", self.metrics.bits_correct());
        snap.add_counter("opr_malformed_sends_total", self.malformed.len() as u64);
        snap.set_gauge(
            "opr_max_message_bits",
            self.metrics.max_message_bits() as i64,
        );
        snap.set_gauge("opr_effective_faults", self.effective_faults() as i64);
        snap.set_gauge("opr_excluded_processes", self.excluded.len() as i64);
        for round in self.metrics.per_round() {
            snap.record(
                "opr_round_messages",
                round.messages_correct + round.messages_faulty,
            );
        }
        if let Some(log) = &self.events {
            let quorum = |snap: &mut MetricsSnapshot, kind: &str| {
                snap.add_counter(labeled("opr_quorum_crossings_total", &[("kind", kind)]), 1);
            };
            for process in &log.processes {
                for event in &process.events {
                    match event {
                        ProtocolEvent::EchoThreshold { kept: true, .. } => {
                            quorum(&mut snap, "echo")
                        }
                        ProtocolEvent::ReadyThreshold { timely: true, .. } => {
                            quorum(&mut snap, "ready")
                        }
                        ProtocolEvent::AcceptThreshold { accepted: true, .. } => {
                            quorum(&mut snap, "accept")
                        }
                        ProtocolEvent::VoteAccepted { .. } => snap
                            .add_counter(labeled("opr_votes_total", &[("verdict", "accepted")]), 1),
                        ProtocolEvent::VoteRejected { .. } => snap
                            .add_counter(labeled("opr_votes_total", &[("verdict", "rejected")]), 1),
                        ProtocolEvent::Decided { .. } => snap.add_counter("opr_decisions_total", 1),
                        _ => {}
                    }
                }
            }
        }
        snap
    }
}

/// The result of a [`RenamingRun`].
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// The decided names.
    pub outcome: RenamingOutcome,
    /// Uniform measurements.
    pub stats: RunStats,
    /// Voting-phase probes (Algorithm 1 only).
    pub alg1_probe: Option<Alg1Probe>,
    /// Name-table probes (Algorithm 4 only).
    pub two_step_probe: Option<TwoStepProbe>,
}

impl RenamingRun {
    /// Starts a builder for `regime` on `cfg`.
    pub fn builder(cfg: SystemConfig, regime: Regime) -> Self {
        RenamingRun {
            cfg,
            regime,
            ids: Vec::new(),
            adversary: AdversarySpec::Silent,
            faulty: 0,
            seed: 0,
            extra_voting_steps: 0,
            backend: BackendKind::default_for(cfg.n()),
            faults: FaultPlan::default(),
            allow_fault_overrun: false,
            payload_cap: None,
            trace_capacity: None,
            trace_mode: TraceMode::KeepFirst,
            record_events: false,
            spans: None,
            metrics: None,
        }
    }

    /// Sets the correct processes' original ids.
    pub fn correct_ids<I>(mut self, ids: I) -> Self
    where
        I: IntoIterator<Item = OriginalId>,
    {
        self.ids = ids.into_iter().collect();
        self
    }

    /// Sets the Byzantine strategy and how many faulty actors run it.
    pub fn adversary(mut self, spec: AdversarySpec, count: usize) -> Self {
        self.adversary = spec;
        self.faulty = count;
        self
    }

    /// Sets the run seed (topology labels, fault placement, randomized
    /// strategies).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds voting steps beyond the paper's schedule (margin studies).
    pub fn extra_voting_steps(mut self, extra: u32) -> Self {
        self.extra_voting_steps = extra;
        self
    }

    /// Selects the execution substrate (default: the single-threaded
    /// simulator; `BackendKind::Threaded` runs one OS thread per process
    /// with identical observable results).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches a transport-level fault plan (drops, link silences,
    /// crash-style process silences) applied below the adversary layer.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Allows more Byzantine actors than the fault bound `t` — the chaos
    /// campaign's over-budget regime. Use with [`RenamingRun::run_diagnosed`];
    /// the strict [`RenamingRun::run`] will then typically report a missed
    /// termination.
    pub fn allow_fault_overrun(mut self) -> Self {
        self.allow_fault_overrun = true;
        self
    }

    /// Caps message payloads at `cap` wire bits; wider sends are recorded
    /// as malformed and dropped at the transport.
    pub fn payload_cap(mut self, cap: u64) -> Self {
        self.payload_cap = Some(cap);
        self
    }

    /// Records up to `capacity` delivery events, returned in
    /// [`DiagnosedRun::trace`] (only `run_diagnosed` surfaces them).
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Selects which events a full trace buffer keeps (default: the oldest;
    /// [`TraceMode::KeepLast`] keeps a ring of the newest for forensics).
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Attaches a deterministic protocol-event recorder to every correct
    /// actor; [`DiagnosedRun::events`] then carries the per-process streams.
    pub fn record_events(mut self) -> Self {
        self.record_events = true;
        self
    }

    /// Attaches a wall-clock span log; the substrate records one span per
    /// executed round (observability only, never part of the deterministic
    /// result).
    pub fn spans(mut self, spans: SharedSpanLog) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Attaches a live metrics registry; the substrate records per-round
    /// wall-clock histograms into it. Wall plane only — for the
    /// deterministic aggregates, use [`DiagnosedRun::metrics_snapshot`].
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Executes the run.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError`] on invalid configuration or if a correct
    /// process misses its termination deadline.
    pub fn run(self) -> Result<RunOutput, RenamingError> {
        match self.regime {
            Regime::LogTime | Regime::ConstantTime => {
                let spec = self.adversary;
                let result = run_alg1(
                    self.cfg,
                    self.regime,
                    &self.ids,
                    self.faulty,
                    |env| spec.build_alg1(env),
                    Alg1Options {
                        seed: self.seed,
                        allow_regime_violation: false,
                        tweaks: opr_core::Alg1Tweaks {
                            extra_voting_steps: self.extra_voting_steps,
                            ..opr_core::Alg1Tweaks::default()
                        },
                        backend: self.backend,
                        faults: self.faults.clone(),
                        allow_fault_overrun: self.allow_fault_overrun,
                        payload_cap: self.payload_cap,
                        trace_capacity: None,
                        metrics: self.metrics.clone(),
                        ..Alg1Options::default()
                    },
                )?;
                let algorithm = if self.regime == Regime::LogTime {
                    Algorithm::Alg1LogTime
                } else {
                    Algorithm::Alg1ConstantTime
                };
                let stats = RunStats::collect(
                    algorithm,
                    self.cfg,
                    spec.label(),
                    &result.outcome,
                    result.rounds,
                    &result.metrics,
                    self.cfg.namespace_bound(self.regime),
                );
                Ok(RunOutput {
                    outcome: result.outcome,
                    stats,
                    alg1_probe: Some(result.probe),
                    two_step_probe: None,
                })
            }
            Regime::TwoStep => {
                let spec = self.adversary;
                let result = run_two_step_with(
                    self.cfg,
                    &self.ids,
                    self.faulty,
                    |env| spec.build_two_step(env),
                    TwoStepOptions {
                        seed: self.seed,
                        backend: self.backend,
                        faults: self.faults.clone(),
                        allow_fault_overrun: self.allow_fault_overrun,
                        payload_cap: self.payload_cap,
                        metrics: self.metrics.clone(),
                        ..TwoStepOptions::default()
                    },
                )?;
                let stats = RunStats::collect(
                    Algorithm::TwoStep,
                    self.cfg,
                    spec.label(),
                    &result.outcome,
                    result.rounds,
                    &result.metrics,
                    self.cfg.namespace_bound(Regime::TwoStep),
                );
                Ok(RunOutput {
                    outcome: result.outcome,
                    stats,
                    alg1_probe: None,
                    two_step_probe: Some(result.probe),
                })
            }
        }
    }

    /// Executes the run and *diagnoses* it instead of judging it: missed
    /// terminations, property violations and malformed sends become entries
    /// in a [`DegradedOutcome`] rather than errors. Correct processes whose
    /// outgoing links the fault plan disturbs are excluded from the judged
    /// set (they are indistinguishable from faulty processes to everyone
    /// else); their decisions remain visible in
    /// [`DiagnosedRun::full_outcome`].
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError`] only for setups the runner cannot even
    /// start: invalid configurations, bad id sets, or (unless
    /// [`RenamingRun::allow_fault_overrun`] was called) too many faulty
    /// actors.
    pub fn run_diagnosed(self) -> Result<DiagnosedRun, RenamingError> {
        let bound = self.cfg.namespace_bound(self.regime);
        let expected_rounds = self.cfg.total_steps(self.regime) + self.extra_voting_steps;
        let spec = self.adversary;
        // Erase the probe type so both algorithm families share the
        // diagnosis below.
        let (
            outcome,
            metrics,
            rounds,
            step_budget,
            malformed,
            faulty_mask,
            trace,
            events,
            correct_malformed,
        ) = match self.regime {
            Regime::LogTime | Regime::ConstantTime => {
                let o = run_alg1_observed(
                    self.cfg,
                    self.regime,
                    &self.ids,
                    self.faulty,
                    |env| spec.build_alg1(env),
                    Alg1Options {
                        seed: self.seed,
                        allow_regime_violation: false,
                        tweaks: opr_core::Alg1Tweaks {
                            extra_voting_steps: self.extra_voting_steps,
                            ..opr_core::Alg1Tweaks::default()
                        },
                        backend: self.backend,
                        faults: self.faults.clone(),
                        allow_fault_overrun: self.allow_fault_overrun,
                        payload_cap: self.payload_cap,
                        trace_capacity: self.trace_capacity,
                        trace_mode: self.trace_mode,
                        record_events: self.record_events,
                        spans: self.spans.clone(),
                        metrics: self.metrics.clone(),
                    },
                )?;
                let cm = o.correct_malformed();
                (
                    o.outcome,
                    o.metrics,
                    o.rounds,
                    o.step_budget,
                    o.malformed,
                    o.faulty_mask,
                    o.trace,
                    o.events,
                    cm,
                )
            }
            Regime::TwoStep => {
                let o = run_two_step_observed(
                    self.cfg,
                    &self.ids,
                    self.faulty,
                    |env| spec.build_two_step(env),
                    TwoStepOptions {
                        seed: self.seed,
                        backend: self.backend,
                        faults: self.faults.clone(),
                        allow_fault_overrun: self.allow_fault_overrun,
                        payload_cap: self.payload_cap,
                        trace_capacity: self.trace_capacity,
                        trace_mode: self.trace_mode,
                        record_events: self.record_events,
                        spans: self.spans.clone(),
                        metrics: self.metrics.clone(),
                        ..TwoStepOptions::default()
                    },
                )?;
                let cm = o.correct_malformed();
                (
                    o.outcome,
                    o.metrics,
                    o.rounds,
                    o.step_budget,
                    o.malformed,
                    o.faulty_mask,
                    o.trace,
                    o.events,
                    cm,
                )
            }
        };
        // Judged set: correct actors without transport faults on their
        // outgoing links. Ids were assigned to non-Byzantine indices in
        // caller order, so walk the mask to recover index → id.
        let disturbed = self.faults.disturbed_senders();
        let mut id_iter = self.ids.iter().copied();
        let mut excluded = Vec::new();
        let mut judged: Vec<(OriginalId, Option<NewName>)> = Vec::new();
        for (index, &is_faulty) in faulty_mask.iter().enumerate() {
            if is_faulty {
                continue;
            }
            let id = id_iter.next().expect("id count checked by the runner");
            if disturbed.contains(&index) {
                excluded.push(id);
            } else {
                judged.push((id, outcome.name_of(id)));
            }
        }
        let judged_completed = judged.iter().all(|(_, name)| name.is_some());
        let degraded = DegradedOutcome::diagnose(
            RenamingOutcome::new(judged),
            rounds,
            judged_completed,
            step_budget,
            expected_rounds,
            bound,
            &correct_malformed,
        );
        Ok(DiagnosedRun {
            degraded,
            full_outcome: outcome,
            metrics,
            rounds,
            malformed,
            faulty_mask,
            excluded,
            trace,
            events,
        })
    }
}

/// One cell of an experiment grid: everything [`Algorithm::run_on`] needs,
/// owned, so the cell can be shipped to a pool worker.
#[derive(Clone, Debug)]
pub struct GridPoint {
    /// Which implementation to run.
    pub algorithm: Algorithm,
    /// The system configuration.
    pub cfg: SystemConfig,
    /// The correct processes' original ids.
    pub correct_ids: Vec<OriginalId>,
    /// How many Byzantine actors to place.
    pub faulty: usize,
    /// The Byzantine strategy (paper algorithms; baselines use their
    /// canonical adversary).
    pub adversary: AdversarySpec,
    /// The run seed.
    pub seed: u64,
    /// The execution substrate.
    pub backend: BackendKind,
}

impl GridPoint {
    /// Executes this cell.
    ///
    /// # Errors
    ///
    /// Propagates [`RenamingError`] from the underlying runner.
    pub fn run(&self) -> Result<RunStats, RenamingError> {
        self.algorithm.run_on(
            self.backend,
            self.cfg,
            &self.correct_ids,
            self.faulty,
            self.adversary,
            self.seed,
        )
    }
}

/// Executes an experiment grid on `pool`, returning results in grid order —
/// exactly the sequence a serial loop over [`GridPoint::run`] would produce
/// (cells are independent deterministic runs, and the pool reassembles in
/// submission order). A cell that panics re-panics here, matching serial
/// semantics.
pub fn run_grid(
    pool: &opr_exec::RunPool,
    points: Vec<GridPoint>,
) -> Vec<Result<RunStats, RenamingError>> {
    let tasks: Vec<_> = points
        .into_iter()
        .map(|point| move || point.run())
        .collect();
    pool.run_batch(tasks)
        .into_iter()
        .map(|result| result.unwrap_or_else(|panic| std::panic::panic_any(panic.message)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdDistribution;

    #[test]
    fn every_algorithm_runs_cleanly_under_its_canonical_adversary() {
        for alg in Algorithm::ALL {
            let t = 1usize;
            let n = alg.minimal_n(t).max(6);
            let cfg = SystemConfig::new(n, t).unwrap();
            let ids = IdDistribution::SparseRandom.generate(n - t, 11);
            let stats = alg
                .run(cfg, &ids, t, AdversarySpec::Silent, 5)
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert_eq!(stats.violations, 0, "{alg}");
            assert_eq!(stats.rounds, alg.rounds(n, t), "{alg}");
            assert!(stats.max_name.is_some(), "{alg}");
            assert!(stats.messages > 0, "{alg}");
        }
    }

    #[test]
    fn builder_runs_two_step() {
        let cfg = SystemConfig::new(11, 2).unwrap();
        let ids = IdDistribution::Clustered.generate(9, 3);
        let out = RenamingRun::builder(cfg, Regime::TwoStep)
            .correct_ids(ids)
            .adversary(AdversarySpec::FakeFlood, 2)
            .seed(8)
            .run()
            .unwrap();
        assert_eq!(out.stats.violations, 0);
        assert!(out.two_step_probe.is_some());
        assert!(out.alg1_probe.is_none());
    }

    #[test]
    fn builder_runs_alg1_with_probe() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let ids = IdDistribution::EvenSpaced.generate(5, 4);
        let out = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids)
            .adversary(AdversarySpec::RankSkew, 2)
            .seed(1)
            .run()
            .unwrap();
        assert_eq!(out.stats.violations, 0);
        let probe = out.alg1_probe.unwrap();
        assert!(!probe.spread_series().is_empty());
    }

    #[test]
    fn rounds_formulas_agree_with_measurements() {
        // Cross-check Algorithm::rounds against actual executions for a
        // couple of (n, t) points per implementation.
        for (alg, t) in [
            (Algorithm::Alg1LogTime, 2usize),
            (Algorithm::TwoStep, 2),
            (Algorithm::Consensus, 1),
            (Algorithm::CrashAa, 2),
        ] {
            let n = alg.minimal_n(t);
            let cfg = SystemConfig::new(n, t).unwrap();
            let ids = IdDistribution::Dense.generate(n - t, 2);
            let stats = alg.run(cfg, &ids, t, AdversarySpec::Silent, 3).unwrap();
            assert_eq!(stats.rounds, alg.rounds(n, t), "{alg}");
        }
    }

    #[test]
    fn run_rejects_bad_setups_uniformly() {
        use opr_types::RenamingError;
        let cfg = SystemConfig::new(7, 2).unwrap();
        // Wrong id count for every implementation that runs at (7, 2).
        for alg in [
            Algorithm::Alg1LogTime,
            Algorithm::CrashAa,
            Algorithm::Cht,
            Algorithm::Translated,
        ] {
            let too_few = IdDistribution::Dense.generate(3, 1);
            let err = alg
                .run(cfg, &too_few, 2, AdversarySpec::Silent, 1)
                .unwrap_err();
            assert!(
                matches!(err, RenamingError::WrongIdCount { .. }),
                "{alg}: {err}"
            );
        }
    }

    #[test]
    fn builder_rejects_regime_violation() {
        let cfg = SystemConfig::new(7, 2).unwrap(); // 7 ≤ 2t²+t = 10
        let ids = IdDistribution::Dense.generate(5, 1);
        let err = RenamingRun::builder(cfg, Regime::TwoStep)
            .correct_ids(ids)
            .adversary(AdversarySpec::Silent, 2)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            opr_types::RenamingError::Config(opr_types::ConfigError::RegimeViolated { .. })
        ));
    }

    #[test]
    fn diagnosed_clean_run_reports_clean() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let ids = IdDistribution::EvenSpaced.generate(5, 4);
        let d = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids)
            .adversary(AdversarySpec::EchoSplit, 2)
            .seed(9)
            .run_diagnosed()
            .unwrap();
        assert!(d.degraded.is_clean(), "{:?}", d.degraded.violations);
        assert!(d.excluded.is_empty());
        assert_eq!(d.effective_faults(), 2);
        assert!(d.malformed.is_empty());
    }

    #[test]
    fn diagnosed_run_excludes_transport_disturbed_processes() {
        // One Byzantine actor plus one correct process crashed by the
        // transport from round 1: the crashed process leaves the judged set
        // (budget 2 = t), and the remaining healthy processes must still
        // rename cleanly.
        let cfg = SystemConfig::new(7, 2).unwrap();
        let ids = IdDistribution::EvenSpaced.generate(6, 4);
        let seed = 11;
        let mask = opr_core::fault_placement(cfg.n(), 1, seed);
        let victim = mask
            .iter()
            .position(|&f| !f)
            .expect("some process is correct");
        let d = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids)
            .adversary(AdversarySpec::Silent, 1)
            .seed(seed)
            .faults(FaultPlan::new().crash_from(victim, Round::FIRST))
            .run_diagnosed()
            .unwrap();
        assert_eq!(d.excluded.len(), 1);
        assert_eq!(d.effective_faults(), 2);
        assert!(d.degraded.is_clean(), "{:?}", d.degraded.violations);
        assert_eq!(d.degraded.outcome.len(), 5);
    }

    #[test]
    fn diagnosed_over_budget_degrades_without_error() {
        // 3 silent Byzantine actors against t = 2: over budget. The run must
        // come back as a diagnosis, whatever the protocol managed to do.
        let cfg = SystemConfig::new(7, 2).unwrap();
        let ids = IdDistribution::EvenSpaced.generate(4, 4);
        let d = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids)
            .adversary(AdversarySpec::Silent, 3)
            .seed(2)
            .allow_fault_overrun()
            .run_diagnosed()
            .unwrap();
        assert_eq!(d.effective_faults(), 3);
        // Clean or violated, both are legitimate over budget — the contract
        // is a structured report, which `digest` summarizes either way.
        assert!(!d.degraded.digest().is_empty());
    }

    #[test]
    fn run_grid_is_observably_serial_at_any_worker_count() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let points: Vec<GridPoint> = (0..6u64)
            .map(|seed| GridPoint {
                algorithm: Algorithm::Alg1LogTime,
                cfg,
                correct_ids: IdDistribution::SparseRandom.generate(5, seed * 7 + 1),
                faulty: 2,
                adversary: AdversarySpec::EchoSplit,
                seed,
                backend: BackendKind::default(),
            })
            .collect();
        let serial: Vec<_> = points.iter().map(GridPoint::run).collect();
        let pooled = run_grid(&opr_exec::RunPool::new(4), points);
        assert_eq!(serial, pooled);
    }

    #[test]
    fn diagnosed_run_surfaces_a_trace_on_request() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let ids = IdDistribution::EvenSpaced.generate(5, 4);
        let build = || {
            RenamingRun::builder(cfg, Regime::LogTime)
                .correct_ids(ids.clone())
                .adversary(AdversarySpec::EchoSplit, 2)
                .seed(9)
        };
        let untraced = build().run_diagnosed().unwrap();
        assert!(untraced.trace.is_none());
        let traced = build().trace(100_000).run_diagnosed().unwrap();
        let trace = traced.trace.as_ref().expect("trace requested");
        assert!(!trace.events().is_empty());
        assert_eq!(trace.dropped(), 0);
        // Tracing observes the run without perturbing it.
        assert_eq!(untraced.degraded, traced.degraded);
        assert_eq!(untraced.metrics, traced.metrics);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = Algorithm::ALL.iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Algorithm::ALL.len());
    }
}
