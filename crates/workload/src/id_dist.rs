//! Original-id workload generators.
//!
//! The renaming problem is motivated by ids drawn from a huge namespace
//! (`N_max ≫ N`), and the algorithms' behaviour depends on the id *layout*
//! only through ordering — but adversaries interact with layout (fake ids
//! interleave between correct ones), so experiments sweep several shapes.

use opr_types::OriginalId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt;

/// A named distribution of original ids.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum IdDistribution {
    /// `1, 2, …, k` — the degenerate case where renaming is a no-op.
    Dense,
    /// Uniform over the full 48-bit namespace — the motivating case.
    SparseRandom,
    /// A few tight clusters far apart — stresses interleaving fakes.
    Clustered,
    /// Consecutive even numbers — every gap admits exactly one fake
    /// (adversarial interleaving is maximally effective).
    EvenSpaced,
}

impl IdDistribution {
    /// All distributions.
    pub const ALL: [IdDistribution; 4] = [
        IdDistribution::Dense,
        IdDistribution::SparseRandom,
        IdDistribution::Clustered,
        IdDistribution::EvenSpaced,
    ];

    /// A short stable label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            IdDistribution::Dense => "dense",
            IdDistribution::SparseRandom => "sparse-random",
            IdDistribution::Clustered => "clustered",
            IdDistribution::EvenSpaced => "even-spaced",
        }
    }

    /// Generates `count` distinct ids.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<OriginalId> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6964_6469_7374);
        let mut set = BTreeSet::new();
        match self {
            IdDistribution::Dense => {
                for i in 1..=count as u64 {
                    set.insert(i);
                }
            }
            IdDistribution::SparseRandom => {
                while set.len() < count {
                    set.insert(rng.gen_range(1..(1u64 << 48)));
                }
            }
            IdDistribution::Clustered => {
                let clusters = (count / 4).max(1);
                'outer: loop {
                    for _ in 0..clusters {
                        let base = rng.gen_range(1..(1u64 << 40));
                        for off in 0..4u64 {
                            set.insert(base + off);
                            if set.len() >= count {
                                break 'outer;
                            }
                        }
                    }
                }
            }
            IdDistribution::EvenSpaced => {
                let base = rng.gen_range(1..1u64 << 20) * 2;
                for i in 0..count as u64 {
                    set.insert(base + 2 * i);
                }
            }
        }
        set.into_iter().take(count).map(OriginalId::new).collect()
    }
}

impl fmt::Display for IdDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_distributions_generate_distinct_sorted_ids() {
        for dist in IdDistribution::ALL {
            for count in [1usize, 5, 16, 33] {
                let ids = dist.generate(count, 7);
                assert_eq!(ids.len(), count, "{dist} count {count}");
                assert!(
                    ids.windows(2).all(|w| w[0] < w[1]),
                    "{dist}: ids must be distinct and sorted"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        for dist in IdDistribution::ALL {
            assert_eq!(dist.generate(10, 3), dist.generate(10, 3));
        }
        assert_ne!(
            IdDistribution::SparseRandom.generate(10, 3),
            IdDistribution::SparseRandom.generate(10, 4)
        );
    }

    #[test]
    fn dense_is_one_to_count() {
        let ids = IdDistribution::Dense.generate(5, 99);
        let raws: Vec<u64> = ids.iter().map(|i| i.raw()).collect();
        assert_eq!(raws, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn even_spaced_has_unit_gaps_for_fakes() {
        let ids = IdDistribution::EvenSpaced.generate(8, 1);
        for w in ids.windows(2) {
            assert_eq!(w[1].raw() - w[0].raw(), 2);
        }
    }
}
