//! Experiment tables: the uniform output format of every experiment.

use std::fmt;

/// A rendered experiment result: header, rows, and footnotes.
///
/// # Example
///
/// ```
/// use opr_workload::ExperimentTable;
/// let mut table = ExperimentTable::new("T0", "demo", vec!["x".into(), "y".into()]);
/// table.push_row(vec!["1".into(), "2".into()]);
/// table.add_note("numbers are illustrative");
/// assert!(table.to_markdown().contains("| 1 | 2 |"));
/// assert_eq!(table.to_csv().lines().count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentTable {
    /// Experiment id (T1…T5, F1…F4).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows (each the same length as `columns`).
    pub rows: Vec<Vec<String>>,
    /// Footnotes explaining methodology or caveats.
    pub notes: Vec<String>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: Vec<String>) -> Self {
        ExperimentTable {
            id: id.to_owned(),
            title: title.to_owned(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(row);
    }

    /// Appends a footnote.
    pub fn add_note(&mut self, note: &str) {
        self.notes.push(note.to_owned());
    }

    /// Finds the column index by name.
    ///
    /// # Panics
    ///
    /// Panics if no such column exists.
    pub fn column_index(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column named {name:?}"))
    }

    /// All values of one column.
    pub fn column(&self, name: &str) -> Vec<&str> {
        let idx = self.column_index(name);
        self.rows.iter().map(|r| r[idx].as_str()).collect()
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }

    /// Renders CSV (header + rows; notes omitted).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = self
            .columns
            .iter()
            .map(|c| escape(c))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out.pop();
        out
    }
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentTable {
        let mut t = ExperimentTable::new("T9", "sample", vec!["a".into(), "b".into(), "c".into()]);
        t.push_row(vec!["1".into(), "x,y".into(), "z\"q".into()]);
        t.push_row(vec!["2".into(), "m".into(), "n".into()]);
        t.add_note("note one");
        t
    }

    #[test]
    fn markdown_has_header_separator_rows_notes() {
        let md = sample().to_markdown();
        assert!(md.contains("### T9 — sample"));
        assert!(md.contains("| a | b | c |"));
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| 2 | m | n |"));
        assert!(md.contains("> note one"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b,c");
        assert_eq!(lines[1], "1,\"x,y\",\"z\"\"q\"");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn column_lookup() {
        let t = sample();
        assert_eq!(t.column("a"), vec!["1", "2"]);
        assert_eq!(t.column_index("c"), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = ExperimentTable::new("X", "x", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn rejects_unknown_column() {
        let _ = sample().column_index("zz");
    }
}
