//! Differential properties: the word-parallel slot-bitset flood
//! (`EchoReadyFlood`) against the seed set-based accumulation (`SetFlood`)
//! on identical, adversarially-shaped inputs — same `FloodResult`, same
//! observer decision sequence, same outgoing payloads, same wire accounting.

use opr_rbcast::reference::SetFlood;
use opr_rbcast::{EchoReadyFlood, FloodMsg, FloodObserver, IdInterner, IdSlotSet};
use opr_sim::{WireSize, COUNT_BITS, ID_BITS, TAG_BITS};
use opr_types::LinkId;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Val(u32);

impl WireSize for Val {
    fn wire_bits(&self) -> u64 {
        ID_BITS
    }
}

/// Every observer callback, flattened to a comparable event.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Event {
    Seen(u32, LinkId, Val),
    Echo(u32, Val, usize, usize, bool),
    Ready(u32, Val, usize, usize, usize, bool, bool),
    Accept(u32, Val, usize, usize, bool),
}

#[derive(Default)]
struct Recorder(Vec<Event>);

impl FloodObserver<Val> for Recorder {
    fn id_seen(&mut self, step: u32, link: LinkId, value: &Val) {
        self.0.push(Event::Seen(step, link, *value));
    }
    fn echo_threshold(&mut self, step: u32, v: &Val, echoes: usize, quorum: usize, kept: bool) {
        self.0.push(Event::Echo(step, *v, echoes, quorum, kept));
    }
    fn ready_threshold(
        &mut self,
        step: u32,
        v: &Val,
        readies: usize,
        quorum: usize,
        weak: usize,
        timely: bool,
        relayed: bool,
    ) {
        self.0.push(Event::Ready(
            step, *v, readies, quorum, weak, timely, relayed,
        ));
    }
    fn accept_threshold(&mut self, step: u32, v: &Val, readies: usize, quorum: usize, acc: bool) {
        self.0.push(Event::Accept(step, *v, readies, quorum, acc));
    }
}

/// One adversarial message as generated data: which link sends it, what
/// kind it claims to be, and the raw (possibly duplicated) value list.
#[derive(Clone, Debug)]
struct RawMsg {
    link: usize,
    kind: u8,
    values: Vec<u32>,
    /// Build the slot set against the receiver's interner (`true`, the
    /// shared fast path) or a fresh foreign one (`false`, the rebase path —
    /// values the receiver has never interned arrive this way).
    shared: bool,
}

fn raw_msg(n: usize) -> impl Strategy<Value = RawMsg> {
    (
        0..n,
        0u8..3,
        proptest::collection::vec(0u32..12, 0..6),
        0u8..2,
    )
        .prop_map(|(link, kind, values, shared)| RawMsg {
            link,
            kind,
            values,
            shared: shared == 1,
        })
}

/// A full 4-step inbox schedule.
fn schedule(n: usize) -> impl Strategy<Value = Vec<Vec<RawMsg>>> {
    proptest::collection::vec(proptest::collection::vec(raw_msg(n), 0..12), 4..5)
}

fn materialize(raw: &RawMsg, receiver: &IdInterner<Val>) -> (LinkId, FloodMsg<Val>) {
    let link = LinkId::new(raw.link + 1);
    let vals: Vec<Val> = raw.values.iter().map(|&v| Val(v)).collect();
    let foreign = IdInterner::new();
    let interner = if raw.shared { receiver } else { &foreign };
    let msg = match raw.kind {
        0 => FloodMsg::Init(vals.first().copied().unwrap_or(Val(0))),
        1 => FloodMsg::Echo(IdSlotSet::from_values(interner, vals)),
        _ => FloodMsg::Ready(IdSlotSet::from_values(interner, vals)),
    };
    (link, msg)
}

proptest! {
    /// The tentpole's semantic contract: for any adversarial Echo/Ready
    /// payload schedule — wrong-step message kinds, duplicate values,
    /// values the receiver has never interned, foreign-interner encodings —
    /// the bitset flood and the seed set flood produce the same outgoing
    /// value sets, the same observer event sequence, and the same final
    /// `FloodResult`.
    #[test]
    fn bitset_flood_matches_set_flood(
        (n, t) in (4usize..9).prop_flat_map(|n| (Just(n), 1usize..=(n - 1) / 3)),
        initial in 0u32..13,
        steps in schedule(8),
    ) {
        // 12 is outside the value domain: treat it as "no announcement".
        let initial = (initial < 12).then_some(Val(initial));
        let mut fast = EchoReadyFlood::new(n, t, initial);
        let mut slow = SetFlood::new(n, t, initial);
        let mut fast_obs = Recorder::default();
        let mut slow_obs = Recorder::default();
        for (i, raws) in steps.iter().enumerate() {
            let step = i as u32 + 1;
            // Outgoing payloads must carry the same value sets.
            let sent = fast.send(step);
            let sent_values: Vec<Val> = match &sent {
                Some(FloodMsg::Init(v)) => vec![*v],
                Some(FloodMsg::Echo(s)) | Some(FloodMsg::Ready(s)) => s.values_sorted(),
                None => Vec::new(),
            };
            prop_assert_eq!(sent_values, slow.send_values(step));
            let inbox: Vec<(LinkId, FloodMsg<Val>)> = raws
                .iter()
                .map(|raw| materialize(raw, fast.interner()))
                .collect();
            fast.deliver_observed(step, inbox.iter().map(|(l, m)| (*l, m)), &mut fast_obs);
            slow.deliver_observed(step, inbox.iter().map(|(l, m)| (*l, m)), &mut slow_obs);
            prop_assert_eq!(&fast_obs.0, &slow_obs.0, "diverged at step {}", step);
        }
        prop_assert_eq!(fast.result(), slow.result());
        prop_assert!(fast.result().is_some());
    }

    /// Wire-accounting invariant: a bitset `FloodMsg` reports exactly the
    /// bits of the seed per-id encoding, `TAG + COUNT + Σ id.wire_bits()`,
    /// for any id set — slot numbering and word layout never leak into
    /// metrics.
    #[test]
    fn bitset_wire_bits_equal_seed_per_id_encoding(
        ids in proptest::collection::btree_set(0u32..2000, 0..80),
        ready in 0u8..2,
        shared_offset in 0u32..50,
    ) {
        let ready = ready == 1;
        // Interners with different slot histories must report identical
        // sizes for the same value set.
        let fresh = IdInterner::new();
        let warmed = IdInterner::new();
        for pre in 0..shared_offset {
            warmed.intern(&Val(pre * 37));
        }
        let expected: u64 =
            TAG_BITS + COUNT_BITS + ids.iter().map(|_| ID_BITS).sum::<u64>();
        for interner in [&fresh, &warmed] {
            let set = IdSlotSet::from_values(interner, ids.iter().map(|&v| Val(v)));
            let msg = if ready {
                FloodMsg::Ready(set)
            } else {
                FloodMsg::Echo(set)
            };
            prop_assert_eq!(msg.wire_bits(), expected);
        }
    }
}
