//! The seed set-based flood accumulation, kept as a differential oracle.
//!
//! [`SetFlood`] is the pre-interning implementation of the 4-step flood:
//! `BTreeSet` working sets and `BTreeMap<V, BTreeSet<LinkId>>` link
//! accumulation, exactly as the repository shipped it before the slot-bitset
//! core. It consumes the same [`FloodMsg`] payloads (decoding each bitset
//! back to values, as any non-interning receiver would) and drives the same
//! [`FloodObserver`] callbacks, so property tests can hold the word-parallel
//! [`EchoReadyFlood`](crate::EchoReadyFlood) to the old semantics decision
//! by decision, and the `flood` benchmark can price the representations
//! against each other on identical inputs.
//!
//! Not wired into any protocol: this module exists only for tests and
//! benchmarks.

use crate::flood::{FloodMsg, FloodObserver, FloodResult, NoopFloodObserver};
use opr_types::LinkId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// The seed flood state machine: per-value ordered-tree accumulation.
#[derive(Clone, Debug)]
pub struct SetFlood<V> {
    n: usize,
    t: usize,
    initial: Option<V>,
    working: BTreeSet<V>,
    ready_sent: BTreeSet<V>,
    ready_links: BTreeMap<V, BTreeSet<LinkId>>,
    result: FloodResult<V>,
    finished: bool,
}

impl<V: Ord + Clone + Debug> SetFlood<V> {
    /// Creates a flood participant announcing `initial`; see
    /// [`EchoReadyFlood::new`](crate::EchoReadyFlood::new).
    pub fn new(n: usize, t: usize, initial: Option<V>) -> Self {
        SetFlood {
            n,
            t,
            initial,
            working: BTreeSet::new(),
            ready_sent: BTreeSet::new(),
            ready_links: BTreeMap::new(),
            result: FloodResult::default(),
            finished: false,
        }
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }

    fn weak_quorum(&self) -> usize {
        self.n - 2 * self.t
    }

    /// The values this participant would send in `step ∈ 1..=4`: the single
    /// `Init` value for step 1, the `Echo`/`Ready` set for steps 2–4.
    ///
    /// # Panics
    ///
    /// Panics on steps outside `1..=4`.
    pub fn send_values(&mut self, step: u32) -> Vec<V> {
        match step {
            1 => self.initial.clone().into_iter().collect(),
            2 => std::mem::take(&mut self.working).into_iter().collect(),
            3 => {
                let ready = std::mem::take(&mut self.working);
                self.ready_sent = ready.clone();
                ready.into_iter().collect()
            }
            4 => std::mem::take(&mut self.working).into_iter().collect(),
            _ => panic!("flood has exactly 4 steps, got step {step}"),
        }
    }

    /// Consumes the messages of step `step ∈ 1..=4` with the seed per-value
    /// tree accumulation, firing the same observer callbacks in the same
    /// (value `Ord`) order the word-parallel implementation must reproduce.
    ///
    /// # Panics
    ///
    /// Panics on steps outside `1..=4`.
    pub fn deliver_observed<'a, I, O>(&mut self, step: u32, inbox: I, observer: &mut O)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
        O: FloodObserver<V> + ?Sized,
    {
        match step {
            1 => {
                for (link, msg) in inbox {
                    if let FloodMsg::Init(v) = msg {
                        observer.id_seen(step, link, v);
                        self.working.insert(v.clone());
                    }
                }
            }
            2 => {
                let mut echo_links: BTreeMap<V, usize> = BTreeMap::new();
                for (_, msg) in inbox {
                    if let FloodMsg::Echo(set) = msg {
                        for v in set.values_sorted() {
                            *echo_links.entry(v).or_insert(0) += 1;
                        }
                    }
                }
                let quorum = self.quorum();
                self.working = echo_links
                    .into_iter()
                    .filter(|(v, links)| {
                        let kept = *links >= quorum;
                        observer.echo_threshold(step, v, *links, quorum, kept);
                        kept
                    })
                    .map(|(v, _)| v)
                    .collect();
            }
            3 => {
                self.accumulate_ready(inbox);
                let quorum = self.quorum();
                self.result.timely = self
                    .ready_links
                    .iter()
                    .filter(|(_, links)| links.len() >= quorum)
                    .map(|(v, _)| v.clone())
                    .collect();
                let weak = self.weak_quorum();
                self.working = self
                    .ready_links
                    .iter()
                    .filter(|(v, links)| links.len() >= weak && !self.ready_sent.contains(*v))
                    .map(|(v, _)| v.clone())
                    .collect();
                for (v, links) in &self.ready_links {
                    observer.ready_threshold(
                        step,
                        v,
                        links.len(),
                        quorum,
                        weak,
                        self.result.timely.contains(v),
                        self.working.contains(v),
                    );
                }
            }
            4 => {
                self.accumulate_ready(inbox);
                let quorum = self.quorum();
                self.result.accepted = self
                    .ready_links
                    .iter()
                    .filter(|(_, links)| links.len() >= quorum)
                    .map(|(v, _)| v.clone())
                    .collect();
                for (v, links) in &self.ready_links {
                    observer.accept_threshold(
                        step,
                        v,
                        links.len(),
                        quorum,
                        self.result.accepted.contains(v),
                    );
                }
                self.finished = true;
            }
            _ => panic!("flood has exactly 4 steps, got step {step}"),
        }
    }

    /// [`deliver_observed`](SetFlood::deliver_observed) without observation.
    pub fn deliver<'a, I>(&mut self, step: u32, inbox: I)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
    {
        self.deliver_observed(step, inbox, &mut NoopFloodObserver);
    }

    fn accumulate_ready<'a, I>(&mut self, inbox: I)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
    {
        for (link, msg) in inbox {
            if let FloodMsg::Ready(set) = msg {
                for v in set.values_sorted() {
                    self.ready_links.entry(v).or_default().insert(link);
                }
            }
        }
    }

    /// The result, once step 4 has been delivered.
    pub fn result(&self) -> Option<&FloodResult<V>> {
        self.finished.then_some(&self.result)
    }
}
