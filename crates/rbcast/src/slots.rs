//! Per-instance id interning and dense slot bitsets.
//!
//! The flood's hot path is dominated by set *representation*: `BTreeSet<V>`
//! payloads force every receiver to walk every sender's id set through
//! O(log k) tree inserts. Thresholds only count *distinct links per value*,
//! so the representation is semantics-free (the same argument DESIGN.md
//! makes for batched delivery) — any encoding that preserves the value
//! *sets* preserves the protocol.
//!
//! [`IdInterner`] assigns each value a small dense slot on first sight
//! (adversary-introduced values included — interning is not an admission
//! decision, just a name for a wire position). [`IdSlotSet`] is a
//! `Vec<u64>`-word bitset over those slots; senders build it once, and a
//! receiver sharing the same interner accumulates it with word-parallel
//! `trailing_zeros` walks instead of per-value tree operations.
//!
//! # Determinism
//!
//! Slot numbers are *not* deterministic: on the threaded backend, actors
//! intern concurrently, so first-sight order (and hence slot order) varies
//! between runs. Every observable therefore goes through values, never
//! slots: `Debug` renders the decoded values in `Ord` order (byte-identical
//! to the `BTreeSet` rendering traces were blessed against), equality and
//! wire size are value-based, and the flood decodes to value-ordered
//! `BTreeSet`s before anything escapes. Slots are a run-local register
//! allocation, invisible outside.
//!
//! # Foreign interners
//!
//! Sharing one interner per run is the fast path, not a correctness
//! requirement: a set built against a different interner (tests driving
//! actors by hand, replayed messages, adversaries constructed standalone)
//! is decoded value-by-value and re-interned on arrival. Everything keeps
//! working unshared — just at the old speed.

use opr_sim::WireSize;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// Number of slots per bitset word.
pub const WORD_BITS: usize = 64;

#[derive(Debug, Default)]
struct InternerState<V> {
    /// Slot → value.
    slots: Vec<V>,
    /// Value → slot.
    index: BTreeMap<V, u32>,
}

/// A shared value ⇄ dense-slot registry; cloning shares the registry.
///
/// One interner per protocol instance: the runner creates it and every
/// actor (correct and adversarial) registers values through it, so all
/// messages of a run agree on slot numbering and receivers can count
/// word-parallel without decoding.
#[derive(Debug, Default)]
pub struct IdInterner<V> {
    state: Arc<RwLock<InternerState<V>>>,
}

impl<V> Clone for IdInterner<V> {
    fn clone(&self) -> Self {
        IdInterner {
            state: Arc::clone(&self.state),
        }
    }
}

impl<V: Ord + Clone> IdInterner<V> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        IdInterner {
            state: Arc::new(RwLock::new(InternerState {
                slots: Vec::new(),
                index: BTreeMap::new(),
            })),
        }
    }

    /// The slot of `value`, assigning the next free slot on first sight.
    pub fn intern(&self, value: &V) -> u32 {
        if let Some(slot) = self.lookup(value) {
            return slot;
        }
        let mut state = write_lock(&self.state);
        // Double-check: another thread may have interned between our read
        // probe and this write lock.
        if let Some(&slot) = state.index.get(value) {
            return slot;
        }
        let slot = u32::try_from(state.slots.len()).expect("slot space exhausted");
        state.slots.push(value.clone());
        state.index.insert(value.clone(), slot);
        slot
    }

    /// The slot of `value`, if it has ever been interned.
    pub fn lookup(&self, value: &V) -> Option<u32> {
        read_lock(&self.state).index.get(value).copied()
    }

    /// The value behind `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never assigned.
    pub fn value_of(&self, slot: u32) -> V {
        read_lock(&self.state).slots[slot as usize].clone()
    }

    /// How many distinct values have been interned.
    pub fn len(&self) -> usize {
        read_lock(&self.state).slots.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `self` and `other` are the *same* registry (not merely equal
    /// content) — the precondition for comparing raw words across sets.
    pub fn same_as(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }

    /// Decodes the set slots of `words` into values, sorted by `Ord`.
    fn decode_sorted(&self, words: &[u64]) -> Vec<V> {
        let state = read_lock(&self.state);
        let mut values: Vec<V> = Vec::new();
        for (word_index, &word) in words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let slot = word_index * WORD_BITS + bits.trailing_zeros() as usize;
                values.push(state.slots[slot].clone());
                bits &= bits - 1;
            }
        }
        values.sort();
        values
    }
}

/// RwLock poisoning only happens when a panicking run is being contained
/// (chaos campaigns `catch_unwind` actor panics); the registry itself is
/// never left mid-update, so reading through poison is sound.
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A dense bitset of interned values, carrying its interner handle.
///
/// Renders (`Debug`), compares (`PartialEq`) and sizes ([`WireSize`])
/// exactly like the `BTreeSet<V>` it replaces, so traces, metrics and
/// payload caps cannot tell the difference.
#[derive(Clone)]
pub struct IdSlotSet<V> {
    words: Vec<u64>,
    interner: IdInterner<V>,
}

impl<V: Ord + Clone> IdSlotSet<V> {
    /// An empty set over `interner`'s slot space.
    pub fn new(interner: &IdInterner<V>) -> Self {
        IdSlotSet {
            words: Vec::new(),
            interner: interner.clone(),
        }
    }

    /// Builds a set by interning every value of `values`.
    pub fn from_values<I>(interner: &IdInterner<V>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
    {
        let mut set = IdSlotSet::new(interner);
        for v in values {
            set.insert(&v);
        }
        set
    }

    /// Wraps raw slot words already relative to `interner` — the flood's
    /// zero-decode path from its accumulated state to an outgoing message.
    pub fn from_words(interner: &IdInterner<V>, words: Vec<u64>) -> Self {
        IdSlotSet {
            words,
            interner: interner.clone(),
        }
    }

    /// Inserts `value`, interning it on first sight.
    pub fn insert(&mut self, value: &V) {
        let slot = self.interner.intern(value) as usize;
        let word = slot / WORD_BITS;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (slot % WORD_BITS);
    }

    /// Whether `value` is in the set.
    pub fn contains(&self, value: &V) -> bool {
        match self.interner.lookup(value) {
            Some(slot) => {
                let slot = slot as usize;
                self.words
                    .get(slot / WORD_BITS)
                    .is_some_and(|w| w & (1u64 << (slot % WORD_BITS)) != 0)
            }
            None => false,
        }
    }

    /// Number of values in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The raw bitset words (trailing zero words included as stored).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The interner this set's slots are relative to.
    pub fn interner(&self) -> &IdInterner<V> {
        &self.interner
    }

    /// The set's values in `Ord` order — the canonical decoded form that
    /// `Debug`, equality and wire accounting are defined over.
    pub fn values_sorted(&self) -> Vec<V> {
        self.interner.decode_sorted(&self.words)
    }

    /// The set's words rebased onto `target`'s slot space: a borrow when the
    /// interners are the same registry (the fast path), a decoded and
    /// re-interned copy otherwise.
    pub fn words_in<'a>(&'a self, target: &IdInterner<V>) -> SlotWords<'a> {
        if self.interner.same_as(target) {
            SlotWords::Borrowed(&self.words)
        } else {
            let mut words: Vec<u64> = Vec::new();
            for v in self.values_sorted() {
                let slot = target.intern(&v) as usize;
                let word = slot / WORD_BITS;
                if word >= words.len() {
                    words.resize(word + 1, 0);
                }
                words[word] |= 1u64 << (slot % WORD_BITS);
            }
            SlotWords::Owned(words)
        }
    }
}

/// Bitset words either borrowed from a same-interner set or rebased into a
/// fresh allocation (see [`IdSlotSet::words_in`]).
pub enum SlotWords<'a> {
    /// The sender shares the receiver's interner: zero-copy.
    Borrowed(&'a [u64]),
    /// Foreign interner: decoded and re-interned.
    Owned(Vec<u64>),
}

impl std::ops::Deref for SlotWords<'_> {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        match self {
            SlotWords::Borrowed(words) => words,
            SlotWords::Owned(words) => words,
        }
    }
}

impl<V: Ord + Clone + fmt::Debug> fmt::Debug for IdSlotSet<V> {
    /// Renders as a value set in `Ord` order — byte-identical to the
    /// `BTreeSet<V>` rendering the golden traces were recorded against.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.values_sorted()).finish()
    }
}

impl<V: Ord + Clone> PartialEq for IdSlotSet<V> {
    fn eq(&self, other: &Self) -> bool {
        if self.interner.same_as(&other.interner) {
            let longest = self.words.len().max(other.words.len());
            (0..longest).all(|i| {
                self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
            })
        } else {
            self.values_sorted() == other.values_sorted()
        }
    }
}

impl<V: Ord + Clone> Eq for IdSlotSet<V> {}

impl<V: Ord + Clone + WireSize> WireSize for IdSlotSet<V> {
    /// The sum of the member values' wire sizes — the same per-id accounting
    /// the `BTreeSet` payload reported, so caps and metrics stay bit-stable.
    fn wire_bits(&self) -> u64 {
        self.values_sorted()
            .iter()
            .map(WireSize::wire_bits)
            .sum::<u64>()
    }
}

/// Walks the set bits of `words`, invoking `visit(slot)` for each in
/// ascending slot order — the word-parallel inner loop shared by the flood
/// and every slot-counting aggregation.
#[inline]
pub fn for_each_slot(words: &[u64], mut visit: impl FnMut(usize)) {
    for (word_index, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            visit(word_index * WORD_BITS + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn interning_is_first_sight_dense_and_stable() {
        let interner: IdInterner<u64> = IdInterner::new();
        assert_eq!(interner.intern(&30), 0);
        assert_eq!(interner.intern(&10), 1);
        assert_eq!(interner.intern(&30), 0, "re-interning is stable");
        assert_eq!(interner.value_of(1), 10);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn debug_matches_btreeset_rendering() {
        let interner = IdInterner::new();
        // Intern out of order so slots and Ord order disagree.
        let set = IdSlotSet::from_values(&interner, [9u64, 1, 70, 4]);
        let tree: BTreeSet<u64> = [9, 1, 70, 4].into();
        assert_eq!(format!("{set:?}"), format!("{tree:?}"));
    }

    #[test]
    fn equality_is_value_based_across_interners() {
        let a = IdSlotSet::from_values(&IdInterner::new(), [3u64, 1, 2]);
        let other = IdInterner::new();
        other.intern(&99); // shift the slot numbering
        let b = IdSlotSet::from_values(&other, [2u64, 3, 1]);
        assert_eq!(a, b);
        let c = IdSlotSet::from_values(&other, [2u64, 3]);
        assert_ne!(a, c);
    }

    #[test]
    fn same_interner_equality_ignores_trailing_zero_words() {
        let interner = IdInterner::new();
        let a = IdSlotSet::from_values(&interner, [0u64]);
        let mut b = IdSlotSet::from_values(&interner, [0u64, 65]);
        // Clearing the high value leaves b with an extra all-zero word.
        let slot = interner.lookup(&65).unwrap() as usize;
        b.words[slot / WORD_BITS] &= !(1u64 << (slot % WORD_BITS));
        assert_eq!(a, b);
    }

    #[test]
    fn words_in_borrows_on_shared_and_rebases_on_foreign() {
        let shared = IdInterner::new();
        let set = IdSlotSet::from_values(&shared, [5u64, 6]);
        assert!(matches!(set.words_in(&shared), SlotWords::Borrowed(_)));

        let foreign = IdInterner::new();
        foreign.intern(&6); // different slot order
        let rebased = set.words_in(&foreign);
        assert!(matches!(rebased, SlotWords::Owned(_)));
        let mut slots = Vec::new();
        for_each_slot(&rebased, |s| slots.push(s));
        assert_eq!(slots, vec![0, 1], "6 then 5 in foreign slot order");
        assert_eq!(foreign.value_of(1), 5);
    }

    #[test]
    fn for_each_slot_walks_in_ascending_order_across_words() {
        let interner = IdInterner::new();
        let mut set = IdSlotSet::new(&interner);
        for v in 0..130u64 {
            interner.intern(&v);
        }
        for v in [0u64, 63, 64, 129] {
            set.insert(&v);
        }
        let mut slots = Vec::new();
        for_each_slot(set.words(), |s| slots.push(s));
        assert_eq!(slots, vec![0, 63, 64, 129]);
        assert_eq!(set.len(), 4);
        assert!(set.contains(&129));
        assert!(!set.contains(&1));
        assert!(!set.contains(&500), "never-interned value is absent");
    }
}
