//! The 4-step Echo/Ready flood (Algorithm 1, steps 1–4, generalized over
//! the value type).

use opr_sim::{Actor, Inbox, Outbox, WireSize, COUNT_BITS, TAG_BITS};
use opr_types::{LinkId, Round};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// Messages of the flood protocol.
///
/// `Init` carries exactly one value — this is what bounds a Byzantine
/// process to introducing at most one candidate per link in step 1, which
/// the `t(N−t)` counting argument of Lemma A.1 relies on. `Echo` and `Ready`
/// carry the batched sets (equivalent to the paper's one-message-per-value
/// formulation, since thresholds count *distinct links* per value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FloodMsg<V> {
    /// Step 1: announce one value.
    Init(V),
    /// Step 2: echo every value received in step 1.
    Echo(BTreeSet<V>),
    /// Steps 3 and 4: signal readiness for a set of values.
    Ready(BTreeSet<V>),
}

impl<V: WireSize> WireSize for FloodMsg<V> {
    fn wire_bits(&self) -> u64 {
        match self {
            FloodMsg::Init(v) => TAG_BITS + v.wire_bits(),
            FloodMsg::Echo(set) | FloodMsg::Ready(set) => {
                TAG_BITS + COUNT_BITS + set.iter().map(WireSize::wire_bits).sum::<u64>()
            }
        }
    }
}

/// Outcome of the flood at one correct process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FloodResult<V> {
    /// Values whose `Ready` reached `N − t` links by step 3 — guaranteed to
    /// include every correct value, and guaranteed to be inside every other
    /// correct process's `accepted`.
    pub timely: BTreeSet<V>,
    /// Values whose `Ready` messages (steps 3 + 4 combined) reached `N − t`
    /// distinct links. `|accepted| ≤ N + ⌊t²/(N−2t)⌋`.
    pub accepted: BTreeSet<V>,
}

impl<V> Default for FloodResult<V> {
    fn default() -> Self {
        FloodResult {
            timely: BTreeSet::new(),
            accepted: BTreeSet::new(),
        }
    }
}

/// State machine for the 4-step flood, meant to be *embedded*: the owner
/// forwards [`send`](EchoReadyFlood::send) and
/// [`deliver`](EchoReadyFlood::deliver) for relative steps `1 ⋯ 4` and reads
/// the [`FloodResult`] afterwards.
#[derive(Clone, Debug)]
pub struct EchoReadyFlood<V> {
    n: usize,
    t: usize,
    initial: Option<V>,
    /// Working set: after step 1 the values to echo; after step 2 the values
    /// to send `Ready` for; after step 3 the values to relay-`Ready`.
    working: BTreeSet<V>,
    /// Values we have already sent `Ready` for (step 3), so step 4 only
    /// relays new ones.
    ready_sent: BTreeSet<V>,
    /// Distinct links per value across `Ready` messages of steps 3 and 4.
    ready_links: BTreeMap<V, BTreeSet<LinkId>>,
    result: FloodResult<V>,
    finished: bool,
}

impl<V: Ord + Clone + Debug> EchoReadyFlood<V> {
    /// Creates a flood participant announcing `initial` (correct processes
    /// announce their own id; pass `None` to participate without
    /// announcing).
    pub fn new(n: usize, t: usize, initial: Option<V>) -> Self {
        EchoReadyFlood {
            n,
            t,
            initial,
            working: BTreeSet::new(),
            ready_sent: BTreeSet::new(),
            ready_links: BTreeMap::new(),
            result: FloodResult::default(),
            finished: false,
        }
    }

    /// Quorum threshold `N − t`.
    fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// Relay threshold `N − 2t`.
    fn weak_quorum(&self) -> usize {
        self.n - 2 * self.t
    }

    /// The message for relative step `step ∈ 1..=4`, if any.
    ///
    /// # Panics
    ///
    /// Panics on steps outside `1..=4`.
    pub fn send(&mut self, step: u32) -> Option<FloodMsg<V>> {
        match step {
            1 => self.initial.clone().map(FloodMsg::Init),
            2 => Some(FloodMsg::Echo(std::mem::take(&mut self.working))),
            3 => {
                let ready: BTreeSet<V> = std::mem::take(&mut self.working);
                self.ready_sent = ready.clone();
                Some(FloodMsg::Ready(ready))
            }
            4 => Some(FloodMsg::Ready(std::mem::take(&mut self.working))),
            _ => panic!("flood has exactly 4 steps, got step {step}"),
        }
    }

    /// Consumes the messages of relative step `step ∈ 1..=4`.
    ///
    /// Takes any `(link, &msg)` iterator — typically
    /// [`Inbox::messages`](opr_sim::Inbox::messages) or a borrowed
    /// `filter_map` view over an embedding protocol's own message type — so
    /// delivery never forces a copy of the shared broadcast payloads.
    ///
    /// # Panics
    ///
    /// Panics on steps outside `1..=4`.
    pub fn deliver<'a, I>(&mut self, step: u32, inbox: I)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
    {
        match step {
            1 => {
                // Collect one announced value per distinct link.
                for (_, msg) in inbox {
                    if let FloodMsg::Init(v) = msg {
                        self.working.insert(v.clone());
                    }
                }
            }
            2 => {
                // Values echoed on ≥ N−t distinct links survive.
                let mut echo_links: BTreeMap<&V, usize> = BTreeMap::new();
                for (_, msg) in inbox {
                    if let FloodMsg::Echo(set) = msg {
                        for v in set {
                            *echo_links.entry(v).or_insert(0) += 1;
                        }
                    }
                }
                let quorum = self.quorum();
                self.working = echo_links
                    .into_iter()
                    .filter(|(_, links)| *links >= quorum)
                    .map(|(v, _)| v.clone())
                    .collect();
            }
            3 => {
                self.accumulate_ready(inbox);
                // Timely: Ready on ≥ N−t links already in step 3.
                let quorum = self.quorum();
                self.result.timely = self
                    .ready_links
                    .iter()
                    .filter(|(_, links)| links.len() >= quorum)
                    .map(|(v, _)| v.clone())
                    .collect();
                // Relay in step 4: Ready on ≥ N−2t links, not yet sent by us.
                let weak = self.weak_quorum();
                self.working = self
                    .ready_links
                    .iter()
                    .filter(|(v, links)| links.len() >= weak && !self.ready_sent.contains(*v))
                    .map(|(v, _)| v.clone())
                    .collect();
            }
            4 => {
                self.accumulate_ready(inbox);
                let quorum = self.quorum();
                self.result.accepted = self
                    .ready_links
                    .iter()
                    .filter(|(_, links)| links.len() >= quorum)
                    .map(|(v, _)| v.clone())
                    .collect();
                self.finished = true;
            }
            _ => panic!("flood has exactly 4 steps, got step {step}"),
        }
    }

    fn accumulate_ready<'a, I>(&mut self, inbox: I)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
    {
        for (link, msg) in inbox {
            if let FloodMsg::Ready(set) = msg {
                for v in set {
                    self.ready_links.entry(v.clone()).or_default().insert(link);
                }
            }
        }
    }

    /// The result, once step 4 has been delivered.
    pub fn result(&self) -> Option<&FloodResult<V>> {
        self.finished.then_some(&self.result)
    }
}

/// Standalone [`Actor`] wrapper around [`EchoReadyFlood`]: runs the four
/// steps starting at round 1 and outputs the [`FloodResult`].
#[derive(Clone, Debug)]
pub struct FloodActor<V> {
    flood: EchoReadyFlood<V>,
}

impl<V: Ord + Clone + Debug> FloodActor<V> {
    /// Creates the actor; see [`EchoReadyFlood::new`].
    pub fn new(n: usize, t: usize, initial: Option<V>) -> Self {
        FloodActor {
            flood: EchoReadyFlood::new(n, t, initial),
        }
    }
}

impl<V: Ord + Clone + Debug + WireSize + Send> Actor for FloodActor<V> {
    type Msg = FloodMsg<V>;
    type Output = FloodResult<V>;

    fn send(&mut self, round: Round) -> Outbox<FloodMsg<V>> {
        if round.number() <= 4 {
            match self.flood.send(round.number()) {
                Some(msg) => Outbox::Broadcast(msg),
                None => Outbox::Silent,
            }
        } else {
            Outbox::Silent
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<FloodMsg<V>>) {
        if round.number() <= 4 {
            self.flood.deliver(round.number(), inbox.messages());
        }
    }

    fn output(&self) -> Option<FloodResult<V>> {
        self.flood.result().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_sim::{Network, Topology, ID_BITS};

    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Val(u64);
    impl WireSize for Val {
        fn wire_bits(&self) -> u64 {
            ID_BITS
        }
    }

    type Net = Network<FloodMsg<Val>, FloodResult<Val>>;

    fn flood_net(n: usize, t: usize, values: &[u64], faulty: usize, seed: u64) -> Net {
        // First `faulty` actors are silent Byzantine placeholders (announce
        // nothing, echo nothing).
        let mut actors: Vec<Box<dyn Actor<Msg = FloodMsg<Val>, Output = FloodResult<Val>>>> =
            Vec::new();
        let mut correct = Vec::new();
        for i in 0..faulty {
            struct Silent;
            impl Actor for Silent {
                type Msg = FloodMsg<Val>;
                type Output = FloodResult<Val>;
                fn send(&mut self, _r: Round) -> Outbox<FloodMsg<Val>> {
                    Outbox::Silent
                }
                fn deliver(&mut self, _r: Round, _i: Inbox<FloodMsg<Val>>) {}
                fn output(&self) -> Option<FloodResult<Val>> {
                    None
                }
            }
            let _ = i;
            actors.push(Box::new(Silent));
            correct.push(false);
        }
        for &v in values {
            actors.push(Box::new(FloodActor::new(n, t, Some(Val(v)))));
            correct.push(true);
        }
        assert_eq!(actors.len(), n);
        Network::with_faults(actors, correct, Topology::seeded(n, seed))
    }

    #[test]
    fn all_correct_values_are_timely_everywhere() {
        let (n, t) = (7usize, 2usize);
        let values = [10, 20, 30, 40, 50, 60, 70];
        let mut net = flood_net(n, t, &values, 0, 3);
        assert!(net.run(4).completed);
        for i in 0..n {
            let res = net.output_of(i).unwrap();
            assert_eq!(res.timely.len(), n);
            assert_eq!(res.accepted.len(), n);
        }
    }

    #[test]
    fn silent_byzantine_processes_do_not_block_correct_values() {
        let (n, t) = (7usize, 2usize);
        let values = [10, 20, 30, 40, 50];
        let mut net = flood_net(n, t, &values, t, 11);
        net.run(4);
        for i in t..n {
            let res = net.output_of(i).unwrap();
            // Lemma IV.2: every correct value is timely at every correct
            // process.
            for v in values {
                assert!(res.timely.contains(&Val(v)), "p{i} missing {v}");
            }
            // Lemma IV.1 ⊆ relation.
            assert!(res.timely.is_subset(&res.accepted));
        }
    }

    #[test]
    fn timely_somewhere_implies_accepted_everywhere() {
        let (n, t) = (10usize, 3usize);
        let values = [1, 2, 3, 4, 5, 6, 7];
        let mut net = flood_net(n, t, &values, t, 7);
        net.run(4);
        let results: Vec<FloodResult<Val>> = (t..n).map(|i| net.output_of(i).unwrap()).collect();
        let timely_union: BTreeSet<Val> = results
            .iter()
            .flat_map(|r| r.timely.iter().copied())
            .collect();
        for (i, res) in results.iter().enumerate() {
            assert!(
                timely_union.is_subset(&res.accepted),
                "correct process {i}: union of timely sets must be ⊆ accepted"
            );
        }
    }

    #[test]
    fn accepted_is_bounded_even_with_silent_byzantine() {
        let (n, t) = (10usize, 3usize);
        let values = [1, 2, 3, 4, 5, 6, 7];
        let mut net = flood_net(n, t, &values, t, 9);
        net.run(4);
        let bound = n + (t * t) / (n - 2 * t);
        for i in t..n {
            let res = net.output_of(i).unwrap();
            assert!(res.accepted.len() <= bound);
        }
    }

    #[test]
    fn non_announcing_correct_process_still_learns() {
        let n = 4;
        let mut actors: Vec<Box<dyn Actor<Msg = FloodMsg<Val>, Output = FloodResult<Val>>>> =
            vec![Box::new(FloodActor::new(n, 1, None))];
        for v in [5, 6, 7] {
            actors.push(Box::new(FloodActor::new(n, 1, Some(Val(v)))));
        }
        let mut net: Net = Network::new(actors, Topology::canonical(n));
        assert!(net.run(4).completed);
        let res = net.output_of(0).unwrap();
        assert_eq!(res.timely.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exactly 4 steps")]
    fn rejects_out_of_range_step() {
        let mut flood: EchoReadyFlood<Val> = EchoReadyFlood::new(4, 1, None);
        let _ = flood.send(5);
    }

    #[test]
    fn result_unavailable_before_step_4() {
        let flood: EchoReadyFlood<Val> = EchoReadyFlood::new(4, 1, Some(Val(1)));
        assert!(flood.result().is_none());
    }

    #[test]
    fn message_sizes_scale_with_set_size() {
        let small = FloodMsg::Echo(BTreeSet::from([Val(1)]));
        let large = FloodMsg::Echo((0..10).map(Val).collect::<BTreeSet<_>>());
        assert_eq!(large.wire_bits() - small.wire_bits(), 9 * ID_BITS);
        let init = FloodMsg::Init(Val(1));
        assert!(init.wire_bits() < small.wire_bits() + ID_BITS);
    }
}
