//! The 4-step Echo/Ready flood (Algorithm 1, steps 1–4, generalized over
//! the value type), counting word-parallel over interned id slots.

use crate::slots::{for_each_slot, IdInterner, IdSlotSet, WORD_BITS};
use opr_sim::{Actor, Inbox, Outbox, WireSize, COUNT_BITS, TAG_BITS};
use opr_types::{LinkId, Round};
use std::collections::BTreeSet;
use std::fmt::Debug;

/// Messages of the flood protocol.
///
/// `Init` carries exactly one value — this is what bounds a Byzantine
/// process to introducing at most one candidate per link in step 1, which
/// the `t(N−t)` counting argument of Lemma A.1 relies on. `Echo` and `Ready`
/// carry the batched sets (equivalent to the paper's one-message-per-value
/// formulation, since thresholds count *distinct links* per value), encoded
/// as interned-slot bitsets whose `Debug`, equality and wire accounting are
/// value-based — indistinguishable from the `BTreeSet` encoding they
/// replaced.
#[derive(Clone)]
pub enum FloodMsg<V> {
    /// Step 1: announce one value.
    Init(V),
    /// Step 2: echo every value received in step 1.
    Echo(IdSlotSet<V>),
    /// Steps 3 and 4: signal readiness for a set of values.
    Ready(IdSlotSet<V>),
}

// Manual impls (a derive would demand only `V: Debug`/`V: PartialEq`, but
// the slot sets decode through `V: Ord + Clone`); rendering is identical to
// what the derives produced over `BTreeSet` payloads.
impl<V: Ord + Clone + Debug> Debug for FloodMsg<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FloodMsg::Init(v) => f.debug_tuple("Init").field(v).finish(),
            FloodMsg::Echo(set) => f.debug_tuple("Echo").field(set).finish(),
            FloodMsg::Ready(set) => f.debug_tuple("Ready").field(set).finish(),
        }
    }
}

impl<V: Ord + Clone> PartialEq for FloodMsg<V> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (FloodMsg::Init(a), FloodMsg::Init(b)) => a == b,
            (FloodMsg::Echo(a), FloodMsg::Echo(b)) => a == b,
            (FloodMsg::Ready(a), FloodMsg::Ready(b)) => a == b,
            _ => false,
        }
    }
}

impl<V: Ord + Clone> Eq for FloodMsg<V> {}

impl<V: Ord + Clone + WireSize> WireSize for FloodMsg<V> {
    fn wire_bits(&self) -> u64 {
        match self {
            FloodMsg::Init(v) => TAG_BITS + v.wire_bits(),
            FloodMsg::Echo(set) | FloodMsg::Ready(set) => TAG_BITS + COUNT_BITS + set.wire_bits(),
        }
    }
}

/// Outcome of the flood at one correct process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FloodResult<V> {
    /// Values whose `Ready` reached `N − t` links by step 3 — guaranteed to
    /// include every correct value, and guaranteed to be inside every other
    /// correct process's `accepted`.
    pub timely: BTreeSet<V>,
    /// Values whose `Ready` messages (steps 3 + 4 combined) reached `N − t`
    /// distinct links. `|accepted| ≤ N + ⌊t²/(N−2t)⌋`.
    pub accepted: BTreeSet<V>,
}

impl<V> Default for FloodResult<V> {
    fn default() -> Self {
        FloodResult {
            timely: BTreeSet::new(),
            accepted: BTreeSet::new(),
        }
    }
}

/// Observation hooks for the flood's threshold arithmetic.
///
/// Every callback fires at a decision point of
/// [`deliver_observed`](EchoReadyFlood::deliver_observed) with the exact
/// counts the decision compared. Default bodies are empty, so observers
/// override only what they need and [`NoopFloodObserver`] costs nothing.
pub trait FloodObserver<V> {
    /// Whether this observer wants callbacks at all. The flood's hot path
    /// decodes slots back to `Ord`-sorted values only to feed observers;
    /// returning `false` (as [`NoopFloodObserver`] does, and recorder-backed
    /// observers do when no recorder is attached) skips that work entirely.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Step 1: a value was announced via `Init` on `link`.
    fn id_seen(&mut self, step: u32, link: LinkId, value: &V) {
        let _ = (step, link, value);
    }

    /// Step 2: `value` was echoed on `echoes` distinct links and compared
    /// against the `N − t` quorum; it survives iff `kept`.
    fn echo_threshold(&mut self, step: u32, value: &V, echoes: usize, quorum: usize, kept: bool) {
        let _ = (step, value, echoes, quorum, kept);
    }

    /// Step 3: `value` has `Ready` from `readies` distinct links; it is
    /// `timely` iff `readies ≥ quorum`, and this process `relayed` a `Ready`
    /// of its own iff `readies ≥ weak_quorum` and it had not already.
    #[allow(clippy::too_many_arguments)]
    fn ready_threshold(
        &mut self,
        step: u32,
        value: &V,
        readies: usize,
        quorum: usize,
        weak_quorum: usize,
        timely: bool,
        relayed: bool,
    ) {
        let _ = (step, value, readies, quorum, weak_quorum, timely, relayed);
    }

    /// Step 4: `value` has `Ready` from `readies` distinct links in total;
    /// it is `accepted` iff `readies ≥ quorum`.
    fn accept_threshold(
        &mut self,
        step: u32,
        value: &V,
        readies: usize,
        quorum: usize,
        accepted: bool,
    ) {
        let _ = (step, value, readies, quorum, accepted);
    }
}

/// The do-nothing observer plain [`deliver`](EchoReadyFlood::deliver)
/// delegates through.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopFloodObserver;

impl<V> FloodObserver<V> for NoopFloodObserver {
    fn is_enabled(&self) -> bool {
        false
    }
}

/// State machine for the 4-step flood, meant to be *embedded*: the owner
/// forwards [`send`](EchoReadyFlood::send) and
/// [`deliver`](EchoReadyFlood::deliver) for relative steps `1 ⋯ 4` and reads
/// the [`FloodResult`] afterwards.
///
/// All per-value state is kept as slot-indexed words and flat counters over
/// the instance's [`IdInterner`]: receiving a same-interner `Echo`/`Ready`
/// costs O(slots/64) word operations plus one counter bump per *distinct*
/// member, instead of per-value ordered-tree inserts. Values only get
/// decoded (and `Ord`-sorted) at the edges: the [`FloodResult`] sets and
/// enabled-observer callbacks.
#[derive(Clone, Debug)]
pub struct EchoReadyFlood<V> {
    n: usize,
    t: usize,
    initial: Option<V>,
    interner: IdInterner<V>,
    /// Working slots: after step 1 the values to echo; after step 2 the
    /// values to send `Ready` for; after step 3 the values to relay-`Ready`.
    working: Vec<u64>,
    /// Slots we have already sent `Ready` for (step 3), so step 4 only
    /// relays new ones.
    ready_sent: Vec<u64>,
    /// Distinct links per slot across `Ready` messages of steps 3 and 4.
    ready_counts: Vec<u16>,
    /// Per-link slots already counted into `ready_counts` (indexed by
    /// `LinkId::index`), deduplicating a link that `Ready`s the same value
    /// in both step 3 and step 4.
    ready_seen: Vec<Vec<u64>>,
    result: FloodResult<V>,
    finished: bool,
}

impl<V: Ord + Clone + Debug> EchoReadyFlood<V> {
    /// Creates a flood participant announcing `initial` (correct processes
    /// announce their own id; pass `None` to participate without
    /// announcing), with a private interner.
    pub fn new(n: usize, t: usize, initial: Option<V>) -> Self {
        EchoReadyFlood::with_interner(n, t, initial, IdInterner::new())
    }

    /// [`EchoReadyFlood::new`] over a shared per-run interner, so messages
    /// from co-participants arrive pre-interned and accumulate zero-decode.
    /// Sharing is purely the fast path — messages built against any other
    /// interner are decoded and re-interned on arrival.
    pub fn with_interner(n: usize, t: usize, initial: Option<V>, interner: IdInterner<V>) -> Self {
        EchoReadyFlood {
            n,
            t,
            initial,
            interner,
            working: Vec::new(),
            ready_sent: Vec::new(),
            ready_counts: Vec::new(),
            ready_seen: Vec::new(),
            result: FloodResult::default(),
            finished: false,
        }
    }

    /// The interner this instance's slots are relative to.
    pub fn interner(&self) -> &IdInterner<V> {
        &self.interner
    }

    /// Quorum threshold `N − t`.
    fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// Relay threshold `N − 2t`.
    fn weak_quorum(&self) -> usize {
        self.n - 2 * self.t
    }

    /// The message for relative step `step ∈ 1..=4`, if any.
    ///
    /// # Panics
    ///
    /// Panics on steps outside `1..=4`.
    pub fn send(&mut self, step: u32) -> Option<FloodMsg<V>> {
        match step {
            1 => self.initial.clone().map(FloodMsg::Init),
            2 => Some(FloodMsg::Echo(IdSlotSet::from_words(
                &self.interner,
                std::mem::take(&mut self.working),
            ))),
            3 => {
                let ready = std::mem::take(&mut self.working);
                self.ready_sent = ready.clone();
                Some(FloodMsg::Ready(IdSlotSet::from_words(
                    &self.interner,
                    ready,
                )))
            }
            4 => Some(FloodMsg::Ready(IdSlotSet::from_words(
                &self.interner,
                std::mem::take(&mut self.working),
            ))),
            _ => panic!("flood has exactly 4 steps, got step {step}"),
        }
    }

    /// Consumes the messages of relative step `step ∈ 1..=4`.
    ///
    /// Takes any `(link, &msg)` iterator — typically
    /// [`Inbox::messages`](opr_sim::Inbox::messages) or a borrowed
    /// `filter_map` view over an embedding protocol's own message type — so
    /// delivery never forces a copy of the shared broadcast payloads.
    ///
    /// # Panics
    ///
    /// Panics on steps outside `1..=4`.
    pub fn deliver<'a, I>(&mut self, step: u32, inbox: I)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
    {
        self.deliver_observed(step, inbox, &mut NoopFloodObserver);
    }

    /// [`deliver`](EchoReadyFlood::deliver), reporting every threshold
    /// decision to `observer`. The observer sees counts in the value's
    /// `Ord` order, so emission order is deterministic regardless of slot
    /// numbering.
    ///
    /// # Panics
    ///
    /// Panics on steps outside `1..=4`.
    pub fn deliver_observed<'a, I, O>(&mut self, step: u32, inbox: I, observer: &mut O)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
        O: FloodObserver<V> + ?Sized,
    {
        match step {
            1 => {
                // Collect one announced value per distinct link.
                for (link, msg) in inbox {
                    if let FloodMsg::Init(v) = msg {
                        observer.id_seen(step, link, v);
                        set_slot(&mut self.working, self.interner.intern(v) as usize);
                    }
                }
            }
            2 => {
                // Values echoed on ≥ N−t distinct links survive. One echo
                // message per link, so no per-link dedup is needed: each
                // message bumps each member slot once.
                let mut echo_counts: Vec<u16> = Vec::new();
                for (_, msg) in inbox {
                    if let FloodMsg::Echo(set) = msg {
                        let words = set.words_in(&self.interner);
                        grow_counts(&mut echo_counts, words.len());
                        for_each_slot(&words, |slot| {
                            echo_counts[slot] += 1;
                        });
                    }
                }
                let quorum = self.quorum();
                self.working = words_where(&echo_counts, |c| c as usize >= quorum);
                if observer.is_enabled() {
                    for (v, count) in self.decoded_counts(&echo_counts) {
                        observer.echo_threshold(step, &v, count, quorum, count >= quorum);
                    }
                }
            }
            3 => {
                self.accumulate_ready(inbox);
                // Timely: Ready on ≥ N−t links already in step 3.
                let quorum = self.quorum();
                let timely_words = words_where(&self.ready_counts, |c| c as usize >= quorum);
                self.result.timely = self.decode_words(&timely_words);
                // Relay in step 4: Ready on ≥ N−2t links, not yet sent by us.
                let weak = self.weak_quorum();
                let mut working = words_where(&self.ready_counts, |c| c as usize >= weak);
                for (i, word) in working.iter_mut().enumerate() {
                    *word &= !self.ready_sent.get(i).copied().unwrap_or(0);
                }
                self.working = working;
                if observer.is_enabled() {
                    for (v, count) in self.decoded_counts(&self.ready_counts) {
                        observer.ready_threshold(
                            step,
                            &v,
                            count,
                            quorum,
                            weak,
                            self.result.timely.contains(&v),
                            count >= weak && !self.result_slot_in(&self.ready_sent, &v),
                        );
                    }
                }
            }
            4 => {
                self.accumulate_ready(inbox);
                let quorum = self.quorum();
                let accepted_words = words_where(&self.ready_counts, |c| c as usize >= quorum);
                self.result.accepted = self.decode_words(&accepted_words);
                if observer.is_enabled() {
                    for (v, count) in self.decoded_counts(&self.ready_counts) {
                        observer.accept_threshold(
                            step,
                            &v,
                            count,
                            quorum,
                            self.result.accepted.contains(&v),
                        );
                    }
                }
                self.finished = true;
            }
            _ => panic!("flood has exactly 4 steps, got step {step}"),
        }
    }

    /// Folds `Ready` messages into the per-slot distinct-link counters:
    /// `new = incoming & !seen[link]` masks out slots this link already
    /// `Ready`ed (across steps 3 and 4), then a `trailing_zeros` walk over
    /// `new` bumps each newly-covered slot once.
    fn accumulate_ready<'a, I>(&mut self, inbox: I)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
    {
        for (link, msg) in inbox {
            if let FloodMsg::Ready(set) = msg {
                let words = set.words_in(&self.interner);
                grow_counts(&mut self.ready_counts, words.len());
                if self.ready_seen.len() <= link.index() {
                    self.ready_seen.resize(link.index() + 1, Vec::new());
                }
                let seen = &mut self.ready_seen[link.index()];
                if seen.len() < words.len() {
                    seen.resize(words.len(), 0);
                }
                for (i, &word) in words.iter().enumerate() {
                    let mut new = word & !seen[i];
                    seen[i] |= new;
                    while new != 0 {
                        let slot = i * WORD_BITS + new.trailing_zeros() as usize;
                        self.ready_counts[slot] += 1;
                        new &= new - 1;
                    }
                }
            }
        }
    }

    /// Decodes a word bitset into the value-ordered set the results expose.
    fn decode_words(&self, words: &[u64]) -> BTreeSet<V> {
        IdSlotSet::from_words(&self.interner, words.to_vec())
            .values_sorted()
            .into_iter()
            .collect()
    }

    /// The `(value, count)` pairs for every slot with a nonzero count, in
    /// value `Ord` order — what observers iterate, decoupling their
    /// deterministic emission order from nondeterministic slot numbering.
    fn decoded_counts(&self, counts: &[u16]) -> Vec<(V, usize)> {
        let mut pairs: Vec<(V, usize)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(slot, &c)| (self.interner.value_of(slot as u32), c as usize))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs
    }

    /// Whether `v`'s slot bit is set in `words`.
    fn result_slot_in(&self, words: &[u64], v: &V) -> bool {
        self.interner.lookup(v).is_some_and(|slot| {
            let slot = slot as usize;
            words
                .get(slot / WORD_BITS)
                .is_some_and(|w| w & (1u64 << (slot % WORD_BITS)) != 0)
        })
    }

    /// The result, once step 4 has been delivered.
    pub fn result(&self) -> Option<&FloodResult<V>> {
        self.finished.then_some(&self.result)
    }
}

/// Sets bit `slot`, growing the word vector as needed.
fn set_slot(words: &mut Vec<u64>, slot: usize) {
    let word = slot / WORD_BITS;
    if word >= words.len() {
        words.resize(word + 1, 0);
    }
    words[word] |= 1u64 << (slot % WORD_BITS);
}

/// Grows `counts` to cover every slot addressable by `words` bitset words.
fn grow_counts(counts: &mut Vec<u16>, words: usize) {
    let needed = words * WORD_BITS;
    if counts.len() < needed {
        counts.resize(needed, 0);
    }
}

/// The linear quorum scan: the bitset of slots whose count satisfies `keep`.
fn words_where(counts: &[u16], keep: impl Fn(u16) -> bool) -> Vec<u64> {
    let mut words = vec![0u64; counts.len().div_ceil(WORD_BITS)];
    for (slot, &count) in counts.iter().enumerate() {
        if count > 0 && keep(count) {
            words[slot / WORD_BITS] |= 1u64 << (slot % WORD_BITS);
        }
    }
    words
}

/// Standalone [`Actor`] wrapper around [`EchoReadyFlood`]: runs the four
/// steps starting at round 1 and outputs the [`FloodResult`].
#[derive(Clone, Debug)]
pub struct FloodActor<V> {
    flood: EchoReadyFlood<V>,
}

impl<V: Ord + Clone + Debug> FloodActor<V> {
    /// Creates the actor; see [`EchoReadyFlood::new`].
    pub fn new(n: usize, t: usize, initial: Option<V>) -> Self {
        FloodActor {
            flood: EchoReadyFlood::new(n, t, initial),
        }
    }

    /// Creates the actor over a shared per-run interner; see
    /// [`EchoReadyFlood::with_interner`].
    pub fn with_interner(n: usize, t: usize, initial: Option<V>, interner: IdInterner<V>) -> Self {
        FloodActor {
            flood: EchoReadyFlood::with_interner(n, t, initial, interner),
        }
    }
}

impl<V: Ord + Clone + Debug + WireSize + Send + Sync> Actor for FloodActor<V> {
    type Msg = FloodMsg<V>;
    type Output = FloodResult<V>;

    fn send(&mut self, round: Round) -> Outbox<FloodMsg<V>> {
        if round.number() <= 4 {
            match self.flood.send(round.number()) {
                Some(msg) => Outbox::Broadcast(msg),
                None => Outbox::Silent,
            }
        } else {
            Outbox::Silent
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<FloodMsg<V>>) {
        if round.number() <= 4 {
            self.flood.deliver(round.number(), inbox.messages());
        }
    }

    fn output(&self) -> Option<FloodResult<V>> {
        self.flood.result().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_sim::{Network, Topology, ID_BITS};

    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Val(u64);
    impl WireSize for Val {
        fn wire_bits(&self) -> u64 {
            ID_BITS
        }
    }

    type Net = Network<FloodMsg<Val>, FloodResult<Val>>;

    fn flood_net(n: usize, t: usize, values: &[u64], faulty: usize, seed: u64) -> Net {
        // First `faulty` actors are silent Byzantine placeholders (announce
        // nothing, echo nothing).
        let mut actors: Vec<Box<dyn Actor<Msg = FloodMsg<Val>, Output = FloodResult<Val>>>> =
            Vec::new();
        let mut correct = Vec::new();
        for i in 0..faulty {
            struct Silent;
            impl Actor for Silent {
                type Msg = FloodMsg<Val>;
                type Output = FloodResult<Val>;
                fn send(&mut self, _r: Round) -> Outbox<FloodMsg<Val>> {
                    Outbox::Silent
                }
                fn deliver(&mut self, _r: Round, _i: Inbox<FloodMsg<Val>>) {}
                fn output(&self) -> Option<FloodResult<Val>> {
                    None
                }
            }
            let _ = i;
            actors.push(Box::new(Silent));
            correct.push(false);
        }
        for &v in values {
            actors.push(Box::new(FloodActor::new(n, t, Some(Val(v)))));
            correct.push(true);
        }
        assert_eq!(actors.len(), n);
        Network::with_faults(actors, correct, Topology::seeded(n, seed))
    }

    #[test]
    fn all_correct_values_are_timely_everywhere() {
        let (n, t) = (7usize, 2usize);
        let values = [10, 20, 30, 40, 50, 60, 70];
        let mut net = flood_net(n, t, &values, 0, 3);
        assert!(net.run(4).completed);
        for i in 0..n {
            let res = net.output_of(i).unwrap();
            assert_eq!(res.timely.len(), n);
            assert_eq!(res.accepted.len(), n);
        }
    }

    #[test]
    fn silent_byzantine_processes_do_not_block_correct_values() {
        let (n, t) = (7usize, 2usize);
        let values = [10, 20, 30, 40, 50];
        let mut net = flood_net(n, t, &values, t, 11);
        net.run(4);
        for i in t..n {
            let res = net.output_of(i).unwrap();
            // Lemma IV.2: every correct value is timely at every correct
            // process.
            for v in values {
                assert!(res.timely.contains(&Val(v)), "p{i} missing {v}");
            }
            // Lemma IV.1 ⊆ relation.
            assert!(res.timely.is_subset(&res.accepted));
        }
    }

    #[test]
    fn timely_somewhere_implies_accepted_everywhere() {
        let (n, t) = (10usize, 3usize);
        let values = [1, 2, 3, 4, 5, 6, 7];
        let mut net = flood_net(n, t, &values, t, 7);
        net.run(4);
        let results: Vec<FloodResult<Val>> = (t..n).map(|i| net.output_of(i).unwrap()).collect();
        let timely_union: BTreeSet<Val> = results
            .iter()
            .flat_map(|r| r.timely.iter().copied())
            .collect();
        for (i, res) in results.iter().enumerate() {
            assert!(
                timely_union.is_subset(&res.accepted),
                "correct process {i}: union of timely sets must be ⊆ accepted"
            );
        }
    }

    #[test]
    fn accepted_is_bounded_even_with_silent_byzantine() {
        let (n, t) = (10usize, 3usize);
        let values = [1, 2, 3, 4, 5, 6, 7];
        let mut net = flood_net(n, t, &values, t, 9);
        net.run(4);
        let bound = n + (t * t) / (n - 2 * t);
        for i in t..n {
            let res = net.output_of(i).unwrap();
            assert!(res.accepted.len() <= bound);
        }
    }

    #[test]
    fn non_announcing_correct_process_still_learns() {
        let n = 4;
        let mut actors: Vec<Box<dyn Actor<Msg = FloodMsg<Val>, Output = FloodResult<Val>>>> =
            vec![Box::new(FloodActor::new(n, 1, None))];
        for v in [5, 6, 7] {
            actors.push(Box::new(FloodActor::new(n, 1, Some(Val(v)))));
        }
        let mut net: Net = Network::new(actors, Topology::canonical(n));
        assert!(net.run(4).completed);
        let res = net.output_of(0).unwrap();
        assert_eq!(res.timely.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exactly 4 steps")]
    fn rejects_out_of_range_step() {
        let mut flood: EchoReadyFlood<Val> = EchoReadyFlood::new(4, 1, None);
        let _ = flood.send(5);
    }

    #[test]
    fn result_unavailable_before_step_4() {
        let flood: EchoReadyFlood<Val> = EchoReadyFlood::new(4, 1, Some(Val(1)));
        assert!(flood.result().is_none());
    }

    #[derive(Default)]
    struct CountingObserver {
        seen: usize,
        echo: Vec<(u64, usize, bool)>,
        ready: Vec<(u64, usize, bool, bool)>,
        accept: Vec<(u64, usize, bool)>,
    }

    impl FloodObserver<Val> for CountingObserver {
        fn id_seen(&mut self, _step: u32, _link: LinkId, _value: &Val) {
            self.seen += 1;
        }
        fn echo_threshold(&mut self, _s: u32, v: &Val, echoes: usize, _q: usize, kept: bool) {
            self.echo.push((v.0, echoes, kept));
        }
        fn ready_threshold(
            &mut self,
            _s: u32,
            v: &Val,
            readies: usize,
            _q: usize,
            _w: usize,
            timely: bool,
            relayed: bool,
        ) {
            self.ready.push((v.0, readies, timely, relayed));
        }
        fn accept_threshold(
            &mut self,
            _s: u32,
            v: &Val,
            readies: usize,
            _q: usize,
            accepted: bool,
        ) {
            self.accept.push((v.0, readies, accepted));
        }
    }

    #[test]
    fn observer_sees_every_threshold_decision() {
        // Drive one flood participant by hand through all four steps in a
        // 4-process system with t = 1 where everyone behaves. Each
        // participant gets a *private* interner, so delivery also exercises
        // the foreign-interner rebase path.
        let n = 4usize;
        let vals = [Val(1), Val(2), Val(3), Val(4)];
        let mut floods: Vec<EchoReadyFlood<Val>> = (0..n)
            .map(|i| EchoReadyFlood::new(n, 1, Some(vals[i])))
            .collect();
        let mut obs = CountingObserver::default();
        for step in 1..=4u32 {
            let outgoing: Vec<FloodMsg<Val>> =
                floods.iter_mut().map(|f| f.send(step).unwrap()).collect();
            let inbox: Vec<(LinkId, FloodMsg<Val>)> = outgoing
                .iter()
                .enumerate()
                .map(|(i, m)| (LinkId::new(i + 1), m.clone()))
                .collect();
            for (i, flood) in floods.iter_mut().enumerate() {
                let view = inbox.iter().map(|(l, m)| (*l, m));
                if i == 0 {
                    flood.deliver_observed(step, view, &mut obs);
                } else {
                    flood.deliver(step, view);
                }
            }
        }
        // All four announcements seen, every value judged at each threshold
        // with the full quorum count, and everything admitted.
        assert_eq!(obs.seen, 4);
        assert_eq!(
            obs.echo,
            vec![(1, 4, true), (2, 4, true), (3, 4, true), (4, 4, true)]
        );
        assert_eq!(obs.ready.len(), 4);
        assert!(obs
            .ready
            .iter()
            .all(|&(_, r, timely, relayed)| r == 4 && timely && !relayed));
        assert_eq!(obs.accept.len(), 4);
        assert!(obs
            .accept
            .iter()
            .all(|&(_, r, accepted)| r == 4 && accepted));
        let result = floods[0].result().unwrap();
        assert_eq!(result.timely.len(), 4);
    }

    #[test]
    fn message_sizes_scale_with_set_size() {
        let interner = IdInterner::new();
        let small = FloodMsg::Echo(IdSlotSet::from_values(&interner, [Val(1)]));
        let large = FloodMsg::Echo(IdSlotSet::from_values(&interner, (0..10).map(Val)));
        assert_eq!(large.wire_bits() - small.wire_bits(), 9 * ID_BITS);
        let init = FloodMsg::Init(Val(1));
        assert!(init.wire_bits() < small.wire_bits() + ID_BITS);
    }

    #[test]
    fn shared_interner_run_matches_private_interners() {
        // The same 4-process all-correct run, once with per-actor private
        // interners (rebase path) and once over a shared registry (borrow
        // path) — the protocol outcome cannot tell the difference.
        let n = 4usize;
        let vals = [Val(4), Val(2), Val(9), Val(1)];
        let run = |interners: Vec<IdInterner<Val>>| {
            let mut floods: Vec<EchoReadyFlood<Val>> = interners
                .into_iter()
                .enumerate()
                .map(|(i, interner)| EchoReadyFlood::with_interner(n, 1, Some(vals[i]), interner))
                .collect();
            for step in 1..=4u32 {
                let outgoing: Vec<FloodMsg<Val>> =
                    floods.iter_mut().map(|f| f.send(step).unwrap()).collect();
                let inbox: Vec<(LinkId, FloodMsg<Val>)> = outgoing
                    .iter()
                    .enumerate()
                    .map(|(i, m)| (LinkId::new(i + 1), m.clone()))
                    .collect();
                for flood in floods.iter_mut() {
                    flood.deliver(step, inbox.iter().map(|(l, m)| (*l, m)));
                }
            }
            floods
                .iter()
                .map(|f| f.result().unwrap().clone())
                .collect::<Vec<_>>()
        };
        let shared = IdInterner::new();
        let shared_results = run((0..n).map(|_| shared.clone()).collect());
        let private_results = run((0..n).map(|_| IdInterner::new()).collect());
        assert_eq!(shared_results, private_results);
        assert_eq!(shared_results[0].timely.len(), 4);
    }
}
