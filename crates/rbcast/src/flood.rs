//! The 4-step Echo/Ready flood (Algorithm 1, steps 1–4, generalized over
//! the value type).

use opr_sim::{Actor, Inbox, Outbox, WireSize, COUNT_BITS, TAG_BITS};
use opr_types::{LinkId, Round};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// Messages of the flood protocol.
///
/// `Init` carries exactly one value — this is what bounds a Byzantine
/// process to introducing at most one candidate per link in step 1, which
/// the `t(N−t)` counting argument of Lemma A.1 relies on. `Echo` and `Ready`
/// carry the batched sets (equivalent to the paper's one-message-per-value
/// formulation, since thresholds count *distinct links* per value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FloodMsg<V> {
    /// Step 1: announce one value.
    Init(V),
    /// Step 2: echo every value received in step 1.
    Echo(BTreeSet<V>),
    /// Steps 3 and 4: signal readiness for a set of values.
    Ready(BTreeSet<V>),
}

impl<V: WireSize> WireSize for FloodMsg<V> {
    fn wire_bits(&self) -> u64 {
        match self {
            FloodMsg::Init(v) => TAG_BITS + v.wire_bits(),
            FloodMsg::Echo(set) | FloodMsg::Ready(set) => {
                TAG_BITS + COUNT_BITS + set.iter().map(WireSize::wire_bits).sum::<u64>()
            }
        }
    }
}

/// Outcome of the flood at one correct process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FloodResult<V> {
    /// Values whose `Ready` reached `N − t` links by step 3 — guaranteed to
    /// include every correct value, and guaranteed to be inside every other
    /// correct process's `accepted`.
    pub timely: BTreeSet<V>,
    /// Values whose `Ready` messages (steps 3 + 4 combined) reached `N − t`
    /// distinct links. `|accepted| ≤ N + ⌊t²/(N−2t)⌋`.
    pub accepted: BTreeSet<V>,
}

impl<V> Default for FloodResult<V> {
    fn default() -> Self {
        FloodResult {
            timely: BTreeSet::new(),
            accepted: BTreeSet::new(),
        }
    }
}

/// Observation hooks for the flood's threshold arithmetic.
///
/// Every callback fires at a decision point of
/// [`deliver_observed`](EchoReadyFlood::deliver_observed) with the exact
/// counts the decision compared. Default bodies are empty, so observers
/// override only what they need and [`NoopFloodObserver`] costs nothing.
pub trait FloodObserver<V> {
    /// Step 1: a value was announced via `Init` on `link`.
    fn id_seen(&mut self, step: u32, link: LinkId, value: &V) {
        let _ = (step, link, value);
    }

    /// Step 2: `value` was echoed on `echoes` distinct links and compared
    /// against the `N − t` quorum; it survives iff `kept`.
    fn echo_threshold(&mut self, step: u32, value: &V, echoes: usize, quorum: usize, kept: bool) {
        let _ = (step, value, echoes, quorum, kept);
    }

    /// Step 3: `value` has `Ready` from `readies` distinct links; it is
    /// `timely` iff `readies ≥ quorum`, and this process `relayed` a `Ready`
    /// of its own iff `readies ≥ weak_quorum` and it had not already.
    #[allow(clippy::too_many_arguments)]
    fn ready_threshold(
        &mut self,
        step: u32,
        value: &V,
        readies: usize,
        quorum: usize,
        weak_quorum: usize,
        timely: bool,
        relayed: bool,
    ) {
        let _ = (step, value, readies, quorum, weak_quorum, timely, relayed);
    }

    /// Step 4: `value` has `Ready` from `readies` distinct links in total;
    /// it is `accepted` iff `readies ≥ quorum`.
    fn accept_threshold(
        &mut self,
        step: u32,
        value: &V,
        readies: usize,
        quorum: usize,
        accepted: bool,
    ) {
        let _ = (step, value, readies, quorum, accepted);
    }
}

/// The do-nothing observer plain [`deliver`](EchoReadyFlood::deliver)
/// delegates through.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopFloodObserver;

impl<V> FloodObserver<V> for NoopFloodObserver {}

/// State machine for the 4-step flood, meant to be *embedded*: the owner
/// forwards [`send`](EchoReadyFlood::send) and
/// [`deliver`](EchoReadyFlood::deliver) for relative steps `1 ⋯ 4` and reads
/// the [`FloodResult`] afterwards.
#[derive(Clone, Debug)]
pub struct EchoReadyFlood<V> {
    n: usize,
    t: usize,
    initial: Option<V>,
    /// Working set: after step 1 the values to echo; after step 2 the values
    /// to send `Ready` for; after step 3 the values to relay-`Ready`.
    working: BTreeSet<V>,
    /// Values we have already sent `Ready` for (step 3), so step 4 only
    /// relays new ones.
    ready_sent: BTreeSet<V>,
    /// Distinct links per value across `Ready` messages of steps 3 and 4.
    ready_links: BTreeMap<V, BTreeSet<LinkId>>,
    result: FloodResult<V>,
    finished: bool,
}

impl<V: Ord + Clone + Debug> EchoReadyFlood<V> {
    /// Creates a flood participant announcing `initial` (correct processes
    /// announce their own id; pass `None` to participate without
    /// announcing).
    pub fn new(n: usize, t: usize, initial: Option<V>) -> Self {
        EchoReadyFlood {
            n,
            t,
            initial,
            working: BTreeSet::new(),
            ready_sent: BTreeSet::new(),
            ready_links: BTreeMap::new(),
            result: FloodResult::default(),
            finished: false,
        }
    }

    /// Quorum threshold `N − t`.
    fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// Relay threshold `N − 2t`.
    fn weak_quorum(&self) -> usize {
        self.n - 2 * self.t
    }

    /// The message for relative step `step ∈ 1..=4`, if any.
    ///
    /// # Panics
    ///
    /// Panics on steps outside `1..=4`.
    pub fn send(&mut self, step: u32) -> Option<FloodMsg<V>> {
        match step {
            1 => self.initial.clone().map(FloodMsg::Init),
            2 => Some(FloodMsg::Echo(std::mem::take(&mut self.working))),
            3 => {
                let ready: BTreeSet<V> = std::mem::take(&mut self.working);
                self.ready_sent = ready.clone();
                Some(FloodMsg::Ready(ready))
            }
            4 => Some(FloodMsg::Ready(std::mem::take(&mut self.working))),
            _ => panic!("flood has exactly 4 steps, got step {step}"),
        }
    }

    /// Consumes the messages of relative step `step ∈ 1..=4`.
    ///
    /// Takes any `(link, &msg)` iterator — typically
    /// [`Inbox::messages`](opr_sim::Inbox::messages) or a borrowed
    /// `filter_map` view over an embedding protocol's own message type — so
    /// delivery never forces a copy of the shared broadcast payloads.
    ///
    /// # Panics
    ///
    /// Panics on steps outside `1..=4`.
    pub fn deliver<'a, I>(&mut self, step: u32, inbox: I)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
    {
        self.deliver_observed(step, inbox, &mut NoopFloodObserver);
    }

    /// [`deliver`](EchoReadyFlood::deliver), reporting every threshold
    /// decision to `observer`. The observer sees counts in the value's
    /// `Ord` order, so emission order is deterministic.
    ///
    /// # Panics
    ///
    /// Panics on steps outside `1..=4`.
    pub fn deliver_observed<'a, I, O>(&mut self, step: u32, inbox: I, observer: &mut O)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
        O: FloodObserver<V> + ?Sized,
    {
        match step {
            1 => {
                // Collect one announced value per distinct link.
                for (link, msg) in inbox {
                    if let FloodMsg::Init(v) = msg {
                        observer.id_seen(step, link, v);
                        self.working.insert(v.clone());
                    }
                }
            }
            2 => {
                // Values echoed on ≥ N−t distinct links survive.
                let mut echo_links: BTreeMap<&V, usize> = BTreeMap::new();
                for (_, msg) in inbox {
                    if let FloodMsg::Echo(set) = msg {
                        for v in set {
                            *echo_links.entry(v).or_insert(0) += 1;
                        }
                    }
                }
                let quorum = self.quorum();
                self.working = echo_links
                    .into_iter()
                    .filter(|(v, links)| {
                        let kept = *links >= quorum;
                        observer.echo_threshold(step, v, *links, quorum, kept);
                        kept
                    })
                    .map(|(v, _)| v.clone())
                    .collect();
            }
            3 => {
                self.accumulate_ready(inbox);
                // Timely: Ready on ≥ N−t links already in step 3.
                let quorum = self.quorum();
                self.result.timely = self
                    .ready_links
                    .iter()
                    .filter(|(_, links)| links.len() >= quorum)
                    .map(|(v, _)| v.clone())
                    .collect();
                // Relay in step 4: Ready on ≥ N−2t links, not yet sent by us.
                let weak = self.weak_quorum();
                self.working = self
                    .ready_links
                    .iter()
                    .filter(|(v, links)| links.len() >= weak && !self.ready_sent.contains(*v))
                    .map(|(v, _)| v.clone())
                    .collect();
                for (v, links) in &self.ready_links {
                    observer.ready_threshold(
                        step,
                        v,
                        links.len(),
                        quorum,
                        weak,
                        self.result.timely.contains(v),
                        self.working.contains(v),
                    );
                }
            }
            4 => {
                self.accumulate_ready(inbox);
                let quorum = self.quorum();
                self.result.accepted = self
                    .ready_links
                    .iter()
                    .filter(|(_, links)| links.len() >= quorum)
                    .map(|(v, _)| v.clone())
                    .collect();
                for (v, links) in &self.ready_links {
                    observer.accept_threshold(
                        step,
                        v,
                        links.len(),
                        quorum,
                        self.result.accepted.contains(v),
                    );
                }
                self.finished = true;
            }
            _ => panic!("flood has exactly 4 steps, got step {step}"),
        }
    }

    fn accumulate_ready<'a, I>(&mut self, inbox: I)
    where
        V: 'a,
        I: IntoIterator<Item = (LinkId, &'a FloodMsg<V>)>,
    {
        for (link, msg) in inbox {
            if let FloodMsg::Ready(set) = msg {
                for v in set {
                    self.ready_links.entry(v.clone()).or_default().insert(link);
                }
            }
        }
    }

    /// The result, once step 4 has been delivered.
    pub fn result(&self) -> Option<&FloodResult<V>> {
        self.finished.then_some(&self.result)
    }
}

/// Standalone [`Actor`] wrapper around [`EchoReadyFlood`]: runs the four
/// steps starting at round 1 and outputs the [`FloodResult`].
#[derive(Clone, Debug)]
pub struct FloodActor<V> {
    flood: EchoReadyFlood<V>,
}

impl<V: Ord + Clone + Debug> FloodActor<V> {
    /// Creates the actor; see [`EchoReadyFlood::new`].
    pub fn new(n: usize, t: usize, initial: Option<V>) -> Self {
        FloodActor {
            flood: EchoReadyFlood::new(n, t, initial),
        }
    }
}

impl<V: Ord + Clone + Debug + WireSize + Send> Actor for FloodActor<V> {
    type Msg = FloodMsg<V>;
    type Output = FloodResult<V>;

    fn send(&mut self, round: Round) -> Outbox<FloodMsg<V>> {
        if round.number() <= 4 {
            match self.flood.send(round.number()) {
                Some(msg) => Outbox::Broadcast(msg),
                None => Outbox::Silent,
            }
        } else {
            Outbox::Silent
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<FloodMsg<V>>) {
        if round.number() <= 4 {
            self.flood.deliver(round.number(), inbox.messages());
        }
    }

    fn output(&self) -> Option<FloodResult<V>> {
        self.flood.result().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_sim::{Network, Topology, ID_BITS};

    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Val(u64);
    impl WireSize for Val {
        fn wire_bits(&self) -> u64 {
            ID_BITS
        }
    }

    type Net = Network<FloodMsg<Val>, FloodResult<Val>>;

    fn flood_net(n: usize, t: usize, values: &[u64], faulty: usize, seed: u64) -> Net {
        // First `faulty` actors are silent Byzantine placeholders (announce
        // nothing, echo nothing).
        let mut actors: Vec<Box<dyn Actor<Msg = FloodMsg<Val>, Output = FloodResult<Val>>>> =
            Vec::new();
        let mut correct = Vec::new();
        for i in 0..faulty {
            struct Silent;
            impl Actor for Silent {
                type Msg = FloodMsg<Val>;
                type Output = FloodResult<Val>;
                fn send(&mut self, _r: Round) -> Outbox<FloodMsg<Val>> {
                    Outbox::Silent
                }
                fn deliver(&mut self, _r: Round, _i: Inbox<FloodMsg<Val>>) {}
                fn output(&self) -> Option<FloodResult<Val>> {
                    None
                }
            }
            let _ = i;
            actors.push(Box::new(Silent));
            correct.push(false);
        }
        for &v in values {
            actors.push(Box::new(FloodActor::new(n, t, Some(Val(v)))));
            correct.push(true);
        }
        assert_eq!(actors.len(), n);
        Network::with_faults(actors, correct, Topology::seeded(n, seed))
    }

    #[test]
    fn all_correct_values_are_timely_everywhere() {
        let (n, t) = (7usize, 2usize);
        let values = [10, 20, 30, 40, 50, 60, 70];
        let mut net = flood_net(n, t, &values, 0, 3);
        assert!(net.run(4).completed);
        for i in 0..n {
            let res = net.output_of(i).unwrap();
            assert_eq!(res.timely.len(), n);
            assert_eq!(res.accepted.len(), n);
        }
    }

    #[test]
    fn silent_byzantine_processes_do_not_block_correct_values() {
        let (n, t) = (7usize, 2usize);
        let values = [10, 20, 30, 40, 50];
        let mut net = flood_net(n, t, &values, t, 11);
        net.run(4);
        for i in t..n {
            let res = net.output_of(i).unwrap();
            // Lemma IV.2: every correct value is timely at every correct
            // process.
            for v in values {
                assert!(res.timely.contains(&Val(v)), "p{i} missing {v}");
            }
            // Lemma IV.1 ⊆ relation.
            assert!(res.timely.is_subset(&res.accepted));
        }
    }

    #[test]
    fn timely_somewhere_implies_accepted_everywhere() {
        let (n, t) = (10usize, 3usize);
        let values = [1, 2, 3, 4, 5, 6, 7];
        let mut net = flood_net(n, t, &values, t, 7);
        net.run(4);
        let results: Vec<FloodResult<Val>> = (t..n).map(|i| net.output_of(i).unwrap()).collect();
        let timely_union: BTreeSet<Val> = results
            .iter()
            .flat_map(|r| r.timely.iter().copied())
            .collect();
        for (i, res) in results.iter().enumerate() {
            assert!(
                timely_union.is_subset(&res.accepted),
                "correct process {i}: union of timely sets must be ⊆ accepted"
            );
        }
    }

    #[test]
    fn accepted_is_bounded_even_with_silent_byzantine() {
        let (n, t) = (10usize, 3usize);
        let values = [1, 2, 3, 4, 5, 6, 7];
        let mut net = flood_net(n, t, &values, t, 9);
        net.run(4);
        let bound = n + (t * t) / (n - 2 * t);
        for i in t..n {
            let res = net.output_of(i).unwrap();
            assert!(res.accepted.len() <= bound);
        }
    }

    #[test]
    fn non_announcing_correct_process_still_learns() {
        let n = 4;
        let mut actors: Vec<Box<dyn Actor<Msg = FloodMsg<Val>, Output = FloodResult<Val>>>> =
            vec![Box::new(FloodActor::new(n, 1, None))];
        for v in [5, 6, 7] {
            actors.push(Box::new(FloodActor::new(n, 1, Some(Val(v)))));
        }
        let mut net: Net = Network::new(actors, Topology::canonical(n));
        assert!(net.run(4).completed);
        let res = net.output_of(0).unwrap();
        assert_eq!(res.timely.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exactly 4 steps")]
    fn rejects_out_of_range_step() {
        let mut flood: EchoReadyFlood<Val> = EchoReadyFlood::new(4, 1, None);
        let _ = flood.send(5);
    }

    #[test]
    fn result_unavailable_before_step_4() {
        let flood: EchoReadyFlood<Val> = EchoReadyFlood::new(4, 1, Some(Val(1)));
        assert!(flood.result().is_none());
    }

    #[derive(Default)]
    struct CountingObserver {
        seen: usize,
        echo: Vec<(u64, usize, bool)>,
        ready: Vec<(u64, usize, bool, bool)>,
        accept: Vec<(u64, usize, bool)>,
    }

    impl FloodObserver<Val> for CountingObserver {
        fn id_seen(&mut self, _step: u32, _link: LinkId, _value: &Val) {
            self.seen += 1;
        }
        fn echo_threshold(&mut self, _s: u32, v: &Val, echoes: usize, _q: usize, kept: bool) {
            self.echo.push((v.0, echoes, kept));
        }
        fn ready_threshold(
            &mut self,
            _s: u32,
            v: &Val,
            readies: usize,
            _q: usize,
            _w: usize,
            timely: bool,
            relayed: bool,
        ) {
            self.ready.push((v.0, readies, timely, relayed));
        }
        fn accept_threshold(
            &mut self,
            _s: u32,
            v: &Val,
            readies: usize,
            _q: usize,
            accepted: bool,
        ) {
            self.accept.push((v.0, readies, accepted));
        }
    }

    #[test]
    fn observer_sees_every_threshold_decision() {
        // Drive one flood participant by hand through all four steps in a
        // 4-process system with t = 1 where everyone behaves.
        let n = 4usize;
        let vals = [Val(1), Val(2), Val(3), Val(4)];
        let mut floods: Vec<EchoReadyFlood<Val>> = (0..n)
            .map(|i| EchoReadyFlood::new(n, 1, Some(vals[i])))
            .collect();
        let mut obs = CountingObserver::default();
        for step in 1..=4u32 {
            let outgoing: Vec<FloodMsg<Val>> =
                floods.iter_mut().map(|f| f.send(step).unwrap()).collect();
            let inbox: Vec<(LinkId, FloodMsg<Val>)> = outgoing
                .iter()
                .enumerate()
                .map(|(i, m)| (LinkId::new(i + 1), m.clone()))
                .collect();
            for (i, flood) in floods.iter_mut().enumerate() {
                let view = inbox.iter().map(|(l, m)| (*l, m));
                if i == 0 {
                    flood.deliver_observed(step, view, &mut obs);
                } else {
                    flood.deliver(step, view);
                }
            }
        }
        // All four announcements seen, every value judged at each threshold
        // with the full quorum count, and everything admitted.
        assert_eq!(obs.seen, 4);
        assert_eq!(
            obs.echo,
            vec![(1, 4, true), (2, 4, true), (3, 4, true), (4, 4, true)]
        );
        assert_eq!(obs.ready.len(), 4);
        assert!(obs
            .ready
            .iter()
            .all(|&(_, r, timely, relayed)| r == 4 && timely && !relayed));
        assert_eq!(obs.accept.len(), 4);
        assert!(obs
            .accept
            .iter()
            .all(|&(_, r, accepted)| r == 4 && accepted));
        let result = floods[0].result().unwrap();
        assert_eq!(result.timely.len(), 4);
    }

    #[test]
    fn message_sizes_scale_with_set_size() {
        let small = FloodMsg::Echo(BTreeSet::from([Val(1)]));
        let large = FloodMsg::Echo((0..10).map(Val).collect::<BTreeSet<_>>());
        assert_eq!(large.wire_bits() - small.wire_bits(), 9 * ID_BITS);
        let init = FloodMsg::Init(Val(1));
        assert!(init.wire_bits() < small.wire_bits() + ID_BITS);
    }
}
