#![warn(missing_docs)]
//! Echo/Ready reliable flooding, bounded to four synchronous steps.
//!
//! The id-selection phase of Algorithm 1 is a *batched, sender-anonymous*
//! variant of the control-message core of Bracha's reliable broadcast
//! (Bracha & Toueg, JACM 1985): every process floods a value, everyone
//! echoes what it received, `Ready` messages amplify, and two thresholds
//! (`N − t` to act, `N − 2t` to relay) bound what Byzantine processes can
//! inject. Unlike full reliable broadcast the paper's variant terminates in
//! exactly 4 steps and does **not** guarantee all correct processes accept
//! the same set — it guarantees the weaker containment that suffices for
//! renaming:
//!
//! * every correct value is `timely` everywhere (Lemma IV.2);
//! * anything `timely` *somewhere* is `accepted` *everywhere*
//!   (Lemma IV.1);
//! * at most `t + ⌊t²/(N−2t)⌋` Byzantine values are accepted anywhere
//!   (Lemmas IV.3 / A.1).
//!
//! [`EchoReadyFlood`] implements the four steps over any ordered value type;
//! `opr-core` instantiates it with original ids, and the test-suite uses it
//! directly to validate the three properties above. [`FloodActor`] wraps it
//! as a standalone [`Actor`](opr_sim::Actor) for tests and demos.

pub mod flood;
pub mod reference;
pub mod slots;

pub use flood::{
    EchoReadyFlood, FloodActor, FloodMsg, FloodObserver, FloodResult, NoopFloodObserver,
};
pub use slots::{for_each_slot, IdInterner, IdSlotSet, SlotWords, WORD_BITS};
