//! The schedule-as-genome view the guided search mutates.
//!
//! A [`ChaosSchedule`] already *is* a complete attack genome: the fault
//! plan (drops, silences, crashes and their onsets), the Byzantine count
//! (placement follows deterministically from `run_seed`), the per-run
//! Byzantine strategy, and the workload layout (id distribution + seed).
//! This module adds the three operations a search needs on top:
//!
//! * [`genome_key`] — a stable 64-bit fingerprint for deduplication, so
//!   neither random campaigns nor guided search pay to re-evaluate an
//!   attack they have already run;
//! * [`mutate`] — a seeded, deterministic point mutation that stays inside
//!   a target [`BudgetRegime`];
//! * [`crossover`] — recombination of two parents, shape taken jointly
//!   from one of them so the child is always a legal `(n, t)` system.
//!
//! Every operation ends in a repair pass that re-aims the *effective*
//! fault count (Byzantine + transport-disturbed correct senders) at the
//! target regime and re-canonicalizes the event list through
//! [`FaultPlan`], so mutants compose with the shrinker exactly like
//! generated schedules do.

use crate::generator::GENEROUS_CAP_BITS;
use crate::schedule::{BudgetRegime, ChaosSchedule};
use opr_adversary::AdversarySpec;
use opr_core::fault_placement;
use opr_transport::{FaultEvent, FaultPlan};
use opr_types::Regime;
use opr_workload::IdDistribution;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use std::collections::BTreeSet;

/// splitmix64's finalizer: the workspace's standard bit mixer.
fn mix(state: u64, value: u64) -> u64 {
    let mut z = state
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(value.wrapping_mul(0xff51_afd7_ed55_8ccd));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn regime_index(regime: Regime) -> u64 {
    match regime {
        Regime::LogTime => 0,
        Regime::ConstantTime => 1,
        Regime::TwoStep => 2,
    }
}

fn dist_index(dist: IdDistribution) -> u64 {
    IdDistribution::ALL
        .iter()
        .position(|d| *d == dist)
        .unwrap_or(0) as u64
}

/// The stable fingerprint of a schedule genome. Two schedules share a key
/// exactly when every behavioural field agrees (regime, shape, workload,
/// adversary, Byzantine count, seeds, canonical fault events, payload
/// cap), so a key-deduped campaign never re-evaluates an identical attack.
pub fn genome_key(schedule: &ChaosSchedule) -> u64 {
    let mut h = 0x6765_6e6f_6d65_2d6bu64; // "genome-k"
    h = mix(h, regime_index(schedule.regime));
    h = mix(h, schedule.n as u64);
    h = mix(h, schedule.t as u64);
    h = mix(h, dist_index(schedule.id_dist));
    h = mix(h, schedule.id_seed);
    for byte in schedule.adversary.label().bytes() {
        h = mix(h, u64::from(byte));
    }
    h = mix(h, schedule.byzantine as u64);
    h = mix(h, schedule.run_seed);
    for event in &schedule.events {
        let (tag, sender, link, round) = match *event {
            FaultEvent::Drop {
                sender,
                link,
                round,
            } => (1u64, sender, link, round),
            FaultEvent::SilenceLink { sender, link, from } => (2, sender, link, from),
            FaultEvent::Crash { sender, from } => (3, sender, 0, from),
        };
        h = mix(h, tag);
        h = mix(h, sender as u64);
        h = mix(h, link as u64);
        h = mix(h, u64::from(round));
    }
    h = mix(h, schedule.payload_cap.map_or(0, |cap| cap | 1));
    h
}

/// The legal effective-fault range for `budget` on an `(n, t)` shape.
fn effective_bounds(n: usize, t: usize, budget: BudgetRegime) -> (usize, usize) {
    match budget {
        BudgetRegime::InBudget => (0, t.saturating_sub(1)),
        BudgetRegime::AtBudget => (t, t),
        BudgetRegime::OverBudget => (t + 1, (t + 2).min(n.saturating_sub(2)).max(t + 1)),
    }
}

/// The round budget of a schedule's shape, for clamping fault onsets.
fn round_budget(schedule: &ChaosSchedule) -> u32 {
    schedule
        .cfg()
        .map(|cfg| cfg.total_steps(schedule.regime))
        .unwrap_or(8)
        .max(1)
}

fn random_round(rng: &mut StdRng, rounds: u32) -> u32 {
    rng.gen_range(1..=rounds)
}

fn random_link(rng: &mut StdRng, n: usize) -> usize {
    rng.gen_range(1..=n)
}

fn event_round(event: &FaultEvent) -> u32 {
    match *event {
        FaultEvent::Drop { round, .. } => round,
        FaultEvent::SilenceLink { from, .. } | FaultEvent::Crash { from, .. } => from,
    }
}

fn with_round(event: FaultEvent, round: u32) -> FaultEvent {
    match event {
        FaultEvent::Drop { sender, link, .. } => FaultEvent::Drop {
            sender,
            link,
            round,
        },
        FaultEvent::SilenceLink { sender, link, .. } => FaultEvent::SilenceLink {
            sender,
            link,
            from: round,
        },
        FaultEvent::Crash { sender, .. } => FaultEvent::Crash {
            sender,
            from: round,
        },
    }
}

/// Canonicalizes the event list through [`FaultPlan`] (sorted, deduped,
/// duplicate silences merged to the earliest onset) and normalizes the
/// strategy of a Byzantine-free schedule, so equal attacks hash equal.
fn canonicalize(mut schedule: ChaosSchedule) -> ChaosSchedule {
    schedule.events = FaultPlan::from_events(schedule.events.iter().copied()).events();
    if schedule.byzantine == 0 {
        schedule.adversary = AdversarySpec::Silent;
    }
    schedule
}

/// Re-aims `schedule` at `budget`: sheds disturbed senders or Byzantine
/// actors while over target, crashes undisturbed correct processes or adds
/// Byzantine actors while under. Bounded; falls back to a bare
/// `effective = lo` schedule if the walk fails to land (it cannot in
/// practice — every step moves the count by one in the right direction).
fn repair(mut schedule: ChaosSchedule, budget: BudgetRegime, rng: &mut StdRng) -> ChaosSchedule {
    let (lo, hi) = effective_bounds(schedule.n, schedule.t, budget);
    let rounds = round_budget(&schedule);
    let n = schedule.n;
    // Events must name an in-range sender/link before any accounting.
    schedule.events.retain(|e| {
        e.sender() < n
            && match *e {
                FaultEvent::Drop { link, .. } | FaultEvent::SilenceLink { link, .. } => {
                    (1..=n).contains(&link)
                }
                FaultEvent::Crash { .. } => true,
            }
    });
    for event in &mut schedule.events {
        let clamped = event_round(event).clamp(1, rounds);
        *event = with_round(*event, clamped);
    }
    schedule.byzantine = schedule.byzantine.min(hi);

    for _ in 0..(4 * n + 8) {
        let effective = schedule.effective_faults();
        if (lo..=hi).contains(&effective) {
            return canonicalize(schedule);
        }
        let mask = fault_placement(n, schedule.byzantine, schedule.run_seed);
        let disturbed: BTreeSet<usize> = schedule
            .events
            .iter()
            .map(FaultEvent::sender)
            .filter(|&s| !mask[s])
            .collect();
        if effective > hi {
            let pool: Vec<usize> = disturbed.into_iter().collect();
            if let Some(&victim) = pool.as_slice().choose(rng) {
                schedule.events.retain(|e| e.sender() != victim);
            } else if schedule.byzantine > 0 {
                schedule.byzantine -= 1;
            } else {
                break;
            }
        } else {
            let pool: Vec<usize> = (0..n)
                .filter(|&i| !mask[i] && !disturbed.contains(&i))
                .collect();
            if let Some(&victim) = pool.as_slice().choose(rng) {
                schedule.events.push(FaultEvent::Crash {
                    sender: victim,
                    from: random_round(rng, rounds),
                });
            } else if schedule.byzantine < hi {
                schedule.byzantine += 1;
            } else {
                break;
            }
        }
    }
    // Unreachable walk end: land exactly at the regime floor.
    schedule.events.clear();
    schedule.byzantine = lo;
    canonicalize(schedule)
}

/// One seeded point mutation of `schedule`, kept inside `budget`. Applies
/// one or two of the mutation operators (onset jiggle, fault add/remove/
/// retarget, adversary swap, Byzantine count shift, seed and workload
/// perturbations, payload-cap toggle), then repairs and canonicalizes.
pub fn mutate(schedule: &ChaosSchedule, budget: BudgetRegime, rng: &mut StdRng) -> ChaosSchedule {
    let mut child = schedule.clone();
    let ops = rng.gen_range(1..=2usize);
    for _ in 0..ops {
        apply_random_op(&mut child, rng);
    }
    repair(child, budget, rng)
}

fn apply_random_op(schedule: &mut ChaosSchedule, rng: &mut StdRng) {
    let rounds = round_budget(schedule);
    let n = schedule.n;
    match rng.gen_range(0..10u32) {
        // Perturb one fault onset by ±1 round.
        0 => {
            if !schedule.events.is_empty() {
                let i = rng.gen_range(0..schedule.events.len());
                let old = event_round(&schedule.events[i]);
                let new = if rng.gen_bool(0.5) {
                    old.saturating_sub(1).max(1)
                } else {
                    (old + 1).min(rounds)
                };
                schedule.events[i] = with_round(schedule.events[i], new);
            }
        }
        // Add one fault event (repair re-aims the budget afterwards).
        1 => {
            let sender = rng.gen_range(0..n);
            let event = match rng.gen_range(0..3u32) {
                0 => FaultEvent::Crash {
                    sender,
                    from: random_round(rng, rounds),
                },
                1 => FaultEvent::SilenceLink {
                    sender,
                    link: random_link(rng, n),
                    from: random_round(rng, rounds),
                },
                _ => FaultEvent::Drop {
                    sender,
                    link: random_link(rng, n),
                    round: random_round(rng, rounds),
                },
            };
            schedule.events.push(event);
        }
        // Remove one fault event.
        2 => {
            if !schedule.events.is_empty() {
                let i = rng.gen_range(0..schedule.events.len());
                schedule.events.remove(i);
            }
        }
        // Retarget one drop/silence onto a different link.
        3 => {
            if !schedule.events.is_empty() {
                let i = rng.gen_range(0..schedule.events.len());
                let link = random_link(rng, n);
                schedule.events[i] = match schedule.events[i] {
                    FaultEvent::Drop { sender, round, .. } => FaultEvent::Drop {
                        sender,
                        link,
                        round,
                    },
                    FaultEvent::SilenceLink { sender, from, .. } => {
                        FaultEvent::SilenceLink { sender, link, from }
                    }
                    crash => crash,
                };
            }
        }
        // Swap the Byzantine strategy within the regime's suite.
        4 => {
            if let Some(&spec) = AdversarySpec::suite(schedule.regime).choose(rng) {
                schedule.adversary = spec;
            }
        }
        // Shift the Byzantine count by ±1 (repair clamps and re-aims).
        5 => {
            if rng.gen_bool(0.5) {
                schedule.byzantine = schedule.byzantine.saturating_sub(1);
            } else {
                schedule.byzantine += 1;
            }
        }
        // Reseed the run (moves the Byzantine placement and all
        // strategy-internal randomness).
        6 => schedule.run_seed = rng.next_u64(),
        // Reseed the workload ids.
        7 => schedule.id_seed = rng.next_u64(),
        // Swap the id distribution.
        8 => {
            if let Some(&dist) = IdDistribution::ALL.as_slice().choose(rng) {
                schedule.id_dist = dist;
            }
        }
        // Toggle the payload cap.
        _ => {
            schedule.payload_cap = match schedule.payload_cap {
                Some(_) => None,
                None => Some(GENEROUS_CAP_BITS),
            };
        }
    }
}

/// Seeded recombination of two parents: the `(regime, n, t)` shape comes
/// jointly from one parent (so the child is always a legal system), every
/// other gene is drawn per-field, and the fault events are a subset-merge
/// of both parents' plans — then repaired into `budget`.
pub fn crossover(
    a: &ChaosSchedule,
    b: &ChaosSchedule,
    budget: BudgetRegime,
    rng: &mut StdRng,
) -> ChaosSchedule {
    let shape = if rng.gen_bool(0.5) { a } else { b };
    let pick_u64 = |rng: &mut StdRng, x: u64, y: u64| if rng.gen_bool(0.5) { x } else { y };

    let mut adversary = if rng.gen_bool(0.5) {
        a.adversary
    } else {
        b.adversary
    };
    if !AdversarySpec::suite(shape.regime).contains(&adversary) {
        adversary = shape.adversary;
    }

    let mut events = Vec::new();
    for parent in [a, b] {
        for &event in &parent.events {
            if rng.gen_bool(0.5) {
                events.push(event);
            }
        }
    }

    let child = ChaosSchedule {
        regime: shape.regime,
        n: shape.n,
        t: shape.t,
        id_dist: if rng.gen_bool(0.5) {
            a.id_dist
        } else {
            b.id_dist
        },
        id_seed: pick_u64(rng, a.id_seed, b.id_seed),
        adversary,
        byzantine: if rng.gen_bool(0.5) {
            a.byzantine
        } else {
            b.byzantine
        },
        run_seed: pick_u64(rng, a.run_seed, b.run_seed),
        events,
        payload_cap: if rng.gen_bool(0.5) {
            a.payload_cap
        } else {
            b.payload_cap
        },
    };
    repair(child, budget, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_schedule;
    use rand::SeedableRng;

    #[test]
    fn genome_key_separates_and_identifies() {
        let a = generate_schedule(1, BudgetRegime::AtBudget);
        let b = generate_schedule(2, BudgetRegime::AtBudget);
        assert_eq!(genome_key(&a), genome_key(&a.clone()));
        assert_ne!(genome_key(&a), genome_key(&b));
        // Every field participates: flip one and the key moves.
        let mut c = a.clone();
        c.run_seed ^= 1;
        assert_ne!(genome_key(&a), genome_key(&c));
        let mut d = a.clone();
        d.payload_cap = match d.payload_cap {
            Some(_) => None,
            None => Some(GENEROUS_CAP_BITS),
        };
        assert_ne!(genome_key(&a), genome_key(&d));
    }

    #[test]
    fn mutation_stays_in_regime_and_is_deterministic() {
        for budget in BudgetRegime::ALL {
            for seed in 0..40u64 {
                let parent = generate_schedule(seed, budget);
                let mut rng = StdRng::seed_from_u64(seed);
                let child = mutate(&parent, budget, &mut rng);
                assert_eq!(child.budget_regime(), budget, "seed {seed} {budget}");
                // Canonical events: mutants compose with the shrinker.
                assert_eq!(
                    FaultPlan::from_events(child.events.iter().copied()).events(),
                    child.events
                );
                let mut rng2 = StdRng::seed_from_u64(seed);
                assert_eq!(child, mutate(&parent, budget, &mut rng2));
            }
        }
    }

    #[test]
    fn mutation_moves_the_genome() {
        let parent = generate_schedule(5, BudgetRegime::AtBudget);
        let mut rng = StdRng::seed_from_u64(11);
        let moved = (0..20)
            .map(|_| mutate(&parent, BudgetRegime::AtBudget, &mut rng))
            .filter(|child| genome_key(child) != genome_key(&parent))
            .count();
        assert!(moved >= 15, "only {moved}/20 mutations moved the genome");
    }

    #[test]
    fn crossover_lands_in_regime_with_a_legal_shape() {
        for seed in 0..30u64 {
            let a = generate_schedule(seed, BudgetRegime::AtBudget);
            let b = generate_schedule(seed + 1000, BudgetRegime::AtBudget);
            let mut rng = StdRng::seed_from_u64(seed);
            let child = crossover(&a, &b, BudgetRegime::AtBudget, &mut rng);
            assert_eq!(child.budget_regime(), BudgetRegime::AtBudget);
            assert!(
                (child.n, child.t) == (a.n, a.t) || (child.n, child.t) == (b.n, b.t),
                "shape must come jointly from one parent"
            );
            assert!(child.events.iter().all(|e| e.sender() < child.n));
            // The child must actually run.
            child.run_on(opr_transport::BackendKind::Sim).unwrap();
        }
    }

    #[test]
    fn repair_lands_even_from_hostile_inputs() {
        // A schedule whose events all target out-of-range senders and whose
        // Byzantine count exceeds every regime bound.
        let mut s = generate_schedule(3, BudgetRegime::InBudget);
        s.byzantine = s.n; // absurd
        s.events = vec![FaultEvent::Crash {
            sender: s.n + 5,
            from: 99,
        }];
        let mut rng = StdRng::seed_from_u64(0);
        let fixed = repair(s, BudgetRegime::AtBudget, &mut rng);
        assert_eq!(fixed.budget_regime(), BudgetRegime::AtBudget);
    }
}
