//! A minimal JSON tree, writer and parser for the repro file format.
//!
//! The build environment has no serde; the repro format needs only objects,
//! arrays, strings, integers, booleans and `null`, so this module implements
//! exactly that subset (floats are rejected — every number in a repro file
//! is a count, a label index or a 64-bit seed, and round-tripping seeds
//! through `f64` would corrupt them).

use std::fmt;

/// One JSON value. Object keys keep insertion order so emitted files are
/// stable and diffable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (seeds are full-range `u64`).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up `key` in an object (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as `i64`, if it is an integer that fits (the parser
    /// yields [`Json::UInt`] for non-negative literals, so signed readers
    /// must accept both variants).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, trailing
    /// newline) — the format written to `chaos-repro.json`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input, floats, or trailing
    /// non-whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-') | Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(err(*pos, &format!("unexpected byte '{}'", c as char))),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{literal}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    let negative = bytes[*pos] == b'-';
    if negative {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(err(*pos, "expected digits"));
    }
    if matches!(bytes.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
        return Err(err(
            *pos,
            "floats are not part of the repro format (integers only)",
        ));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if negative {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| err(start, "integer out of range"))
    } else {
        text.parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| err(start, "integer out of range"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| err(*pos, "non-ascii \\u escape"))?,
                            16,
                        )
                        .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| err(*pos, "invalid codepoint"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::Obj(vec![
            ("seed".into(), Json::UInt(u64::MAX)),
            ("delta".into(), Json::Int(-3)),
            ("label".into(), Json::Str("echo-split \"quoted\"\n".into())),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "events".into(),
                Json::Arr(vec![Json::UInt(1), Json::Obj(vec![]), Json::Arr(vec![])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        for seed in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            let text = Json::UInt(seed).render();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(seed));
        }
    }

    #[test]
    fn signed_reads_accept_both_integer_variants() {
        for value in [i64::MIN, -1, 0, 1, i64::MAX] {
            let text = Json::Int(value).render();
            assert_eq!(Json::parse(&text).unwrap().as_i64(), Some(value), "{text}");
        }
        // Beyond i64 the signed view refuses rather than wrapping.
        assert_eq!(Json::UInt(u64::MAX).as_i64(), None);
        assert_eq!(Json::Str("7".into()).as_i64(), None);
    }

    #[test]
    fn floats_are_rejected() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for bad in ["{", "[1,", "\"open", "{\"k\" 1}", "tru", "[] []"] {
            let e = Json::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "{bad}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2]}, "c": "x"}"#).unwrap();
        assert_eq!(
            doc.get("a")
                .and_then(|a| a.get("b"))
                .and_then(|b| b.as_array().map(|items| items.len())),
            Some(2)
        );
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("missing"), None);
    }
}
