//! The campaign loop: generate → execute → judge, with panic containment
//! and per-regime pass rules.
//!
//! A campaign is deterministic in its seed: run `i` executes
//! `generate_schedule(per_run_seed(seed, i), budget_i)` where `budget_i` is
//! the configured regime (or cycles in/at/over when mixed). Execution fans
//! out over a [`RunPool`](opr_exec::RunPool) when [`CampaignConfig::jobs`]
//! exceeds 1 — schedules are generated in index order, executed on workers,
//! reassembled in submission order and judged serially, so the report is a
//! pure function of the configuration at any worker count (the contract
//! `tests/exec_equivalence.rs` pins bit-for-bit). The pass rule is the
//! crate's core contract:
//!
//! * **in-budget / at-budget** — the paper's theorems apply; any oracle
//!   violation is a failure.
//! * **over-budget** — the theorems are void; a run passes iff it comes
//!   back *degraded but diagnosed*. Harness-level breaches (a correct
//!   process sending malformed traffic, backends diverging) and panics
//!   fail in every regime.

use crate::generator::generate_schedule;
use crate::genome::genome_key;
use crate::oracle::{violation_kind, Oracle, OracleInput};
use crate::schedule::{BudgetRegime, ChaosSchedule};
use opr_exec::RunPool;
use opr_sim::RunMetrics;
use opr_transport::BackendKind;
use opr_types::Violation;
use opr_workload::DiagnosedRun;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Which execution substrate(s) a campaign drives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendChoice {
    /// The single-threaded reference simulator only.
    Sim,
    /// The thread-per-process backend only.
    Threaded,
    /// The task-scheduled worker-pool backend only.
    Pooled,
    /// Sim and threaded, with the cross-backend oracle comparing them run
    /// by run.
    Both,
    /// Every backend: the sim reference compared against threaded *and*
    /// pooled, run by run.
    All,
    /// Size-dependent: the simulator below
    /// [`BackendKind::AUTO_CUTOVER`] processes, the pooled backend at or
    /// above it. Resolved per schedule (where `N` is known) via
    /// [`BackendChoice::resolve_for`].
    Auto,
}

impl BackendChoice {
    /// All choices.
    pub const ALL: [BackendChoice; 6] = [
        BackendChoice::Sim,
        BackendChoice::Threaded,
        BackendChoice::Pooled,
        BackendChoice::Both,
        BackendChoice::All,
        BackendChoice::Auto,
    ];

    /// A short stable label (`"sim"`, `"threaded"`, `"pooled"`, `"both"`,
    /// `"all"`, `"auto"`).
    pub fn label(&self) -> &'static str {
        match self {
            BackendChoice::Sim => "sim",
            BackendChoice::Threaded => "threaded",
            BackendChoice::Pooled => "pooled",
            BackendChoice::Both => "both",
            BackendChoice::All => "all",
            BackendChoice::Auto => "auto",
        }
    }

    /// Parses a [`BackendChoice::label`].
    pub fn parse(label: &str) -> Option<BackendChoice> {
        BackendChoice::ALL
            .iter()
            .copied()
            .find(|b| b.label() == label)
    }

    /// Resolves [`BackendChoice::Auto`] against a concrete system size
    /// (`BackendKind::auto_for`); every other choice passes through. The
    /// execution entry points call this with the schedule's `N`, so `Auto`
    /// never reaches [`BackendChoice::backends`] unresolved.
    pub fn resolve_for(self, n: usize) -> BackendChoice {
        match self {
            BackendChoice::Auto => {
                match BackendKind::auto_for(u32::try_from(n).unwrap_or(u32::MAX)) {
                    BackendKind::Pooled => BackendChoice::Pooled,
                    _ => BackendChoice::Sim,
                }
            }
            other => other,
        }
    }

    /// The reference backend and the second backends to compare against it.
    /// `Auto` falls back to the reference simulator here; callers that know
    /// the system size resolve it first with [`BackendChoice::resolve_for`].
    pub fn backends(&self) -> (BackendKind, &'static [BackendKind]) {
        match self {
            BackendChoice::Sim | BackendChoice::Auto => (BackendKind::Sim, &[]),
            BackendChoice::Threaded => (BackendKind::Threaded, &[]),
            BackendChoice::Pooled => (BackendKind::Pooled, &[]),
            BackendChoice::Both => (BackendKind::Sim, &[BackendKind::Threaded]),
            BackendChoice::All => (
                BackendKind::Sim,
                &[BackendKind::Threaded, BackendKind::Pooled],
            ),
        }
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Parameters of one campaign.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Campaign seed; everything else derives from it.
    pub seed: u64,
    /// How many schedules to run.
    pub runs: usize,
    /// The fault budget regime, or `None` to cycle through all three.
    pub budget: Option<BudgetRegime>,
    /// Which backend(s) execute each schedule.
    pub backend: BackendChoice,
    /// Worker threads executing schedules (`≤ 1` = serial). Judging is
    /// always serial, so the report is a pure function of the other fields
    /// regardless of this value.
    pub jobs: usize,
}

/// How one executed schedule was judged.
#[derive(Clone, Debug, PartialEq)]
pub enum RunVerdict {
    /// Every oracle held.
    Clean,
    /// Oracles reported breaches that are legitimate outside the envelope
    /// (over-budget only): degraded but diagnosed.
    Degraded {
        /// Violation kinds, joined with `+`.
        digest: String,
    },
    /// Oracle violations that the run's budget regime does not excuse.
    Violated {
        /// Every violation the oracle suite reported.
        violations: Vec<Violation>,
    },
    /// The run panicked — a failure in every regime.
    Panicked {
        /// The panic payload, rendered.
        message: String,
    },
    /// The runner refused the setup (generator or repro-file bug).
    SetupError {
        /// The runner's error, rendered.
        message: String,
    },
}

impl RunVerdict {
    /// The violation kinds (or failure class), joined with `+` — the stable
    /// fingerprint shrinking preserves.
    pub fn digest(&self) -> String {
        match self {
            RunVerdict::Clean => "clean".to_string(),
            RunVerdict::Degraded { digest } => digest.clone(),
            RunVerdict::Violated { violations } => {
                let mut kinds: Vec<&'static str> = violations.iter().map(violation_kind).collect();
                kinds.dedup();
                kinds.join("+")
            }
            RunVerdict::Panicked { .. } => "panic".to_string(),
            RunVerdict::SetupError { .. } => "setup-error".to_string(),
        }
    }

    /// Whether this verdict fails a campaign run in `budget`.
    pub fn is_failure(&self, budget: BudgetRegime) -> bool {
        match self {
            RunVerdict::Clean | RunVerdict::Degraded { .. } => false,
            RunVerdict::Panicked { .. } | RunVerdict::SetupError { .. } => true,
            RunVerdict::Violated { violations } => {
                budget != BudgetRegime::OverBudget
                    || violations.iter().any(|v| !tolerable_over_budget(v))
            }
        }
    }
}

/// Whether `v` is a legitimate consequence of exceeding the fault budget
/// (the paper's theorems no longer apply) rather than a harness bug.
fn tolerable_over_budget(v: &Violation) -> bool {
    !matches!(
        v,
        Violation::CorrectMalformed(_) | Violation::BackendDivergence { .. }
    )
}

/// One failing run, with everything needed to shrink and replay it.
#[derive(Clone, Debug, PartialEq)]
pub struct Failure {
    /// Index of the run within the campaign.
    pub index: usize,
    /// The per-run generator seed.
    pub seed: u64,
    /// The budget regime the run was judged under.
    pub budget: BudgetRegime,
    /// The failing schedule.
    pub schedule: ChaosSchedule,
    /// The verdict.
    pub verdict: RunVerdict,
}

/// Network metrics summed over every run a campaign actually executed
/// (panicking and setup-refused slots contribute nothing). Like the
/// clean/degraded counts, these are a pure function of the configuration:
/// they come from the reference backend's deterministic counters, so any
/// worker count and any backend choice with the same reference agree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CampaignMetrics {
    /// Runs whose metrics are included.
    pub runs_measured: usize,
    /// Total rounds executed across measured runs.
    pub rounds_executed: u64,
    /// Total messages sent by correct processes.
    pub messages_correct: u64,
    /// Total messages sent by faulty processes.
    pub messages_faulty: u64,
    /// Total bits sent by correct processes.
    pub bits_correct: u64,
    /// Largest single correct message seen in any measured run, in bits.
    pub max_message_bits: u64,
}

impl CampaignMetrics {
    /// Folds one executed run's counters into the campaign totals.
    pub fn absorb(&mut self, metrics: &RunMetrics) {
        self.runs_measured += 1;
        self.rounds_executed += u64::from(metrics.rounds_executed());
        self.messages_correct += metrics.messages_correct();
        self.messages_faulty += metrics.messages_faulty();
        self.bits_correct += metrics.bits_correct();
        self.max_message_bits = self.max_message_bits.max(metrics.max_message_bits());
    }
}

impl fmt::Display for CampaignMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs measured: {} rounds, {}+{} msgs correct+faulty, {} bits correct, max msg {} bits",
            self.runs_measured,
            self.rounds_executed,
            self.messages_correct,
            self.messages_faulty,
            self.bits_correct,
            self.max_message_bits
        )
    }
}

/// Aggregate result of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Total schedules executed.
    pub total: usize,
    /// Runs every oracle passed.
    pub clean: usize,
    /// Over-budget runs that degraded with a structured diagnosis.
    pub degraded: usize,
    /// Failing runs (empty ⇔ the campaign passed).
    pub failures: Vec<Failure>,
    /// Network metrics summed over every executed run.
    pub metrics: CampaignMetrics,
    /// Wall-clock time of the whole campaign.
    pub elapsed: Duration,
}

impl CampaignReport {
    /// Whether the campaign passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Campaign throughput (schedules per second).
    pub fn runs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.total as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs: {} clean, {} degraded, {} failed ({:.0} runs/s); {}",
            self.total,
            self.clean,
            self.degraded,
            self.failures.len(),
            self.runs_per_sec(),
            self.metrics
        )
    }
}

/// The seed run `index` of a campaign generates its schedule from
/// (splitmix64 of the pair, so neighbouring indices decorrelate).
pub fn per_run_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut z = campaign_seed
        .wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The executed-but-not-yet-judged form of one schedule: the diagnosed
/// reference run plus the runs of any second backends. Splitting
/// execution from judging lets campaigns execute on pool workers (pure
/// data in, pure data out) while the oracle suite — whose trait objects
/// are not `Send` — judges serially on the collector.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutedRun {
    /// The run on the reference backend.
    pub reference: DiagnosedRun,
    /// The runs on every second backend, in [`BackendChoice::backends`]
    /// order, when the choice compares more than one.
    pub others: Vec<(BackendKind, DiagnosedRun)>,
}

/// One campaign slot after execution: the schedule's provenance and either
/// its executed runs or the verdict that pre-empted them (panic or setup
/// refusal).
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutedSchedule {
    /// Index of the run within the campaign.
    pub index: usize,
    /// The per-run generator seed.
    pub seed: u64,
    /// The budget regime the run will be judged under.
    pub budget: BudgetRegime,
    /// The generated schedule.
    pub schedule: ChaosSchedule,
    /// The execution result.
    pub executed: Result<ExecutedRun, RunVerdict>,
}

/// Executes `schedule` on the chosen backend(s) with panics contained.
///
/// # Errors
///
/// `Err` carries the verdict that pre-empted execution:
/// [`RunVerdict::Panicked`] or [`RunVerdict::SetupError`].
pub fn execute_schedule(
    schedule: &ChaosSchedule,
    backend: BackendChoice,
) -> Result<ExecutedRun, RunVerdict> {
    let (reference_backend, other_backends) = backend.resolve_for(schedule.n).backends();
    let reference = execute_contained(schedule, reference_backend)?;
    let mut others = Vec::with_capacity(other_backends.len());
    for &kind in other_backends {
        others.push((kind, execute_contained(schedule, kind)?));
    }
    Ok(ExecutedRun { reference, others })
}

/// Runs the oracle suite over an executed schedule.
pub fn judge_executed(
    schedule: &ChaosSchedule,
    backend: BackendChoice,
    run: &ExecutedRun,
    oracles: &[Box<dyn Oracle>],
) -> RunVerdict {
    let (reference_backend, _) = backend.resolve_for(schedule.n).backends();
    let input = OracleInput {
        schedule,
        reference: &run.reference,
        reference_backend,
        others: run.others.iter().map(|(kind, run)| (*kind, run)).collect(),
    };
    let violations: Vec<Violation> = oracles
        .iter()
        .flat_map(|oracle| oracle.check(&input))
        .collect();
    if violations.is_empty() {
        RunVerdict::Clean
    } else {
        RunVerdict::Violated { violations }
    }
}

/// Executes `schedule` on the chosen backend(s), contains panics, and runs
/// the oracle suite over the result.
pub fn judge_schedule(
    schedule: &ChaosSchedule,
    backend: BackendChoice,
    oracles: &[Box<dyn Oracle>],
) -> RunVerdict {
    match execute_schedule(schedule, backend) {
        Ok(run) => judge_executed(schedule, backend, &run, oracles),
        Err(verdict) => verdict,
    }
}

fn execute_contained(
    schedule: &ChaosSchedule,
    backend: BackendKind,
) -> Result<DiagnosedRun, RunVerdict> {
    match catch_unwind(AssertUnwindSafe(|| schedule.run_on(backend))) {
        Ok(Ok(run)) => Ok(run),
        Ok(Err(e)) => Err(RunVerdict::SetupError {
            message: format!("{backend:?}: {e}"),
        }),
        Err(payload) => Err(RunVerdict::Panicked {
            message: format!("{backend:?}: {}", panic_message(payload.as_ref())),
        }),
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes `schedules` on `pool`, evaluating each *distinct genome*
/// ([`genome_key`], confirmed by full equality) exactly once; duplicate
/// schedules reuse the first occurrence's result. Identical schedules are
/// deterministic, so the per-input results are indistinguishable from
/// executing every slot — minus the wasted work. Returns the results in
/// input order plus the number of evaluations saved.
pub fn execute_deduped_on(
    pool: &RunPool,
    backend: BackendChoice,
    schedules: &[ChaosSchedule],
) -> (Vec<Result<ExecutedRun, RunVerdict>>, usize) {
    let mut by_key: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut distinct: Vec<&ChaosSchedule> = Vec::new();
    let mut slot_of: Vec<usize> = Vec::with_capacity(schedules.len());
    for schedule in schedules {
        let candidates = by_key.entry(genome_key(schedule)).or_default();
        // Equality check guards against (astronomically unlikely) key
        // collisions silently sharing a result.
        let slot = candidates
            .iter()
            .copied()
            .find(|&slot| distinct[slot] == schedule)
            .unwrap_or_else(|| {
                distinct.push(schedule);
                let slot = distinct.len() - 1;
                candidates.push(slot);
                slot
            });
        slot_of.push(slot);
    }
    let tasks: Vec<_> = distinct
        .iter()
        .map(|schedule| {
            let schedule = (*schedule).clone();
            move || execute_schedule(&schedule, backend)
        })
        .collect();
    // execute_schedule contains panics itself; a pool-level panic would be
    // a harness bug, recorded as such rather than unwound.
    let executed: Vec<Result<ExecutedRun, RunVerdict>> = pool
        .run_batch(tasks)
        .into_iter()
        .map(|result| {
            result.unwrap_or_else(|panic| {
                Err(RunVerdict::Panicked {
                    message: panic.message,
                })
            })
        })
        .collect();
    let saved = schedules.len() - distinct.len();
    let results = slot_of
        .into_iter()
        .map(|slot| executed[slot].clone())
        .collect();
    (results, saved)
}

/// Generates and executes every schedule of a campaign, fanning execution
/// out over `pool` and reassembling in index order. Schedules are generated
/// serially in index order and deduplicated by genome before execution, so
/// the returned sequence — provenance, schedule and executed runs alike —
/// is identical at any worker count.
pub fn execute_campaign_on(pool: &RunPool, config: &CampaignConfig) -> Vec<ExecutedSchedule> {
    let prepared: Vec<(usize, u64, BudgetRegime, ChaosSchedule)> = (0..config.runs)
        .map(|index| {
            let budget = config
                .budget
                .unwrap_or(BudgetRegime::ALL[index % BudgetRegime::ALL.len()]);
            let seed = per_run_seed(config.seed, index);
            (index, seed, budget, generate_schedule(seed, budget))
        })
        .collect();
    let schedules: Vec<ChaosSchedule> = prepared.iter().map(|(_, _, _, s)| s.clone()).collect();
    let (results, _saved) = execute_deduped_on(pool, config.backend, &schedules);
    prepared
        .into_iter()
        .zip(results)
        .map(
            |((index, seed, budget, schedule), executed)| ExecutedSchedule {
                index,
                seed,
                budget,
                schedule,
                executed,
            },
        )
        .collect()
}

/// [`execute_campaign_on`] with a pool sized by [`CampaignConfig::jobs`].
pub fn execute_campaign(config: &CampaignConfig) -> Vec<ExecutedSchedule> {
    execute_campaign_on(&RunPool::new(config.jobs), config)
}

/// Runs a full campaign and applies the per-regime pass rule to every
/// verdict. The oracle digest of an over-budget degraded run is preserved
/// in the `degraded` count; failures carry their whole schedule. Execution
/// parallelism ([`CampaignConfig::jobs`]) cannot change anything but
/// `elapsed`: runs are judged in index order from reassembled results.
pub fn run_campaign(config: &CampaignConfig, oracles: &[Box<dyn Oracle>]) -> CampaignReport {
    run_campaign_on(&RunPool::new(config.jobs), config, oracles)
}

/// [`run_campaign`] on a caller-owned pool (reused across campaigns).
pub fn run_campaign_on(
    pool: &RunPool,
    config: &CampaignConfig,
    oracles: &[Box<dyn Oracle>],
) -> CampaignReport {
    let start = Instant::now();
    let mut report = CampaignReport {
        total: config.runs,
        clean: 0,
        degraded: 0,
        failures: Vec::new(),
        metrics: CampaignMetrics::default(),
        elapsed: Duration::ZERO,
    };
    for slot in execute_campaign_on(pool, config) {
        let ExecutedSchedule {
            index,
            seed,
            budget,
            schedule,
            executed,
        } = slot;
        let mut verdict = match executed {
            Ok(run) => {
                report.metrics.absorb(&run.reference.metrics);
                judge_executed(&schedule, config.backend, &run, oracles)
            }
            Err(verdict) => verdict,
        };
        // Over-budget oracle violations that the regime excuses become the
        // structured "degraded but diagnosed" outcome.
        if let RunVerdict::Violated { .. } = &verdict {
            if !verdict.is_failure(budget) {
                verdict = RunVerdict::Degraded {
                    digest: verdict.digest(),
                };
            }
        }
        match &verdict {
            RunVerdict::Clean => report.clean += 1,
            RunVerdict::Degraded { .. } => report.degraded += 1,
            _ => report.failures.push(Failure {
                index,
                seed,
                budget,
                schedule,
                verdict,
            }),
        }
    }
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::standard_suite;

    #[test]
    fn auto_choice_resolves_per_schedule_size() {
        let cut = BackendKind::AUTO_CUTOVER as usize;
        assert_eq!(BackendChoice::Auto.resolve_for(cut - 1), BackendChoice::Sim);
        assert_eq!(BackendChoice::Auto.resolve_for(cut), BackendChoice::Pooled);
        // Every non-auto choice passes through untouched.
        for choice in BackendChoice::ALL {
            if choice != BackendChoice::Auto {
                assert_eq!(choice.resolve_for(cut), choice);
                assert_eq!(choice.resolve_for(1), choice);
            }
        }
        // Labels round-trip, `auto` included.
        for choice in BackendChoice::ALL {
            assert_eq!(BackendChoice::parse(choice.label()), Some(choice));
        }
    }

    #[test]
    fn in_budget_campaign_is_all_clean() {
        let report = run_campaign(
            &CampaignConfig {
                seed: 42,
                runs: 30,
                budget: Some(BudgetRegime::InBudget),
                backend: BackendChoice::Sim,
                jobs: 1,
            },
            &standard_suite(),
        );
        assert!(report.passed(), "{:#?}", report.failures);
        assert_eq!(report.clean, 30);
        assert_eq!(report.degraded, 0);
        assert_eq!(report.metrics.runs_measured, 30);
        assert!(report.metrics.rounds_executed > 0);
        assert!(report.metrics.messages_correct > 0);
        assert!(report.metrics.max_message_bits > 0);
    }

    #[test]
    fn over_budget_campaign_degrades_without_failing() {
        let report = run_campaign(
            &CampaignConfig {
                seed: 43,
                runs: 30,
                budget: Some(BudgetRegime::OverBudget),
                backend: BackendChoice::Sim,
                jobs: 1,
            },
            &standard_suite(),
        );
        assert!(report.passed(), "{:#?}", report.failures);
        // Over-budget runs may degrade or (if the protocol happens to cope)
        // stay clean; both tally, nothing fails.
        assert_eq!(report.clean + report.degraded, 30);
        assert!(
            report.degraded > 0,
            "expected at least one degraded diagnosis in 30 over-budget runs"
        );
    }

    #[test]
    fn mixed_campaign_cycles_regimes_deterministically() {
        let cfg = CampaignConfig {
            seed: 7,
            runs: 12,
            budget: None,
            backend: BackendChoice::Sim,
            jobs: 1,
        };
        let a = run_campaign(&cfg, &standard_suite());
        let b = run_campaign(&cfg, &standard_suite());
        assert!(a.passed(), "{:#?}", a.failures);
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.degraded, b.degraded);
    }

    #[test]
    fn execute_campaign_is_identical_at_any_worker_count() {
        let config = |jobs| CampaignConfig {
            seed: 0x5EED,
            runs: 18,
            budget: None,
            backend: BackendChoice::Sim,
            jobs,
        };
        let serial = execute_campaign(&config(1));
        for jobs in [2, 4] {
            assert_eq!(serial, execute_campaign(&config(jobs)), "jobs={jobs}");
        }
    }

    #[test]
    fn campaign_reports_agree_across_worker_counts() {
        let config = |jobs| CampaignConfig {
            seed: 21,
            runs: 15,
            budget: None,
            backend: BackendChoice::Sim,
            jobs,
        };
        let a = run_campaign(&config(1), &standard_suite());
        let b = run_campaign(&config(4), &standard_suite());
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn duplicate_schedules_execute_once_and_share_results() {
        let pool = RunPool::new(1);
        let a = generate_schedule(11, BudgetRegime::AtBudget);
        let b = generate_schedule(12, BudgetRegime::AtBudget);
        let batch = vec![a.clone(), b.clone(), a.clone(), a, b];
        let (results, saved) = execute_deduped_on(&pool, BackendChoice::Sim, &batch);
        assert_eq!(saved, 3, "three of five slots are repeats");
        assert_eq!(results.len(), 5);
        assert_eq!(results[0], results[2]);
        assert_eq!(results[0], results[3]);
        assert_eq!(results[1], results[4]);
        // And the shared results match a fresh independent execution.
        let fresh = execute_schedule(&batch[0], BackendChoice::Sim);
        assert_eq!(results[0], fresh);
    }

    #[test]
    fn per_run_seeds_decorrelate() {
        let seeds: Vec<u64> = (0..100).map(|i| per_run_seed(5, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn verdict_failure_rules_match_the_contract() {
        let harness_bug = RunVerdict::Violated {
            violations: vec![Violation::BackendDivergence {
                observable: "rounds",
                reference: "7".into(),
                other: "8".into(),
            }],
        };
        let degradation = RunVerdict::Violated {
            violations: vec![Violation::MissedTermination {
                budget: 13,
                undecided: vec![],
            }],
        };
        for budget in BudgetRegime::ALL {
            assert!(harness_bug.is_failure(budget), "{budget}");
            assert!(RunVerdict::Panicked {
                message: "x".into()
            }
            .is_failure(budget));
            assert!(!RunVerdict::Clean.is_failure(budget));
        }
        assert!(degradation.is_failure(BudgetRegime::InBudget));
        assert!(degradation.is_failure(BudgetRegime::AtBudget));
        assert!(!degradation.is_failure(BudgetRegime::OverBudget));
    }
}
