//! Guided adversary search: a seeded optimizer over attack-schedule space.
//!
//! Random campaigns ([`crate::engine`]) certify average-case luck; the
//! paper's theorems are worst-case claims. This module closes the loop:
//! starting from the *same* seeded schedule stream a random campaign would
//! draw, it scores every observed run with a [`FitnessKind`] signal and
//! climbs — beam selection, [`mutate`]/[`crossover`] children, elitist
//! survival — toward the most adversarial schedules the budget regime
//! admits. The worst finds are emitted as replayable repro files and
//! committed as regression seeds (`tests/data/worst-*.json`).
//!
//! # Determinism
//!
//! The search result is a pure function of its [`SearchConfig`] minus
//! `jobs` and modulo backend choice:
//!
//! * candidate generation (init stream, mutation, crossover, dedup) is
//!   seeded and strictly serial;
//! * execution fans out over a [`RunPool`] but results are reassembled in
//!   submission order, and every fitness signal is a deterministic
//!   function of backend-invariant observables;
//! * selection breaks fitness ties by genome key, never by arrival order.
//!
//! So the same seed yields a bit-identical [`SearchOutcome`] at any
//! `--jobs` and on either backend — the contract `tests/adversary_search.rs`
//! pins.

use crate::engine::{
    judge_executed, panic_message, per_run_seed, BackendChoice, ExecutedRun, RunVerdict,
};
use crate::fitness::{evaluate, Fitness, FitnessKind, FitnessRecord};
use crate::generator::generate_schedule;
use crate::genome::{crossover, genome_key, mutate};
use crate::json::Json;
use crate::oracle::{standard_suite, Oracle};
use crate::repro::{schedule_to_json, Repro};
use crate::schedule::{BudgetRegime, ChaosSchedule};
use opr_exec::RunPool;
use opr_sim::RunMetrics;
use opr_transport::BackendKind;
use opr_workload::DiagnosedRun;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Parameters of one guided search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchConfig {
    /// Search seed; the whole trajectory derives from it.
    pub seed: u64,
    /// The fault budget regime every candidate is kept inside.
    pub budget: BudgetRegime,
    /// Which backend(s) execute each candidate.
    pub backend: BackendChoice,
    /// The signal being maximized.
    pub fitness: FitnessKind,
    /// How many survivors breed each generation.
    pub beam: usize,
    /// How many guided generations follow the random init.
    pub generations: usize,
    /// Total evaluation budget (distinct schedules executed), init
    /// included.
    pub evals: usize,
    /// Size of the random init population (drawn from the same
    /// [`per_run_seed`] stream a random campaign uses).
    pub init: usize,
    /// How many of the fittest schedules the report keeps.
    pub top_k: usize,
    /// Worker threads executing candidates (`≤ 1` = serial). Cannot change
    /// anything but elapsed time.
    pub jobs: usize,
}

impl SearchConfig {
    /// A small smoke-sized configuration (CI and tests override fields).
    pub fn smoke(seed: u64) -> SearchConfig {
        SearchConfig {
            seed,
            budget: BudgetRegime::AtBudget,
            backend: BackendChoice::Sim,
            fitness: FitnessKind::Margin,
            beam: 4,
            generations: 4,
            evals: 64,
            init: 16,
            top_k: 3,
            jobs: 1,
        }
    }
}

/// One evaluated candidate, ranked.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoredSchedule {
    /// The genome fingerprint ([`genome_key`]); the deterministic
    /// tiebreaker.
    pub key: u64,
    /// The schedule itself.
    pub schedule: ChaosSchedule,
    /// Its fitness (`i64::MIN` for candidates that never produced a run).
    pub fitness: Fitness,
    /// The verdict digest (`"clean"`, violation kinds, `"panic"`, …).
    pub digest: String,
    /// Whether the verdict fails under the search's budget regime — a
    /// genuine bug find, ranked above every mere near-miss.
    pub failure: bool,
    /// The reference run's network metrics, when a run happened.
    pub metrics: Option<RunMetrics>,
}

/// Progress of one generation (cumulative counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenerationStat {
    /// Generation index (0 = random init).
    pub generation: usize,
    /// Schedules evaluated so far.
    pub evaluated: usize,
    /// Best fitness seen so far.
    pub best: i64,
    /// Duplicate candidates skipped (never evaluated) so far.
    pub deduped: usize,
}

/// The deterministic part of a search result: bit-identical for the same
/// `(seed, budget, fitness, beam, generations, evals, init, top_k)` at any
/// worker count and on either backend.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchOutcome {
    /// Distinct schedules executed.
    pub evaluated: usize,
    /// Duplicate candidates skipped.
    pub deduped: usize,
    /// Per-generation progress, init first.
    pub generations: Vec<GenerationStat>,
    /// The fittest schedules, best first, at most `top_k`.
    pub top: Vec<ScoredSchedule>,
}

/// A finished search: the deterministic outcome plus wall-clock timing.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// The configuration that produced the outcome.
    pub config: SearchConfig,
    /// The deterministic result.
    pub outcome: SearchOutcome,
    /// Wall-clock time of the whole search.
    pub elapsed: Duration,
}

impl SearchReport {
    /// The fittest schedule found, if any candidate was evaluated.
    pub fn best(&self) -> Option<&ScoredSchedule> {
        self.outcome.top.first()
    }

    /// Whether the search surfaced a genuine failure (bug find).
    pub fn found_failure(&self) -> bool {
        self.outcome.top.iter().any(|s| s.failure)
    }

    /// Search throughput (evaluations per second).
    pub fn evals_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.outcome.evaluated as f64 / secs
        } else {
            0.0
        }
    }
}

/// Deterministic selection order: genuine failures first, then fitness,
/// ties broken by genome key (never by arrival order).
fn sort_scored(scored: &mut [ScoredSchedule]) {
    scored.sort_by(|a, b| {
        b.failure
            .cmp(&a.failure)
            .then(b.fitness.cmp(&a.fitness))
            .then(a.key.cmp(&b.key))
    });
}

fn best_of(scored: &[ScoredSchedule]) -> i64 {
    scored.first().map_or(i64::MIN, |s| s.fitness.0)
}

/// `run_observed` with panic containment (mirrors the campaign executor,
/// but keeps the event stream the fitness signals need).
fn observe_contained(
    schedule: &ChaosSchedule,
    backend: BackendKind,
) -> Result<DiagnosedRun, RunVerdict> {
    match catch_unwind(AssertUnwindSafe(|| schedule.run_observed(backend, None))) {
        Ok(Ok(run)) => Ok(run),
        Ok(Err(e)) => Err(RunVerdict::SetupError {
            message: format!("{backend:?}: {e}"),
        }),
        Err(payload) => Err(RunVerdict::Panicked {
            message: format!("{backend:?}: {}", panic_message(payload.as_ref())),
        }),
    }
}

/// Executes one candidate: observed on the reference backend (events feed
/// the fitness), plain on the optional second backend (the cross-backend
/// oracle only compares outcome-level observables).
fn observe_schedule(
    schedule: &ChaosSchedule,
    backend: BackendChoice,
) -> Result<ExecutedRun, RunVerdict> {
    let (reference_backend, other_backends) = backend.backends();
    let reference = observe_contained(schedule, reference_backend)?;
    let mut others = Vec::with_capacity(other_backends.len());
    for &kind in other_backends {
        others.push((kind, observe_contained(schedule, kind)?));
    }
    Ok(ExecutedRun { reference, others })
}

/// Executes a batch on the pool and scores each result serially (the
/// oracle suite is not `Send`; scoring is cheap next to execution).
fn evaluate_batch(
    pool: &RunPool,
    config: &SearchConfig,
    oracles: &[Box<dyn Oracle>],
    batch: Vec<ChaosSchedule>,
) -> Vec<ScoredSchedule> {
    let backend = config.backend;
    let (reference_backend, _) = backend.backends();
    let tasks: Vec<_> = batch
        .iter()
        .map(|schedule| {
            let schedule = schedule.clone();
            move || observe_schedule(&schedule, backend)
        })
        .collect();
    let results = pool.run_batch(tasks);
    batch
        .into_iter()
        .zip(results)
        .map(|(schedule, result)| {
            let executed = result.unwrap_or_else(|panic| {
                Err(RunVerdict::Panicked {
                    message: panic.message,
                })
            });
            let key = genome_key(&schedule);
            match executed {
                Ok(run) => {
                    let mut verdict = judge_executed(&schedule, backend, &run, oracles);
                    if let RunVerdict::Violated { .. } = &verdict {
                        if !verdict.is_failure(config.budget) {
                            verdict = RunVerdict::Degraded {
                                digest: verdict.digest(),
                            };
                        }
                    }
                    let failure = verdict.is_failure(config.budget);
                    let fitness =
                        evaluate(config.fitness, &schedule, &run.reference, reference_backend);
                    ScoredSchedule {
                        key,
                        fitness,
                        digest: verdict.digest(),
                        failure,
                        metrics: Some(run.reference.metrics),
                        schedule,
                    }
                }
                Err(verdict) => ScoredSchedule {
                    key,
                    fitness: Fitness(i64::MIN),
                    digest: verdict.digest(),
                    failure: true,
                    metrics: None,
                    schedule,
                },
            }
        })
        .collect()
}

/// Draws up to `want` *fresh* (never-seen) schedules from the campaign's
/// seeded stream, counting skipped duplicates into `deduped`.
fn draw_init(
    config: &SearchConfig,
    want: usize,
    seen: &mut BTreeSet<u64>,
    deduped: &mut usize,
    draw_cursor: &mut usize,
) -> Vec<ChaosSchedule> {
    let mut batch = Vec::new();
    let cap = want * 16 + 16;
    let mut attempts = 0;
    while batch.len() < want && attempts < cap {
        attempts += 1;
        let schedule = generate_schedule(per_run_seed(config.seed, *draw_cursor), config.budget);
        *draw_cursor += 1;
        if seen.insert(genome_key(&schedule)) {
            batch.push(schedule);
        } else {
            *deduped += 1;
        }
    }
    batch
}

/// Runs the guided search on a caller-owned pool.
pub fn run_search_on(pool: &RunPool, config: &SearchConfig) -> SearchReport {
    let start = Instant::now();
    let oracles = standard_suite();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut deduped = 0usize;
    let mut evaluated = 0usize;
    let mut draw_cursor = 0usize;
    let mut scored: Vec<ScoredSchedule> = Vec::new();
    let mut generations: Vec<GenerationStat> = Vec::new();

    // Generation 0: the same seeded stream a random campaign draws.
    let init_want = config.init.max(1).min(config.evals.max(1));
    let batch = draw_init(config, init_want, &mut seen, &mut deduped, &mut draw_cursor);
    evaluated += batch.len();
    scored.extend(evaluate_batch(pool, config, &oracles, batch));
    sort_scored(&mut scored);
    generations.push(GenerationStat {
        generation: 0,
        evaluated,
        best: best_of(&scored),
        deduped,
    });

    for generation in 1..=config.generations {
        let remaining = config.evals.saturating_sub(evaluated);
        if remaining == 0 || scored.is_empty() {
            break;
        }
        let beam: Vec<ChaosSchedule> = scored
            .iter()
            .take(config.beam.max(1))
            .map(|s| s.schedule.clone())
            .collect();
        let want = (config.beam.max(1) * 4).min(remaining);
        // A quarter of each generation explores the untouched random
        // stream (restart injection): local moves alone plateau on flat
        // neighbourhoods, and the duplicates they breed would otherwise
        // stall the eval budget.
        let explore = (want / 4).max(1).min(want);
        let mut rng = StdRng::seed_from_u64(
            config.seed
                ^ 0x7365_6172_6368_6765 // "searchge"
                ^ (generation as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let guided_want = want - explore;
        let mut batch: Vec<ChaosSchedule> = Vec::new();
        let cap = guided_want * 16 + 16;
        let mut attempts = 0;
        while batch.len() < guided_want && attempts < cap {
            attempts += 1;
            let parent = &beam[rng.gen_range(0..beam.len())];
            let child = if beam.len() >= 2 && rng.gen_bool(0.3) {
                let other = &beam[rng.gen_range(0..beam.len())];
                crossover(parent, other, config.budget, &mut rng)
            } else {
                mutate(parent, config.budget, &mut rng)
            };
            if seen.insert(genome_key(&child)) {
                batch.push(child);
            } else {
                deduped += 1;
            }
        }
        // Top the batch up to `want` from the random stream — the explore
        // share, plus whatever the exhausted mutation neighbourhood left
        // unfilled.
        let refill = want - batch.len();
        batch.extend(draw_init(
            config,
            refill,
            &mut seen,
            &mut deduped,
            &mut draw_cursor,
        ));
        if batch.is_empty() {
            break;
        }
        evaluated += batch.len();
        scored.extend(evaluate_batch(pool, config, &oracles, batch));
        sort_scored(&mut scored);
        generations.push(GenerationStat {
            generation,
            evaluated,
            best: best_of(&scored),
            deduped,
        });
    }

    scored.truncate(config.top_k.max(1));
    SearchReport {
        config: *config,
        outcome: SearchOutcome {
            evaluated,
            deduped,
            generations,
            top: scored,
        },
        elapsed: start.elapsed(),
    }
}

/// [`run_search_on`] with a pool sized by [`SearchConfig::jobs`].
pub fn run_search(config: &SearchConfig) -> SearchReport {
    run_search_on(&RunPool::new(config.jobs), config)
}

/// The unguided baseline at the same evaluation budget: scores the first
/// `evals` distinct schedules of the identical seeded stream, no
/// selection, no mutation. The comparison partner for the in-test
/// guarantee "best-of-search ≥ best-of-random".
pub fn random_search_on(pool: &RunPool, config: &SearchConfig) -> SearchReport {
    let start = Instant::now();
    let oracles = standard_suite();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut deduped = 0usize;
    let mut draw_cursor = 0usize;
    let batch = draw_init(
        config,
        config.evals.max(1),
        &mut seen,
        &mut deduped,
        &mut draw_cursor,
    );
    let evaluated = batch.len();
    let mut scored = evaluate_batch(pool, config, &oracles, batch);
    sort_scored(&mut scored);
    let best = best_of(&scored);
    scored.truncate(config.top_k.max(1));
    SearchReport {
        config: *config,
        outcome: SearchOutcome {
            evaluated,
            deduped,
            generations: vec![GenerationStat {
                generation: 0,
                evaluated,
                best,
                deduped,
            }],
            top: scored,
        },
        elapsed: start.elapsed(),
    }
}

/// Packages one ranked find as a replayable repro file: the recorded
/// digest *and* fitness must reproduce on replay (the regression contract
/// of `tests/data/worst-*.json`). Candidates that never produced a run
/// (panic, setup refusal) carry no fitness record — their digest is the
/// whole contract.
pub fn repro_for(config: &SearchConfig, rank: usize, scored: &ScoredSchedule) -> Repro {
    Repro {
        campaign_seed: config.seed,
        run_index: rank,
        budget: config.budget,
        backend: config.backend,
        digest: scored.digest.clone(),
        schedule: scored.schedule.clone(),
        metrics: scored.metrics.clone(),
        fitness: scored.metrics.is_some().then_some(FitnessRecord {
            kind: config.fitness,
            score: scored.fitness.0,
        }),
    }
}

/// Renders a search report as JSON (the `BENCH_search.json` payload and
/// the CI artifact). With `include_timing: false` the document is a pure
/// function of the outcome — bit-identical across worker counts and
/// backends; timing fields are for bench files only.
pub fn render_search_json(
    report: &SearchReport,
    random: Option<&SearchReport>,
    include_timing: bool,
) -> String {
    let config = &report.config;
    let outcome = &report.outcome;
    let mut fields: Vec<(String, Json)> = vec![
        ("kind".into(), Json::Str("adversary-search".into())),
        ("seed".into(), Json::UInt(config.seed)),
        ("budget".into(), Json::Str(config.budget.label().into())),
        ("backend".into(), Json::Str(config.backend.label().into())),
        ("fitness".into(), Json::Str(config.fitness.label().into())),
        ("beam".into(), Json::UInt(config.beam as u64)),
        ("generations".into(), Json::UInt(config.generations as u64)),
        ("evals".into(), Json::UInt(config.evals as u64)),
        ("init".into(), Json::UInt(config.init as u64)),
        ("top_k".into(), Json::UInt(config.top_k as u64)),
        ("evaluated".into(), Json::UInt(outcome.evaluated as u64)),
        ("deduped".into(), Json::UInt(outcome.deduped as u64)),
        (
            "per_generation".into(),
            Json::Arr(
                outcome
                    .generations
                    .iter()
                    .map(|g| {
                        Json::Obj(vec![
                            ("generation".into(), Json::UInt(g.generation as u64)),
                            ("evaluated".into(), Json::UInt(g.evaluated as u64)),
                            ("best".into(), Json::Int(g.best)),
                            ("deduped".into(), Json::UInt(g.deduped as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "top".into(),
            Json::Arr(
                outcome
                    .top
                    .iter()
                    .enumerate()
                    .map(|(rank, s)| {
                        Json::Obj(vec![
                            ("rank".into(), Json::UInt(rank as u64)),
                            ("fitness".into(), Json::Int(s.fitness.0)),
                            ("digest".into(), Json::Str(s.digest.clone())),
                            ("failure".into(), Json::Bool(s.failure)),
                            ("schedule".into(), schedule_to_json(&s.schedule)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(random) = random {
        fields.push((
            "random_baseline".into(),
            Json::Obj(vec![
                (
                    "evaluated".into(),
                    Json::UInt(random.outcome.evaluated as u64),
                ),
                ("best".into(), Json::Int(best_of(&random.outcome.top))),
            ]),
        ));
    }
    if include_timing {
        fields.push((
            "elapsed_ms".into(),
            Json::UInt(report.elapsed.as_millis() as u64),
        ));
        fields.push((
            "evals_per_sec".into(),
            Json::UInt(report.evals_per_sec() as u64),
        ));
    }
    Json::Obj(fields).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> SearchConfig {
        SearchConfig {
            beam: 2,
            generations: 2,
            evals: 14,
            init: 6,
            top_k: 3,
            ..SearchConfig::smoke(seed)
        }
    }

    #[test]
    fn search_is_deterministic_across_worker_counts() {
        let config = tiny(5);
        let serial = run_search_on(&RunPool::new(1), &config);
        let parallel = run_search_on(&RunPool::new(4), &config);
        assert_eq!(serial.outcome, parallel.outcome);
    }

    #[test]
    fn best_fitness_is_monotone_across_generations() {
        let report = run_search(&tiny(9));
        let bests: Vec<i64> = report.outcome.generations.iter().map(|g| g.best).collect();
        assert!(!bests.is_empty());
        assert!(
            bests.windows(2).all(|w| w[1] >= w[0]),
            "elitist selection can never lose the best: {bests:?}"
        );
    }

    #[test]
    fn search_respects_the_eval_budget() {
        let report = run_search(&tiny(3));
        assert!(report.outcome.evaluated <= report.config.evals);
        assert!(report.outcome.top.len() <= report.config.top_k);
        assert!(!report.outcome.top.is_empty());
    }

    #[test]
    fn search_repros_round_trip() {
        let config = tiny(7);
        let report = run_search(&config);
        let best = report.best().expect("non-empty search");
        let repro = repro_for(&config, 0, best);
        let reread = Repro::from_json(&repro.to_json()).unwrap();
        assert_eq!(reread, repro);
        assert_eq!(reread.fitness.unwrap().score, best.fitness.0);
    }

    #[test]
    fn report_json_is_deterministic_without_timing() {
        let config = tiny(2);
        let a = render_search_json(&run_search(&config), None, false);
        let b = render_search_json(&run_search(&config), None, false);
        assert_eq!(a, b);
        assert!(a.contains("\"adversary-search\""));
    }
}
