//! Fitness signals for the guided adversary search.
//!
//! A fitness score is an `i64`; *higher is more adversarial*. Every signal
//! is a pure, deterministic function of a schedule and its observed run
//! (the [`ProtocolEvent`](opr_obs::ProtocolEvent) stream plus the
//! diagnosis), so the same schedule always scores the same on both
//! backends and at any `--jobs` — the bedrock of the search's
//! bit-determinism contract.
//!
//! The signals, from crudest to sharpest:
//!
//! * [`FitnessKind::Rounds`] — communication steps consumed;
//! * [`FitnessKind::Namespace`] — the largest decided name (namespace
//!   pressure against the `N + t − 1` / `N` / `N²` bound);
//! * [`FitnessKind::Spread`] — the widest AA trimmed-mean disagreement
//!   across processes for any `(step, id)`, in fixed-point (×10⁹);
//! * [`FitnessKind::Drops`] — admission damage: quorum rejections,
//!   `isValid` vote rejects and AA id drops;
//! * [`FitnessKind::Margin`] — the key signal: how close the run came to
//!   a violation, from oracle slack ([`suite_margins`]) and quorum
//!   flip distances ([`quorum_pressure`]). Minimizing slack = maximizing
//!   fitness.

use crate::oracle::{quorum_pressure, suite_margins};
use crate::schedule::ChaosSchedule;
use opr_obs::ProtocolEvent;
use opr_transport::BackendKind;
use opr_workload::DiagnosedRun;
use std::collections::BTreeMap;
use std::fmt;

/// Which signal the search optimizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FitnessKind {
    /// Communication steps the run consumed.
    Rounds,
    /// The largest decided name.
    Namespace,
    /// The widest AA trimmed-mean spread, fixed-point ×10⁹.
    Spread,
    /// Admission damage: failed thresholds, vote rejects, id drops.
    Drops,
    /// Proximity to violation: negated minimum oracle/quorum slack.
    Margin,
}

impl FitnessKind {
    /// Every kind, in reporting order.
    pub const ALL: [FitnessKind; 5] = [
        FitnessKind::Rounds,
        FitnessKind::Namespace,
        FitnessKind::Spread,
        FitnessKind::Drops,
        FitnessKind::Margin,
    ];

    /// The stable CLI/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            FitnessKind::Rounds => "rounds",
            FitnessKind::Namespace => "namespace",
            FitnessKind::Spread => "spread",
            FitnessKind::Drops => "drops",
            FitnessKind::Margin => "margin",
        }
    }

    /// Parses a [`FitnessKind::label`].
    pub fn parse(s: &str) -> Option<FitnessKind> {
        FitnessKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl fmt::Display for FitnessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fitness score; higher is more adversarial. Ordering is the search's
/// selection pressure.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Fitness(pub i64);

impl fmt::Display for Fitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The fitness a repro file records alongside its schedule, so a replayed
/// regression seed can prove the score still reproduces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FitnessRecord {
    /// The signal that scored the schedule.
    pub kind: FitnessKind,
    /// The recorded score.
    pub score: i64,
}

/// Scores one observed run. Event-derived signals score `0` when the run
/// carries no recorded events (the search always records; the constant
/// keeps the function total).
pub fn evaluate(
    kind: FitnessKind,
    schedule: &ChaosSchedule,
    run: &DiagnosedRun,
    backend: BackendKind,
) -> Fitness {
    match kind {
        FitnessKind::Rounds => Fitness(i64::from(run.rounds)),
        FitnessKind::Namespace => Fitness(run.full_outcome.max_name().map_or(0, |name| name.raw())),
        FitnessKind::Spread => Fitness(spread_fixed_point(run)),
        FitnessKind::Drops => Fitness(admission_drops(run)),
        FitnessKind::Margin => Fitness(margin_pressure(schedule, run, backend)),
    }
}

/// The widest trimmed-mean disagreement across processes for any
/// `(step, id)` AA cell, in fixed-point ×10⁹ (ranks live in `[0, 1]`-ish
/// space; the scale keeps sub-epsilon spreads ordinal without floats in
/// the score).
fn spread_fixed_point(run: &DiagnosedRun) -> i64 {
    let Some(log) = run.events.as_ref() else {
        return 0;
    };
    let mut cells: BTreeMap<(u32, u64), (f64, f64)> = BTreeMap::new();
    for process in &log.processes {
        for event in &process.events {
            if let ProtocolEvent::TrimmedMean { step, id, rank, .. } = event {
                let value = rank.value();
                let entry = cells.entry((*step, id.raw())).or_insert((value, value));
                entry.0 = entry.0.min(value);
                entry.1 = entry.1.max(value);
            }
        }
    }
    cells
        .values()
        .map(|&(min, max)| ((max - min) * 1e9) as i64)
        .max()
        .unwrap_or(0)
}

/// How many admission decisions went *against* a candidate: quorum
/// thresholds missed, `isValid` rejections, AA id drops, invalid two-step
/// echoes.
fn admission_drops(run: &DiagnosedRun) -> i64 {
    let Some(log) = run.events.as_ref() else {
        return 0;
    };
    let mut drops = 0i64;
    for process in &log.processes {
        for event in &process.events {
            let dropped = match *event {
                ProtocolEvent::EchoThreshold { kept, .. } => !kept,
                ProtocolEvent::ReadyThreshold { timely, .. } => !timely,
                ProtocolEvent::AcceptThreshold { accepted, .. } => !accepted,
                ProtocolEvent::VoteRejected { .. } | ProtocolEvent::IdDropped { .. } => true,
                ProtocolEvent::EchoCounted { valid, .. } => !valid,
                _ => false,
            };
            drops += i64::from(dropped);
        }
    }
    drops
}

/// Scale separating the min-slack term from the on-the-edge tiebreaker.
const MARGIN_SCALE: i64 = 4096;
/// Slack clamp: beyond this the exact distance stops mattering.
const MARGIN_CLAMP: i64 = 1_000_000;

/// Violation proximity: the negated minimum slack across every oracle
/// margin, scaled, plus the number of quorum decisions that sat exactly on
/// the edge as a tiebreaker. An actual violation (negative slack) scores
/// higher than any near-miss.
fn margin_pressure(schedule: &ChaosSchedule, run: &DiagnosedRun, backend: BackendKind) -> i64 {
    let margins = suite_margins(schedule, run, backend);
    let Some(min_slack) = margins.iter().map(|&(_, m)| m).min() else {
        return 0;
    };
    let edges = quorum_pressure(run).map_or(0, |(_, edges)| edges) as i64;
    (MARGIN_CLAMP - min_slack.clamp(-MARGIN_CLAMP, MARGIN_CLAMP)) * MARGIN_SCALE
        + edges.min(MARGIN_SCALE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_schedule;
    use crate::schedule::BudgetRegime;

    #[test]
    fn labels_round_trip() {
        for kind in FitnessKind::ALL {
            assert_eq!(FitnessKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(FitnessKind::parse("nonsense"), None);
    }

    #[test]
    fn every_signal_is_backend_invariant() {
        let schedule = generate_schedule(7, BudgetRegime::AtBudget);
        let sim = schedule.run_observed(BackendKind::Sim, None).unwrap();
        let thr = schedule.run_observed(BackendKind::Threaded, None).unwrap();
        for kind in FitnessKind::ALL {
            assert_eq!(
                evaluate(kind, &schedule, &sim, BackendKind::Sim),
                evaluate(kind, &schedule, &thr, BackendKind::Threaded),
                "{kind}"
            );
        }
    }

    #[test]
    fn rounds_and_namespace_need_no_events() {
        let schedule = generate_schedule(7, BudgetRegime::InBudget);
        let run = schedule.run_on(BackendKind::Sim).unwrap();
        assert!(evaluate(FitnessKind::Rounds, &schedule, &run, BackendKind::Sim).0 > 0);
        assert!(evaluate(FitnessKind::Namespace, &schedule, &run, BackendKind::Sim).0 > 0);
    }

    #[test]
    fn margin_scores_higher_under_more_pressure() {
        // An at-budget attack leaves less slack than a fault-free run of
        // the same shape.
        let attacked = generate_schedule(7, BudgetRegime::AtBudget);
        let mut calm = attacked.clone();
        calm.byzantine = 0;
        calm.events.clear();
        let run_a = attacked.run_observed(BackendKind::Sim, None).unwrap();
        let run_c = calm.run_observed(BackendKind::Sim, None).unwrap();
        let fit_a = evaluate(FitnessKind::Margin, &attacked, &run_a, BackendKind::Sim);
        let fit_c = evaluate(FitnessKind::Margin, &calm, &run_c, BackendKind::Sim);
        assert!(
            fit_a >= fit_c,
            "attacked {fit_a} should press at least as hard as calm {fit_c}"
        );
    }
}
