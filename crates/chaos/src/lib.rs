#![warn(missing_docs)]
//! Chaos campaign engine: randomized fault-schedule exploration against the
//! paper's invariants.
//!
//! The theorems of the source paper are universally quantified — *every*
//! execution with at most `t` Byzantine processes renames uniquely, in
//! order, within the namespace bound, in the exact step count. A proof
//! covers all of them; a test suite covers a handful. This crate walks the
//! middle ground: it samples the execution space at scale, judges every
//! sampled run against the paper's own invariants, and when a run breaks
//! one it shrinks the schedule to a minimal reproducer anyone can replay.
//!
//! # Pipeline
//!
//! 1. [`generator`] draws a random [`ChaosSchedule`] from a seed: a system
//!    size, an id layout, a Byzantine adversary placement and a transport
//!    [`FaultPlan`](opr_transport::FaultPlan), aimed at one of three fault
//!    *budget regimes* (strictly under `t`, exactly `t`, deliberately over).
//! 2. [`schedule`] executes the schedule on the simulator and/or the
//!    threaded backend via the diagnosing runner
//!    ([`opr_workload::RenamingRun::run_diagnosed`]) — over-budget runs
//!    *degrade* into structured reports instead of panicking.
//! 3. [`oracle`] holds the pluggable invariant suite: uniqueness, order
//!    preservation over healthy correct processes, the per-algorithm
//!    namespace bound, the exact step count, and bit-equality across
//!    backends.
//! 4. [`engine`] loops 1–3 into a campaign, converts panics into failures
//!    with `catch_unwind`, and applies the per-regime pass rule: in- and
//!    at-budget runs must be clean; over-budget runs pass iff they are
//!    *degraded but diagnosed* (harness-level breaches — a correct process
//!    sending malformed traffic, backends diverging, a panic — fail in
//!    every regime).
//! 5. [`shrink`] minimizes a failing schedule: delta debugging over the
//!    fault events, then Byzantine-count reduction, then onset weakening.
//! 6. [`repro`] round-trips the result through a `chaos-repro.json` file
//!    (hand-rolled [`json`], no external dependencies) so the failure can
//!    be replayed deterministically from the file alone.
//! 7. [`explain`] replays a repro with the protocol event recorder attached
//!    ([`opr_obs`]) and renders every correct process's decision waterfall
//!    — which thresholds crossed, which votes were rejected and why.
//! 8. [`search`] closes the loop into an optimizer: [`genome`] mutates and
//!    recombines schedules inside a budget regime, [`fitness`] scores each
//!    observed run (rounds, namespace pressure, AA spread, admission
//!    drops, near-violation margin from [`Oracle::margin`]), and a seeded
//!    beam search climbs toward the most adversarial attacks — emitting
//!    the worst as replayable repro files and regression seeds.

pub mod engine;
pub mod explain;
pub mod fitness;
pub mod generator;
pub mod genome;
pub mod json;
pub mod oracle;
pub mod repro;
pub mod schedule;
pub mod search;
pub mod shrink;

pub use engine::{
    BackendChoice, CampaignConfig, CampaignMetrics, CampaignReport, ExecutedRun, ExecutedSchedule,
    Failure, RunVerdict,
};
pub use explain::{explain_repro, render_waterfall, Explained};
pub use fitness::{evaluate, Fitness, FitnessKind, FitnessRecord};
pub use generator::generate_schedule;
pub use genome::{crossover, genome_key, mutate};
pub use oracle::{standard_suite, suite_margins, Oracle, OracleInput};
pub use repro::Repro;
pub use schedule::{BudgetRegime, ChaosSchedule};
pub use search::{
    random_search_on, render_search_json, repro_for, run_search, run_search_on, GenerationStat,
    ScoredSchedule, SearchConfig, SearchOutcome, SearchReport,
};
pub use shrink::{shrink, ShrinkResult};
