//! One fully-determined chaos run: the schedule and its execution bridge.

use opr_adversary::AdversarySpec;
use opr_core::fault_placement;
use opr_metrics::MetricsRegistry;
use opr_obs::SharedSpanLog;
use opr_transport::{BackendKind, FaultEvent, FaultPlan};
use opr_types::{OriginalId, Regime, RenamingError, SystemConfig};
use opr_workload::{DiagnosedRun, IdDistribution, RenamingRun};
use std::fmt;

/// Where a schedule's effective fault load sits relative to the bound `t`.
///
/// The *effective* load counts Byzantine processes plus correct processes
/// whose outgoing links the transport fault plan disturbs (to every
/// receiver the two are indistinguishable).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BudgetRegime {
    /// Strictly fewer than `t` effective faults — the comfortable interior
    /// of the paper's envelope.
    InBudget,
    /// Exactly `t` effective faults — the envelope's boundary, where every
    /// theorem still holds with zero slack.
    AtBudget,
    /// More than `t` effective faults — outside the envelope. The paper
    /// promises nothing; the implementation promises a structured diagnosis
    /// instead of a panic.
    OverBudget,
}

impl BudgetRegime {
    /// All regimes, in escalating order.
    pub const ALL: [BudgetRegime; 3] = [
        BudgetRegime::InBudget,
        BudgetRegime::AtBudget,
        BudgetRegime::OverBudget,
    ];

    /// A short stable label (`"in"`, `"at"`, `"over"`).
    pub fn label(&self) -> &'static str {
        match self {
            BudgetRegime::InBudget => "in",
            BudgetRegime::AtBudget => "at",
            BudgetRegime::OverBudget => "over",
        }
    }

    /// Parses a [`BudgetRegime::label`].
    pub fn parse(label: &str) -> Option<BudgetRegime> {
        BudgetRegime::ALL
            .iter()
            .copied()
            .find(|b| b.label() == label)
    }
}

impl fmt::Display for BudgetRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything needed to reproduce one chaos run bit-for-bit: the system
/// shape, the workload, the Byzantine adversary, the transport fault
/// schedule and the seed. Schedules serialize to `chaos-repro.json` (see
/// [`crate::repro`]) and are the unit the shrinker minimizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// Which algorithm/regime runs.
    pub regime: Regime,
    /// System size `N`.
    pub n: usize,
    /// Fault bound `t`.
    pub t: usize,
    /// Original-id layout of the correct processes.
    pub id_dist: IdDistribution,
    /// Seed for id generation.
    pub id_seed: u64,
    /// Byzantine strategy of the faulty actors.
    pub adversary: AdversarySpec,
    /// How many actors run the adversary.
    pub byzantine: usize,
    /// Run seed: topology labels, Byzantine placement, randomized
    /// strategies. Placement is `fault_placement(n, byzantine, run_seed)`.
    pub run_seed: u64,
    /// Transport fault schedule, as canonical events.
    pub events: Vec<FaultEvent>,
    /// Optional transport payload cap in bits.
    pub payload_cap: Option<u64>,
}

impl ChaosSchedule {
    /// The system configuration (`N`, `t`) this schedule runs on.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::Config`] for an invalid `(n, t)` pair.
    pub fn cfg(&self) -> Result<SystemConfig, RenamingError> {
        Ok(SystemConfig::new(self.n, self.t)?)
    }

    /// The transport fault plan assembled from [`ChaosSchedule::events`].
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::from_events(self.events.iter().copied())
    }

    /// The Byzantine placement mask this schedule's run will use
    /// (`true` = faulty index).
    pub fn placement(&self) -> Vec<bool> {
        fault_placement(self.n, self.byzantine, self.run_seed)
    }

    /// The correct processes' original ids (always `n − byzantine` of them).
    pub fn correct_ids(&self) -> Vec<OriginalId> {
        self.id_dist.generate(self.n - self.byzantine, self.id_seed)
    }

    /// The effective fault load: Byzantine actors plus *correct* processes
    /// whose outgoing links the fault plan disturbs. Fault events aimed at
    /// Byzantine indices do not count twice.
    pub fn effective_faults(&self) -> usize {
        let mask = self.placement();
        let disturbed_correct = self
            .fault_plan()
            .disturbed_senders()
            .into_iter()
            .filter(|&s| s < self.n && !mask[s])
            .count();
        self.byzantine + disturbed_correct
    }

    /// Which budget regime the schedule actually lands in (the generator
    /// aims for one, but shrinking can move a schedule downward).
    pub fn budget_regime(&self) -> BudgetRegime {
        let effective = self.effective_faults();
        if effective < self.t {
            BudgetRegime::InBudget
        } else if effective == self.t {
            BudgetRegime::AtBudget
        } else {
            BudgetRegime::OverBudget
        }
    }

    /// Executes the schedule on `backend` and diagnoses the result.
    /// Over-budget schedules degrade into reports rather than erroring.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError`] only for setups the runner cannot start
    /// (invalid configuration, bad id set) — a generator or repro-file bug,
    /// never a legitimate chaos outcome.
    pub fn run_on(&self, backend: BackendKind) -> Result<DiagnosedRun, RenamingError> {
        self.run_with(backend, None, false, None)
    }

    /// [`ChaosSchedule::run_on`] with delivery tracing enabled: the
    /// diagnosis comes back with up to `capacity` events in
    /// [`DiagnosedRun::trace`]. Used by the buffer-reuse regression gate to
    /// pin the exact delivery stream of a replayed repro.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChaosSchedule::run_on`].
    pub fn run_traced(
        &self,
        backend: BackendKind,
        capacity: usize,
    ) -> Result<DiagnosedRun, RenamingError> {
        self.run_with(backend, Some(capacity), false, None)
    }

    /// [`ChaosSchedule::run_on`] with the protocol event recorder attached:
    /// the diagnosis comes back with [`DiagnosedRun::events`] populated.
    /// When `spans` is given, the substrate additionally records per-round
    /// wall timings into it (the non-deterministic layer — the event stream
    /// itself stays bit-identical to an unobserved run). This is the entry
    /// point `chaos explain` replays repro files through.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChaosSchedule::run_on`].
    pub fn run_observed(
        &self,
        backend: BackendKind,
        spans: Option<SharedSpanLog>,
    ) -> Result<DiagnosedRun, RenamingError> {
        self.run_with(backend, None, true, spans)
    }

    /// [`ChaosSchedule::run_observed`] with a live [`MetricsRegistry`]
    /// attached end-to-end: the substrate records wall-clock round
    /// histograms while the run executes, and the deterministic
    /// [`DiagnosedRun::metrics_snapshot`] fold is mirrored into the registry
    /// afterwards (`MetricsRegistry::fold`). The returned diagnosis is
    /// bit-identical to an uninstrumented run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChaosSchedule::run_on`].
    pub fn run_instrumented(
        &self,
        backend: BackendKind,
        spans: Option<SharedSpanLog>,
        metrics: Option<MetricsRegistry>,
    ) -> Result<DiagnosedRun, RenamingError> {
        let run = self.run_with_metrics(backend, None, true, spans, metrics.clone())?;
        if let Some(registry) = &metrics {
            registry.fold(&run.metrics_snapshot());
        }
        Ok(run)
    }

    fn run_with(
        &self,
        backend: BackendKind,
        trace_capacity: Option<usize>,
        record_events: bool,
        spans: Option<SharedSpanLog>,
    ) -> Result<DiagnosedRun, RenamingError> {
        self.run_with_metrics(backend, trace_capacity, record_events, spans, None)
    }

    fn run_with_metrics(
        &self,
        backend: BackendKind,
        trace_capacity: Option<usize>,
        record_events: bool,
        spans: Option<SharedSpanLog>,
        metrics: Option<MetricsRegistry>,
    ) -> Result<DiagnosedRun, RenamingError> {
        let cfg = self.cfg()?;
        let mut run = RenamingRun::builder(cfg, self.regime)
            .correct_ids(self.correct_ids())
            .adversary(self.adversary, self.byzantine)
            .seed(self.run_seed)
            .backend(backend)
            .faults(self.fault_plan())
            .allow_fault_overrun();
        if let Some(cap) = self.payload_cap {
            run = run.payload_cap(cap);
        }
        if let Some(capacity) = trace_capacity {
            run = run.trace(capacity);
        }
        if record_events {
            run = run.record_events();
        }
        if let Some(log) = spans {
            run = run.spans(log);
        }
        if let Some(registry) = metrics {
            run = run.metrics(registry);
        }
        run.run_diagnosed()
    }

    /// A one-line human summary for logs and failure reports.
    pub fn describe(&self) -> String {
        format!(
            "{:?} n={} t={} ids={}#{} adversary={}×{} seed={} events={} cap={:?} [{}]",
            self.regime,
            self.n,
            self.t,
            self.id_dist.label(),
            self.id_seed,
            self.adversary.label(),
            self.byzantine,
            self.run_seed,
            self.events.len(),
            self.payload_cap,
            self.budget_regime()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_types::Round;

    fn base() -> ChaosSchedule {
        ChaosSchedule {
            regime: Regime::LogTime,
            n: 7,
            t: 2,
            id_dist: IdDistribution::EvenSpaced,
            id_seed: 4,
            adversary: AdversarySpec::EchoSplit,
            byzantine: 1,
            run_seed: 11,
            events: Vec::new(),
            payload_cap: None,
        }
    }

    #[test]
    fn budget_regime_counts_effective_faults() {
        let mut s = base();
        assert_eq!(s.effective_faults(), 1);
        assert_eq!(s.budget_regime(), BudgetRegime::InBudget);

        // Disturb one correct process: at budget.
        let mask = s.placement();
        let victim = mask.iter().position(|&f| !f).unwrap();
        s.events = FaultPlan::new().crash_from(victim, Round::FIRST).events();
        assert_eq!(s.effective_faults(), 2);
        assert_eq!(s.budget_regime(), BudgetRegime::AtBudget);

        // Disturbing a *Byzantine* index adds nothing.
        let byz = mask.iter().position(|&f| f).unwrap();
        let plan = s.fault_plan().crash_from(byz, Round::FIRST);
        s.events = plan.events();
        assert_eq!(s.effective_faults(), 2);
    }

    #[test]
    fn runs_identically_on_both_backends() {
        let s = base();
        let sim = s.run_on(BackendKind::Sim).unwrap();
        let thr = s.run_on(BackendKind::Threaded).unwrap();
        assert!(sim.degraded.is_clean(), "{:?}", sim.degraded.violations);
        assert_eq!(sim.full_outcome, thr.full_outcome);
        assert_eq!(sim.rounds, thr.rounds);
        assert_eq!(sim.malformed, thr.malformed);
    }

    #[test]
    fn observed_runs_match_unobserved_runs_and_each_other() {
        let s = base();
        let plain = s.run_on(BackendKind::Sim).unwrap();
        let sim = s.run_observed(BackendKind::Sim, None).unwrap();
        let thr = s.run_observed(BackendKind::Threaded, None).unwrap();
        // Attaching the recorder perturbs nothing deterministic…
        assert_eq!(plain.full_outcome, sim.full_outcome);
        assert_eq!(plain.rounds, sim.rounds);
        assert_eq!(plain.metrics, sim.metrics);
        // …and the event stream itself is backend-invariant.
        let sim_events = sim.events.expect("recorder attached");
        let thr_events = thr.events.expect("recorder attached");
        assert!(!sim_events.is_empty());
        assert_eq!(sim_events, thr_events);
    }

    #[test]
    fn budget_labels_parse_back() {
        for b in BudgetRegime::ALL {
            assert_eq!(BudgetRegime::parse(b.label()), Some(b));
        }
        assert_eq!(BudgetRegime::parse("sideways"), None);
    }
}
