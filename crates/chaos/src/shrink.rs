//! Counterexample shrinking: minimize a failing schedule while preserving
//! its failure.
//!
//! Three passes, cheapest reduction first:
//!
//! 1. **Delta debugging** (ddmin) over the fault-event list — find a
//!    1-minimal subset of transport faults that still fails.
//! 2. **Byzantine reduction** — lower the Byzantine count while the
//!    failure survives (the id workload re-derives automatically, since
//!    correct processes number `n − byzantine`).
//! 3. **Onset weakening** — push each surviving event's round later; a
//!    fault that bites later is a weaker, easier-to-read reproducer.
//!
//! The caller supplies the predicate (typically "re-execute and compare
//! the verdict digest"), so the shrinker is independent of backends and
//! oracle configuration.

use crate::schedule::ChaosSchedule;
use opr_transport::{FaultEvent, FaultPlan};

/// The outcome of shrinking: the minimized schedule plus bookkeeping.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized schedule (still failing per the caller's predicate).
    pub schedule: ChaosSchedule,
    /// Fault events before shrinking.
    pub original_events: usize,
    /// Fault events after shrinking.
    pub events: usize,
    /// How many candidate schedules the predicate evaluated.
    pub attempts: usize,
}

/// Minimizes `original` under `still_fails`. The predicate must return
/// `true` for `original` itself (shrinking something that does not fail is
/// a caller bug; the original is returned untouched in that case).
pub fn shrink<F>(original: &ChaosSchedule, mut still_fails: F) -> ShrinkResult
where
    F: FnMut(&ChaosSchedule) -> bool,
{
    let mut attempts = 0usize;
    let mut current = original.clone();
    if !check(&current, &mut still_fails, &mut attempts) {
        return ShrinkResult {
            schedule: current,
            original_events: original.events.len(),
            events: original.events.len(),
            attempts,
        };
    }

    // Pass 1: ddmin over the event list.
    let minimized = ddmin(&current, &mut still_fails, &mut attempts);
    current = minimized;

    // Pass 2: reduce the Byzantine count.
    while current.byzantine > 0 {
        let mut candidate = current.clone();
        candidate.byzantine -= 1;
        if check(&candidate, &mut still_fails, &mut attempts) {
            current = candidate;
        } else {
            break;
        }
    }

    // Pass 3: weaken each event's onset (push it later) while the failure
    // survives. Bounded by the algorithm's step count, so this terminates.
    let max_round = current
        .cfg()
        .map(|cfg| cfg.total_steps(current.regime))
        .unwrap_or(2);
    let mut index = 0;
    while index < current.events.len() {
        while let Some(weaker) = weaken_event(current.events[index], max_round) {
            let mut events = current.events.clone();
            events[index] = weaker;
            let mut candidate = current.clone();
            candidate.events = canonical(events);
            // Canonicalization can merge events; keep the candidate only if
            // it still fails and the event under the cursor still exists.
            if candidate.events.len() == current.events.len()
                && check(&candidate, &mut still_fails, &mut attempts)
            {
                current = candidate;
            } else {
                break;
            }
        }
        index += 1;
    }

    ShrinkResult {
        schedule: current.clone(),
        original_events: original.events.len(),
        events: current.events.len(),
        attempts,
    }
}

fn check<F>(candidate: &ChaosSchedule, still_fails: &mut F, attempts: &mut usize) -> bool
where
    F: FnMut(&ChaosSchedule) -> bool,
{
    *attempts += 1;
    still_fails(candidate)
}

fn canonical(events: Vec<FaultEvent>) -> Vec<FaultEvent> {
    FaultPlan::from_events(events).events()
}

fn with_events(schedule: &ChaosSchedule, events: Vec<FaultEvent>) -> ChaosSchedule {
    let mut candidate = schedule.clone();
    candidate.events = canonical(events);
    candidate
}

/// Classic ddmin (Zeller & Hildebrandt) over the schedule's event list:
/// returns a schedule whose events are 1-minimal — removing any single
/// remaining event makes the failure disappear.
fn ddmin<F>(schedule: &ChaosSchedule, still_fails: &mut F, attempts: &mut usize) -> ChaosSchedule
where
    F: FnMut(&ChaosSchedule) -> bool,
{
    let mut events = schedule.events.clone();
    if events.is_empty() {
        return schedule.clone();
    }
    let mut granularity = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            // Complement of events[start..end].
            let complement: Vec<FaultEvent> = events[..start]
                .iter()
                .chain(events[end..].iter())
                .copied()
                .collect();
            let candidate = with_events(schedule, complement);
            if check(&candidate, still_fails, attempts) {
                events = candidate.events;
                granularity = 2.max(granularity - 1);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= events.len() {
                break;
            }
            granularity = (granularity * 2).min(events.len());
        }
    }
    // Try the empty schedule too (the failure may come from the Byzantine
    // placement alone).
    if !events.is_empty() {
        let candidate = with_events(schedule, Vec::new());
        if check(&candidate, still_fails, attempts) {
            events = Vec::new();
        }
    }
    with_events(schedule, events)
}

/// One step weaker (later onset) version of `event`, or `None` when it is
/// already as weak as it can get within the round budget.
fn weaken_event(event: FaultEvent, max_round: u32) -> Option<FaultEvent> {
    match event {
        FaultEvent::Drop {
            sender,
            link,
            round,
        } if round < max_round => Some(FaultEvent::Drop {
            sender,
            link,
            round: round + 1,
        }),
        FaultEvent::SilenceLink { sender, link, from } if from < max_round => {
            Some(FaultEvent::SilenceLink {
                sender,
                link,
                from: from + 1,
            })
        }
        FaultEvent::Crash { sender, from } if from < max_round => Some(FaultEvent::Crash {
            sender,
            from: from + 1,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_schedule;
    use crate::schedule::BudgetRegime;
    use opr_adversary::AdversarySpec;
    use opr_types::Regime;
    use opr_workload::IdDistribution;

    fn dense_schedule(events: Vec<FaultEvent>) -> ChaosSchedule {
        ChaosSchedule {
            regime: Regime::LogTime,
            n: 7,
            t: 2,
            id_dist: IdDistribution::Dense,
            id_seed: 1,
            adversary: AdversarySpec::Silent,
            byzantine: 2,
            run_seed: 9,
            events: canonical(events),
            payload_cap: None,
        }
    }

    #[test]
    fn ddmin_isolates_the_single_culprit_event() {
        // Synthetic predicate: the failure needs exactly one specific event.
        let culprit = FaultEvent::Crash { sender: 3, from: 2 };
        let noise: Vec<FaultEvent> = (0..6)
            .map(|i| FaultEvent::Drop {
                sender: i % 3,
                link: 1 + i,
                round: 1 + (i as u32 % 3),
            })
            .collect();
        let mut events = noise;
        events.push(culprit);
        let schedule = dense_schedule(events);
        let result = shrink(&schedule, |s| s.events.contains(&culprit));
        assert_eq!(result.schedule.events, vec![culprit]);
        assert_eq!(result.events, 1);
        assert!(result.attempts > 0);
        // Byzantine reduction also ran: the predicate ignores placement.
        assert_eq!(result.schedule.byzantine, 0);
    }

    #[test]
    fn ddmin_finds_a_minimal_pair() {
        // The failure needs BOTH of two events — 1-minimality must keep both.
        let a = FaultEvent::Crash { sender: 1, from: 1 };
        let b = FaultEvent::Crash { sender: 2, from: 3 };
        let mut events = vec![a, b];
        events.extend((0..5).map(|i| FaultEvent::Drop {
            sender: 0,
            link: 1 + i,
            round: 1,
        }));
        let schedule = dense_schedule(events);
        let result = shrink(&schedule, |s| {
            s.events.contains(&a) && s.events.contains(&b)
        });
        assert_eq!(result.events, 2);
        assert!(result.schedule.events.contains(&a));
        assert!(result.schedule.events.contains(&b));
    }

    #[test]
    fn onset_weakening_pushes_events_later() {
        let early = FaultEvent::Crash { sender: 3, from: 1 };
        let schedule = dense_schedule(vec![early]);
        // Predicate: fails as long as sender 3 crashes at any round ≤ 5.
        let result = shrink(&schedule, |s| {
            s.events
                .iter()
                .any(|e| matches!(e, FaultEvent::Crash { sender: 3, from } if *from <= 5))
        });
        assert_eq!(
            result.schedule.events,
            vec![FaultEvent::Crash { sender: 3, from: 5 }]
        );
    }

    #[test]
    fn ddmin_on_an_empty_fault_plan_reduces_only_byzantine_count() {
        // The failure comes from the Byzantine placement alone: there are
        // no events to delta-debug, and the shrinker must not invent any.
        let schedule = dense_schedule(Vec::new());
        let result = shrink(&schedule, |s| s.byzantine >= 1);
        assert!(result.schedule.events.is_empty());
        assert_eq!(result.original_events, 0);
        assert_eq!(result.events, 0);
        assert_eq!(result.schedule.byzantine, 1, "minimal failing count");
    }

    #[test]
    fn ddmin_on_a_single_fault_plan_keeps_the_needed_event() {
        let culprit = FaultEvent::Drop {
            sender: 2,
            link: 4,
            round: 6,
        };
        let schedule = dense_schedule(vec![culprit]);
        let result = shrink(&schedule, |s| s.events.contains(&culprit));
        assert_eq!(result.schedule.events, vec![culprit]);
        assert_eq!(result.events, 1);
    }

    #[test]
    fn non_reproducing_mutants_mid_shrink_never_leak_into_the_result() {
        // A predicate with a "hole": schedules with exactly two events do
        // NOT reproduce, everything else containing the culprit does. The
        // shrinker must reject the non-reproducing intermediates and still
        // end on a failing schedule.
        let culprit = FaultEvent::Crash { sender: 3, from: 2 };
        let mut events = vec![culprit];
        events.extend((0..5).map(|i| FaultEvent::Drop {
            sender: i % 2,
            link: 1 + i,
            round: 1,
        }));
        let schedule = dense_schedule(events);
        let still_fails = |s: &ChaosSchedule| s.events.contains(&culprit) && s.events.len() != 2;
        let result = shrink(&schedule, still_fails);
        assert!(
            still_fails(&result.schedule),
            "shrink returned a non-failing schedule: {:?}",
            result.schedule.events
        );
        assert_eq!(result.schedule.events, vec![culprit]);
    }

    #[test]
    fn non_failing_input_is_returned_untouched() {
        let schedule = generate_schedule(5, BudgetRegime::AtBudget);
        let result = shrink(&schedule, |_| false);
        assert_eq!(result.schedule, schedule);
        assert_eq!(result.attempts, 1);
    }

    #[test]
    fn shrunk_schedules_stay_canonical() {
        let culprit = FaultEvent::SilenceLink {
            sender: 4,
            link: 2,
            from: 2,
        };
        let mut events = vec![culprit];
        events.extend((0..4).map(|i| FaultEvent::Drop {
            sender: i,
            link: 1,
            round: 2,
        }));
        let schedule = dense_schedule(events);
        let result = shrink(&schedule, |s| {
            s.events
                .iter()
                .any(|e| matches!(e, FaultEvent::SilenceLink { sender: 4, .. }))
        });
        assert_eq!(
            FaultPlan::from_events(result.schedule.events.iter().copied()).events(),
            result.schedule.events
        );
    }
}
