//! Replayable repro files (`chaos-repro.json`).
//!
//! A repro file is self-contained: the campaign seed it came from, the
//! failing schedule in full, the backend choice and the verdict digest the
//! failure showed. Replaying re-executes the schedule deterministically and
//! re-judges it with the same oracle suite — the digest must reproduce.

use crate::engine::{judge_schedule, BackendChoice, RunVerdict};
use crate::fitness::{FitnessKind, FitnessRecord};
use crate::json::Json;
use crate::oracle::Oracle;
use crate::schedule::{BudgetRegime, ChaosSchedule};
use opr_adversary::AdversarySpec;
use opr_sim::{RoundMetrics, RunMetrics};
use opr_transport::FaultEvent;
use opr_types::Regime;
use opr_workload::IdDistribution;
use std::fmt;

/// Format version written into every file (bump on breaking changes).
pub const REPRO_VERSION: u64 = 1;

/// A replayable failure record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repro {
    /// The campaign seed the failure was found under.
    pub campaign_seed: u64,
    /// The index of the failing run within that campaign.
    pub run_index: usize,
    /// The budget regime the run was judged under.
    pub budget: BudgetRegime,
    /// Which backend(s) showed the failure.
    pub backend: BackendChoice,
    /// The verdict digest at capture time (e.g. `"uniqueness"`, `"panic"`).
    pub digest: String,
    /// The (possibly shrunk) schedule.
    pub schedule: ChaosSchedule,
    /// Per-round network metrics of the reference run at capture time, when
    /// the capturing campaign executed the schedule (panicking runs have
    /// none). Purely informational on replay — the replayed run recomputes
    /// its own — but lets a repro file document how much traffic the
    /// failure took. Absent in files written by older builds.
    pub metrics: Option<RunMetrics>,
    /// The fitness the guided adversary search recorded for the schedule,
    /// when the file came from a search rather than a random campaign.
    /// Replay recomputes the score and must reproduce it — the regression
    /// contract of `tests/data/worst-*.json`. Absent in campaign repros and
    /// files written by older builds.
    pub fitness: Option<FitnessRecord>,
}

/// Why a repro file could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReproError(String);

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "repro file: {}", self.0)
    }
}

impl std::error::Error for ReproError {}

fn bad(msg: impl Into<String>) -> ReproError {
    ReproError(msg.into())
}

impl Repro {
    /// Renders the repro as pretty-printed JSON (the `chaos-repro.json`
    /// payload).
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("version".into(), Json::UInt(REPRO_VERSION)),
            ("campaign_seed".into(), Json::UInt(self.campaign_seed)),
            ("run_index".into(), Json::UInt(self.run_index as u64)),
            ("budget".into(), Json::Str(self.budget.label().into())),
            ("backend".into(), Json::Str(self.backend.label().into())),
            ("digest".into(), Json::Str(self.digest.clone())),
            ("schedule".into(), schedule_to_json(&self.schedule)),
        ];
        if let Some(metrics) = &self.metrics {
            fields.push(("metrics".into(), metrics_to_json(metrics)));
        }
        if let Some(fitness) = &self.fitness {
            fields.push((
                "fitness".into(),
                Json::Obj(vec![
                    ("kind".into(), Json::Str(fitness.kind.label().into())),
                    ("score".into(), Json::Int(fitness.score)),
                ]),
            ));
        }
        Json::Obj(fields).render()
    }

    /// Decodes a repro file.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError`] on malformed JSON, an unknown version, or
    /// unknown labels.
    pub fn from_json(text: &str) -> Result<Repro, ReproError> {
        let doc = Json::parse(text).map_err(|e| bad(e.to_string()))?;
        let version = field_u64(&doc, "version")?;
        if version != REPRO_VERSION {
            return Err(bad(format!(
                "unsupported version {version} (this build reads {REPRO_VERSION})"
            )));
        }
        Ok(Repro {
            campaign_seed: field_u64(&doc, "campaign_seed")?,
            run_index: field_u64(&doc, "run_index")? as usize,
            budget: BudgetRegime::parse(field_str(&doc, "budget")?)
                .ok_or_else(|| bad("unknown budget label"))?,
            backend: BackendChoice::parse(field_str(&doc, "backend")?)
                .ok_or_else(|| bad("unknown backend label"))?,
            digest: field_str(&doc, "digest")?.to_string(),
            schedule: schedule_from_json(
                doc.get("schedule").ok_or_else(|| bad("missing schedule"))?,
            )?,
            metrics: match doc.get("metrics") {
                None | Some(Json::Null) => None,
                Some(v) => Some(metrics_from_json(v)?),
            },
            fitness: match doc.get("fitness") {
                None | Some(Json::Null) => None,
                Some(v) => Some(FitnessRecord {
                    kind: FitnessKind::parse(field_str(v, "kind")?)
                        .ok_or_else(|| bad("unknown fitness kind"))?,
                    score: v
                        .get("score")
                        .and_then(Json::as_i64)
                        .ok_or_else(|| bad("missing or non-integer fitness score"))?,
                }),
            },
        })
    }

    /// Re-executes the schedule with the recorded backend choice and
    /// re-judges it. Deterministic: the same file always yields the same
    /// verdict, and a valid repro reproduces its recorded digest.
    pub fn replay(&self, oracles: &[Box<dyn Oracle>]) -> RunVerdict {
        judge_schedule(&self.schedule, self.backend, oracles)
    }
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, ReproError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing or non-integer field '{key}'")))
}

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ReproError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing or non-string field '{key}'")))
}

fn field_usize(doc: &Json, key: &str) -> Result<usize, ReproError> {
    doc.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| bad(format!("missing or non-integer field '{key}'")))
}

/// Stable regime labels for the file format (also used by the service
/// repro format in `opr-service`).
pub fn regime_label(regime: Regime) -> &'static str {
    match regime {
        Regime::LogTime => "log-time",
        Regime::ConstantTime => "constant-time",
        Regime::TwoStep => "two-step",
    }
}

/// Inverse of [`regime_label`].
pub fn parse_regime(label: &str) -> Option<Regime> {
    Regime::ALL.into_iter().find(|&r| regime_label(r) == label)
}

/// Looks an adversary up by its stable [`AdversarySpec::label`].
pub fn parse_adversary(label: &str) -> Option<AdversarySpec> {
    AdversarySpec::ALG1
        .into_iter()
        .chain(AdversarySpec::TWO_STEP)
        .find(|spec| spec.label() == label)
}

fn parse_id_dist(label: &str) -> Option<IdDistribution> {
    IdDistribution::ALL
        .into_iter()
        .find(|dist| dist.label() == label)
}

/// Encodes a schedule as a JSON object (used by the repro format and the
/// chaos binary's failure dumps).
pub fn schedule_to_json(schedule: &ChaosSchedule) -> Json {
    Json::Obj(vec![
        (
            "regime".into(),
            Json::Str(regime_label(schedule.regime).into()),
        ),
        ("n".into(), Json::UInt(schedule.n as u64)),
        ("t".into(), Json::UInt(schedule.t as u64)),
        ("id_dist".into(), Json::Str(schedule.id_dist.label().into())),
        ("id_seed".into(), Json::UInt(schedule.id_seed)),
        (
            "adversary".into(),
            Json::Str(schedule.adversary.label().into()),
        ),
        ("byzantine".into(), Json::UInt(schedule.byzantine as u64)),
        ("run_seed".into(), Json::UInt(schedule.run_seed)),
        (
            "payload_cap".into(),
            match schedule.payload_cap {
                Some(cap) => Json::UInt(cap),
                None => Json::Null,
            },
        ),
        (
            "events".into(),
            Json::Arr(schedule.events.iter().map(event_to_json).collect()),
        ),
    ])
}

/// Decodes a schedule object.
///
/// # Errors
///
/// Returns [`ReproError`] on missing fields or unknown labels.
pub fn schedule_from_json(doc: &Json) -> Result<ChaosSchedule, ReproError> {
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("missing events array"))?
        .iter()
        .map(event_from_json)
        .collect::<Result<Vec<FaultEvent>, ReproError>>()?;
    let payload_cap = match doc.get("payload_cap") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| bad("non-integer payload_cap"))?),
    };
    Ok(ChaosSchedule {
        regime: parse_regime(field_str(doc, "regime")?)
            .ok_or_else(|| bad("unknown regime label"))?,
        n: field_usize(doc, "n")?,
        t: field_usize(doc, "t")?,
        id_dist: parse_id_dist(field_str(doc, "id_dist")?)
            .ok_or_else(|| bad("unknown id_dist label"))?,
        id_seed: field_u64(doc, "id_seed")?,
        adversary: parse_adversary(field_str(doc, "adversary")?)
            .ok_or_else(|| bad("unknown adversary label"))?,
        byzantine: field_usize(doc, "byzantine")?,
        run_seed: field_u64(doc, "run_seed")?,
        events,
        payload_cap,
    })
}

/// Encodes run metrics as an array of per-round counter objects.
pub fn metrics_to_json(metrics: &RunMetrics) -> Json {
    Json::Arr(
        metrics
            .per_round()
            .iter()
            .map(|round| {
                Json::Obj(vec![
                    (
                        "messages_correct".into(),
                        Json::UInt(round.messages_correct),
                    ),
                    ("messages_faulty".into(), Json::UInt(round.messages_faulty)),
                    ("bits_correct".into(), Json::UInt(round.bits_correct)),
                    (
                        "max_message_bits".into(),
                        Json::UInt(round.max_message_bits),
                    ),
                ])
            })
            .collect(),
    )
}

/// Decodes a [`metrics_to_json`] array.
///
/// # Errors
///
/// Returns [`ReproError`] when the value is not an array of per-round
/// counter objects.
pub fn metrics_from_json(doc: &Json) -> Result<RunMetrics, ReproError> {
    let rounds = doc
        .as_array()
        .ok_or_else(|| bad("metrics is not an array"))?;
    let mut metrics = RunMetrics::new();
    for round in rounds {
        metrics.push_round(RoundMetrics {
            messages_correct: field_u64(round, "messages_correct")?,
            messages_faulty: field_u64(round, "messages_faulty")?,
            bits_correct: field_u64(round, "bits_correct")?,
            max_message_bits: field_u64(round, "max_message_bits")?,
        });
    }
    Ok(metrics)
}

fn event_to_json(event: &FaultEvent) -> Json {
    match *event {
        FaultEvent::Drop {
            sender,
            link,
            round,
        } => Json::Obj(vec![
            ("kind".into(), Json::Str("drop".into())),
            ("sender".into(), Json::UInt(sender as u64)),
            ("link".into(), Json::UInt(link as u64)),
            ("round".into(), Json::UInt(round as u64)),
        ]),
        FaultEvent::SilenceLink { sender, link, from } => Json::Obj(vec![
            ("kind".into(), Json::Str("silence-link".into())),
            ("sender".into(), Json::UInt(sender as u64)),
            ("link".into(), Json::UInt(link as u64)),
            ("from".into(), Json::UInt(from as u64)),
        ]),
        FaultEvent::Crash { sender, from } => Json::Obj(vec![
            ("kind".into(), Json::Str("crash".into())),
            ("sender".into(), Json::UInt(sender as u64)),
            ("from".into(), Json::UInt(from as u64)),
        ]),
    }
}

fn event_from_json(doc: &Json) -> Result<FaultEvent, ReproError> {
    let round_field = |key: &str| -> Result<u32, ReproError> {
        u32::try_from(field_u64(doc, key)?).map_err(|_| bad(format!("field '{key}' out of range")))
    };
    match field_str(doc, "kind")? {
        "drop" => Ok(FaultEvent::Drop {
            sender: field_usize(doc, "sender")?,
            link: field_usize(doc, "link")?,
            round: round_field("round")?,
        }),
        "silence-link" => Ok(FaultEvent::SilenceLink {
            sender: field_usize(doc, "sender")?,
            link: field_usize(doc, "link")?,
            from: round_field("from")?,
        }),
        "crash" => Ok(FaultEvent::Crash {
            sender: field_usize(doc, "sender")?,
            from: round_field("from")?,
        }),
        other => Err(bad(format!("unknown event kind '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_schedule;
    use crate::oracle::standard_suite;

    fn sample_repro(seed: u64) -> Repro {
        Repro {
            campaign_seed: seed,
            run_index: 17,
            budget: BudgetRegime::OverBudget,
            backend: BackendChoice::Both,
            digest: "missed-termination".into(),
            schedule: generate_schedule(seed, BudgetRegime::OverBudget),
            metrics: None,
            fitness: None,
        }
    }

    #[test]
    fn repro_round_trips_through_json() {
        for seed in [0u64, 9, u64::MAX] {
            let repro = sample_repro(seed);
            let text = repro.to_json();
            assert_eq!(Repro::from_json(&text).unwrap(), repro, "{text}");
        }
    }

    #[test]
    fn metrics_round_trip_and_stay_optional() {
        let mut metrics = RunMetrics::new();
        metrics.push_round(RoundMetrics {
            messages_correct: 42,
            messages_faulty: 6,
            bits_correct: 1344,
            max_message_bits: 64,
        });
        metrics.push_round(RoundMetrics::default());
        let repro = Repro {
            metrics: Some(metrics),
            ..sample_repro(3)
        };
        let text = repro.to_json();
        assert!(text.contains("\"messages_correct\": 42"), "{text}");
        let reread = Repro::from_json(&text).unwrap();
        assert_eq!(reread, repro);
        assert_eq!(reread.metrics.as_ref().unwrap().rounds_executed(), 2);
        // Files from builds that predate the field still parse.
        let without = sample_repro(3).to_json();
        assert_eq!(Repro::from_json(&without).unwrap().metrics, None);
    }

    #[test]
    fn fitness_round_trips_and_stays_optional() {
        // Negative scores (e.g. a namespace signal that never decided)
        // must survive the integer-only JSON dialect.
        for score in [i64::MIN, -7, 0, 42, i64::MAX] {
            let repro = Repro {
                fitness: Some(FitnessRecord {
                    kind: FitnessKind::Margin,
                    score,
                }),
                ..sample_repro(5)
            };
            let reread = Repro::from_json(&repro.to_json()).unwrap();
            assert_eq!(reread, repro);
        }
        let without = sample_repro(5).to_json();
        assert_eq!(Repro::from_json(&without).unwrap().fitness, None);
        // An unknown fitness kind is rejected, not silently dropped.
        let forged = sample_repro(5).to_json().replace(
            "\"digest\"",
            "\"fitness\": {\"kind\": \"luck\", \"score\": 1}, \"digest\"",
        );
        assert!(Repro::from_json(&forged).is_err());
    }

    #[test]
    fn schedules_with_every_event_kind_round_trip() {
        let mut schedule = generate_schedule(1, BudgetRegime::AtBudget);
        schedule.events = opr_transport::FaultPlan::new()
            .drop_message(0, opr_types::LinkId::new(2), opr_types::Round::new(3))
            .silence_link_from(1, opr_types::LinkId::new(1), opr_types::Round::new(2))
            .crash_from(2, opr_types::Round::new(1))
            .events();
        schedule.payload_cap = Some(1 << 20);
        let json = schedule_to_json(&schedule);
        assert_eq!(schedule_from_json(&json).unwrap(), schedule);
    }

    #[test]
    fn replay_is_deterministic() {
        let repro = Repro {
            digest: String::new(),
            ..sample_repro(23)
        };
        let oracles = standard_suite();
        let first = repro.replay(&oracles);
        let second = repro.replay(&oracles);
        assert_eq!(first.digest(), second.digest());
    }

    #[test]
    fn bad_files_are_rejected_with_reasons() {
        for (text, needle) in [
            ("{", "json error"),
            (r#"{"version": 99}"#, "version"),
            (
                r#"{"version": 1, "campaign_seed": 0, "run_index": 0,
                   "budget": "sideways", "backend": "sim", "digest": "x",
                   "schedule": {}}"#,
                "budget",
            ),
        ] {
            let err = Repro::from_json(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
