//! The pluggable invariant-oracle suite.
//!
//! Each oracle inspects one diagnosed run (plus, when the campaign executes
//! a schedule on both backends, the second run) and reports the breaches it
//! owns. The property oracles project out of the runner's own diagnosis
//! ([`DegradedOutcome::diagnose`](opr_types::DegradedOutcome::diagnose)
//! already judges the healthy correct processes); the cross-backend oracle
//! compares the two executions observable-by-observable and demands
//! bit-equality.
//!
//! Beyond the boolean verdict, oracles with a numeric notion of slack
//! expose [`Oracle::margin`] — the distance to violation. A margin of `0`
//! means "on the edge" (one name, round or message from breaking), negative
//! means "violated by that much". The guided adversary search
//! ([`crate::search`]) maximizes pressure by *minimizing* these margins.

use crate::schedule::ChaosSchedule;
use opr_obs::ProtocolEvent;
use opr_transport::BackendKind;
use opr_types::{PropertyViolation, Violation};
use opr_workload::DiagnosedRun;

/// What a campaign hands every oracle for one executed schedule.
pub struct OracleInput<'a> {
    /// The schedule that ran.
    pub schedule: &'a ChaosSchedule,
    /// The reference execution's diagnosis.
    pub reference: &'a DiagnosedRun,
    /// Which backend produced the reference.
    pub reference_backend: BackendKind,
    /// The second executions (when the campaign compares backends), in
    /// [`BackendChoice::backends`](crate::BackendChoice::backends) order.
    pub others: Vec<(BackendKind, &'a DiagnosedRun)>,
}

/// One paper invariant, checkable against an executed schedule.
pub trait Oracle {
    /// A short stable name for reports.
    fn name(&self) -> &'static str;
    /// The violations of this oracle's invariant, empty when it holds.
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation>;
    /// The distance to violation, when this oracle has a numeric notion of
    /// slack: `0` is on the edge, negative is violated by that much, `None`
    /// when the invariant is purely boolean or the run carries no signal
    /// (e.g. no decisions, no recorded events).
    fn margin(&self, _input: &OracleInput<'_>) -> Option<i64> {
        None
    }
}

/// The stable kind tag of a violation (matching
/// [`DegradedOutcome::digest`](opr_types::DegradedOutcome::digest)).
pub fn violation_kind(v: &Violation) -> &'static str {
    match v {
        Violation::Property(PropertyViolation::Validity { .. }) => "validity",
        Violation::Property(PropertyViolation::Termination { .. }) => "termination",
        Violation::Property(PropertyViolation::Uniqueness { .. }) => "uniqueness",
        Violation::Property(PropertyViolation::OrderPreservation { .. }) => "order",
        Violation::NamespaceExceeded { .. } => "namespace",
        Violation::StepCountMismatch { .. } => "steps",
        Violation::MissedTermination { .. } => "missed-termination",
        Violation::CorrectMalformed(_) => "correct-malformed",
        Violation::BackendDivergence { .. } => "backend-divergence",
    }
}

/// Projects the reference diagnosis onto the kinds an oracle owns.
fn project(input: &OracleInput<'_>, kinds: &[&str]) -> Vec<Violation> {
    input
        .reference
        .degraded
        .violations
        .iter()
        .filter(|v| kinds.contains(&violation_kind(v)))
        .cloned()
        .collect()
}

/// No two healthy correct processes decide the same name.
pub struct UniquenessOracle;

impl Oracle for UniquenessOracle {
    fn name(&self) -> &'static str {
        "uniqueness"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["uniqueness"])
    }
}

/// Names of healthy correct processes are ordered like their original ids.
pub struct OrderPreservationOracle;

impl Oracle for OrderPreservationOracle {
    fn name(&self) -> &'static str {
        "order-preservation"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["order"])
    }
}

/// Every decided name lies in the algorithm's namespace (`N + t − 1`, `N`
/// or `N²`); validity breaches ride along (a name outside the permitted
/// range is the same contract).
pub struct NamespaceOracle;

impl Oracle for NamespaceOracle {
    fn name(&self) -> &'static str {
        "namespace"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["namespace", "validity"])
    }
    /// Names left below the bound: `bound − max_name` over every decided
    /// correct process (excluded ones included — they consume namespace).
    fn margin(&self, input: &OracleInput<'_>) -> Option<i64> {
        let bound = input
            .schedule
            .cfg()
            .ok()?
            .namespace_bound(input.schedule.regime) as i64;
        let max = input.reference.full_outcome.max_name()?;
        Some(bound - max.raw())
    }
}

/// The run took the algorithm's exact step count.
pub struct StepCountOracle;

impl Oracle for StepCountOracle {
    fn name(&self) -> &'static str {
        "step-count"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["steps"])
    }
    /// `−|got − expected|`: the step-count contract is exact, so the only
    /// slack is zero and any drift is already a violation by that much.
    /// `None` while the run has not completed (the contract is unjudged).
    fn margin(&self, input: &OracleInput<'_>) -> Option<i64> {
        if !input.reference.degraded.completed {
            return None;
        }
        let expected = input
            .schedule
            .cfg()
            .ok()?
            .total_steps(input.schedule.regime) as i64;
        let got = input.reference.rounds as i64;
        Some(-(expected - got).abs())
    }
}

/// Every healthy correct process decided within the round budget.
pub struct TerminationOracle;

impl Oracle for TerminationOracle {
    fn name(&self) -> &'static str {
        "termination"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["termination", "missed-termination"])
    }
    /// Rounds of budget left when the last process decided (`budget −
    /// latest decision step`, from the event stream); `−1` when some
    /// recorded process never decided. `None` without recorded events.
    fn margin(&self, input: &OracleInput<'_>) -> Option<i64> {
        let log = input.reference.events.as_ref()?;
        let budget = input
            .schedule
            .cfg()
            .ok()?
            .total_steps(input.schedule.regime) as i64;
        let mut worst: Option<i64> = None;
        for process in &log.processes {
            let decided = process
                .events
                .iter()
                .filter_map(|e| match e {
                    ProtocolEvent::Decided { step, .. } => Some(i64::from(*step)),
                    _ => None,
                })
                .max();
            let slack = match decided {
                Some(step) => budget - step,
                None => -1,
            };
            worst = Some(worst.map_or(slack, |w: i64| w.min(slack)));
        }
        worst
    }
}

/// No *correct* process produced a transport-rejected send (Byzantine
/// processes may; a correct one doing so is a protocol or harness bug in
/// any budget regime).
pub struct MalformedOracle;

impl Oracle for MalformedOracle {
    fn name(&self) -> &'static str {
        "correct-malformed"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["correct-malformed"])
    }
}

/// Every compared backend produced observables bit-equal to the reference:
/// outcome, rounds, message/bit metrics, the malformed-send ledger and the
/// diagnosis itself.
pub struct CrossBackendOracle;

impl Oracle for CrossBackendOracle {
    fn name(&self) -> &'static str {
        "cross-backend"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        let a = input.reference;
        let mut out = Vec::new();
        for (_, other) in &input.others {
            let mut diverge = |observable: &'static str, left: String, right: String| {
                if left != right {
                    out.push(Violation::BackendDivergence {
                        observable,
                        reference: left,
                        other: right,
                    });
                }
            };
            diverge(
                "outcome",
                format!("{:?}", a.full_outcome),
                format!("{:?}", other.full_outcome),
            );
            diverge("rounds", a.rounds.to_string(), other.rounds.to_string());
            diverge(
                "messages",
                a.metrics.messages_total().to_string(),
                other.metrics.messages_total().to_string(),
            );
            diverge(
                "bits",
                a.metrics.bits_correct().to_string(),
                other.metrics.bits_correct().to_string(),
            );
            diverge(
                "max-message-bits",
                a.metrics.max_message_bits().to_string(),
                other.metrics.max_message_bits().to_string(),
            );
            diverge(
                "malformed",
                format!("{:?}", a.malformed),
                format!("{:?}", other.malformed),
            );
            diverge(
                "diagnosis",
                format!("{:?}", a.degraded.violations),
                format!("{:?}", other.degraded.violations),
            );
        }
        out
    }
}

/// How far one threshold decision sat from flipping: `count − quorum` when
/// it passed, `quorum − count − 1` when it failed. Both are `≥ 0`; `0`
/// means one message either way would have changed the admission.
fn flip_distance(count: usize, quorum: usize, passed: bool) -> i64 {
    if passed {
        count as i64 - quorum as i64
    } else {
        quorum as i64 - count as i64 - 1
    }
}

/// The flip distance of one event's quorum comparison, for the variants
/// that carry one (ECHO/READY/ACCEPT thresholds and AA vote admission).
pub fn event_flip_distance(event: &ProtocolEvent) -> Option<i64> {
    match *event {
        ProtocolEvent::EchoThreshold {
            echoes,
            quorum,
            kept,
            ..
        } => Some(flip_distance(echoes, quorum, kept)),
        ProtocolEvent::ReadyThreshold {
            readies,
            quorum,
            timely,
            ..
        } => Some(flip_distance(readies, quorum, timely)),
        ProtocolEvent::AcceptThreshold {
            readies,
            quorum,
            accepted,
            ..
        } => Some(flip_distance(readies, quorum, accepted)),
        ProtocolEvent::IdDropped { votes, needed, .. } => Some(flip_distance(votes, needed, false)),
        _ => None,
    }
}

/// The quorum landscape of one recorded run: the minimum flip distance
/// across every threshold decision, and how many decisions sat exactly on
/// the edge. `None` when the run carries no events or no threshold events.
pub fn quorum_pressure(run: &DiagnosedRun) -> Option<(i64, usize)> {
    let log = run.events.as_ref()?;
    let mut min: Option<i64> = None;
    let mut edges = 0usize;
    for process in &log.processes {
        for event in &process.events {
            if let Some(d) = event_flip_distance(event) {
                if d == 0 {
                    edges += 1;
                }
                min = Some(min.map_or(d, |m: i64| m.min(d)));
            }
        }
    }
    min.map(|m| (m, edges))
}

/// Every quorum comparison held with room to spare — or didn't. No boolean
/// invariant of its own (a quorum exactly met is legal); exists for its
/// [`Oracle::margin`]: the minimum flip distance over all recorded
/// threshold decisions.
pub struct QuorumEdgeOracle;

impl Oracle for QuorumEdgeOracle {
    fn name(&self) -> &'static str {
        "quorum-edge"
    }
    fn check(&self, _input: &OracleInput<'_>) -> Vec<Violation> {
        Vec::new()
    }
    fn margin(&self, input: &OracleInput<'_>) -> Option<i64> {
        quorum_pressure(input.reference).map(|(min, _)| min)
    }
}

/// The full standard suite, in reporting order: the four renaming
/// properties, the step count, correct-process hygiene, cross-backend
/// bit-equality, and the (margin-only) quorum edge.
pub fn standard_suite() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(UniquenessOracle),
        Box::new(OrderPreservationOracle),
        Box::new(NamespaceOracle),
        Box::new(TerminationOracle),
        Box::new(StepCountOracle),
        Box::new(MalformedOracle),
        Box::new(CrossBackendOracle),
        Box::new(QuorumEdgeOracle),
    ]
}

/// Every oracle's margin for one single-backend execution, in suite order,
/// skipping oracles with no numeric slack on this run.
pub fn suite_margins(
    schedule: &ChaosSchedule,
    run: &DiagnosedRun,
    backend: BackendKind,
) -> Vec<(&'static str, i64)> {
    let input = OracleInput {
        schedule,
        reference: run,
        reference_backend: backend,
        others: Vec::new(),
    };
    standard_suite()
        .iter()
        .filter_map(|oracle| oracle.margin(&input).map(|m| (oracle.name(), m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_schedule;
    use crate::schedule::BudgetRegime;

    fn input_for<'a>(
        schedule: &'a ChaosSchedule,
        reference: &'a DiagnosedRun,
        other: Option<&'a DiagnosedRun>,
    ) -> OracleInput<'a> {
        OracleInput {
            schedule,
            reference,
            reference_backend: BackendKind::Sim,
            others: other
                .map(|o| (BackendKind::Threaded, o))
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn clean_run_satisfies_every_oracle() {
        let schedule = generate_schedule(3, BudgetRegime::AtBudget);
        let sim = schedule.run_on(BackendKind::Sim).unwrap();
        let thr = schedule.run_on(BackendKind::Threaded).unwrap();
        let input = input_for(&schedule, &sim, Some(&thr));
        for oracle in standard_suite() {
            let violations = oracle.check(&input);
            assert!(violations.is_empty(), "{}: {violations:?}", oracle.name());
        }
    }

    #[test]
    fn cross_backend_oracle_flags_divergence() {
        let schedule = generate_schedule(3, BudgetRegime::AtBudget);
        let sim = schedule.run_on(BackendKind::Sim).unwrap();
        let mut forged = sim.clone();
        forged.rounds += 1;
        let input = input_for(&schedule, &sim, Some(&forged));
        let violations = CrossBackendOracle.check(&input);
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::BackendDivergence {
                observable: "rounds",
                ..
            }
        )));
    }

    #[test]
    fn oracles_project_the_runner_diagnosis() {
        // An over-budget schedule that misses termination must surface via
        // the termination oracle and no other property oracle.
        let schedule = ChaosSchedule {
            regime: opr_types::Regime::LogTime,
            n: 7,
            t: 2,
            id_dist: opr_workload::IdDistribution::EvenSpaced,
            id_seed: 4,
            adversary: opr_adversary::AdversarySpec::Silent,
            byzantine: 3,
            run_seed: 2,
            events: Vec::new(),
            payload_cap: None,
        };
        let sim = schedule.run_on(BackendKind::Sim).unwrap();
        let input = input_for(&schedule, &sim, None);
        if sim.degraded.is_clean() {
            // 3 silent processes may still allow termination; nothing to do.
            return;
        }
        let term = TerminationOracle.check(&input);
        let uniq = UniquenessOracle.check(&input);
        assert!(!term.is_empty());
        assert!(uniq.is_empty());
    }

    #[test]
    fn suite_names_are_distinct() {
        let mut names: Vec<&str> = standard_suite().iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn margins_are_positive_on_a_clean_observed_run() {
        let mut saw_quorum_edge = false;
        for seed in 0..8u64 {
            let schedule = generate_schedule(seed, BudgetRegime::InBudget);
            let run = schedule.run_observed(BackendKind::Sim, None).unwrap();
            let margins = suite_margins(&schedule, &run, BackendKind::Sim);
            let lookup = |name: &str| margins.iter().find(|(n, _)| *n == name).map(|&(_, m)| m);
            // A clean in-budget run sits inside every numeric bound.
            assert!(lookup("namespace").unwrap() >= 0, "seed {seed}");
            assert!(lookup("termination").unwrap() >= 0, "seed {seed}");
            assert_eq!(lookup("step-count").unwrap(), 0, "seed {seed}");
            // Two-step schedules record no quorum-threshold events, so the
            // quorum-edge margin is present only for Algorithm 1 regimes.
            if let Some(edge) = lookup("quorum-edge") {
                assert!(edge >= 0, "seed {seed}");
                saw_quorum_edge = true;
            }
        }
        assert!(saw_quorum_edge, "no seed exercised the quorum-edge margin");
    }

    #[test]
    fn margins_need_events_where_events_are_the_signal() {
        let schedule = generate_schedule(3, BudgetRegime::InBudget);
        let run = schedule.run_on(BackendKind::Sim).unwrap();
        let margins = suite_margins(&schedule, &run, BackendKind::Sim);
        // Without a recorded event stream the event-derived margins vanish
        // but the outcome-derived ones survive.
        assert!(margins.iter().any(|(n, _)| *n == "namespace"));
        assert!(margins.iter().all(|(n, _)| *n != "termination"));
        assert!(margins.iter().all(|(n, _)| *n != "quorum-edge"));
    }

    #[test]
    fn flip_distance_is_zero_exactly_on_the_edge() {
        // Passed with exactly the quorum, or failed one short of it.
        assert_eq!(flip_distance(5, 5, true), 0);
        assert_eq!(flip_distance(4, 5, false), 0);
        assert_eq!(flip_distance(7, 5, true), 2);
        assert_eq!(flip_distance(2, 5, false), 2);
    }
}
