//! The pluggable invariant-oracle suite.
//!
//! Each oracle inspects one diagnosed run (plus, when the campaign executes
//! a schedule on both backends, the second run) and reports the breaches it
//! owns. The property oracles project out of the runner's own diagnosis
//! ([`DegradedOutcome::diagnose`](opr_types::DegradedOutcome::diagnose)
//! already judges the healthy correct processes); the cross-backend oracle
//! compares the two executions observable-by-observable and demands
//! bit-equality.

use crate::schedule::ChaosSchedule;
use opr_transport::BackendKind;
use opr_types::{PropertyViolation, Violation};
use opr_workload::DiagnosedRun;

/// What a campaign hands every oracle for one executed schedule.
pub struct OracleInput<'a> {
    /// The schedule that ran.
    pub schedule: &'a ChaosSchedule,
    /// The reference execution's diagnosis.
    pub reference: &'a DiagnosedRun,
    /// Which backend produced the reference.
    pub reference_backend: BackendKind,
    /// The second execution (when the campaign runs both backends).
    pub other: Option<(BackendKind, &'a DiagnosedRun)>,
}

/// One paper invariant, checkable against an executed schedule.
pub trait Oracle {
    /// A short stable name for reports.
    fn name(&self) -> &'static str;
    /// The violations of this oracle's invariant, empty when it holds.
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation>;
}

/// The stable kind tag of a violation (matching
/// [`DegradedOutcome::digest`](opr_types::DegradedOutcome::digest)).
pub fn violation_kind(v: &Violation) -> &'static str {
    match v {
        Violation::Property(PropertyViolation::Validity { .. }) => "validity",
        Violation::Property(PropertyViolation::Termination { .. }) => "termination",
        Violation::Property(PropertyViolation::Uniqueness { .. }) => "uniqueness",
        Violation::Property(PropertyViolation::OrderPreservation { .. }) => "order",
        Violation::NamespaceExceeded { .. } => "namespace",
        Violation::StepCountMismatch { .. } => "steps",
        Violation::MissedTermination { .. } => "missed-termination",
        Violation::CorrectMalformed(_) => "correct-malformed",
        Violation::BackendDivergence { .. } => "backend-divergence",
    }
}

/// Projects the reference diagnosis onto the kinds an oracle owns.
fn project(input: &OracleInput<'_>, kinds: &[&str]) -> Vec<Violation> {
    input
        .reference
        .degraded
        .violations
        .iter()
        .filter(|v| kinds.contains(&violation_kind(v)))
        .cloned()
        .collect()
}

/// No two healthy correct processes decide the same name.
pub struct UniquenessOracle;

impl Oracle for UniquenessOracle {
    fn name(&self) -> &'static str {
        "uniqueness"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["uniqueness"])
    }
}

/// Names of healthy correct processes are ordered like their original ids.
pub struct OrderPreservationOracle;

impl Oracle for OrderPreservationOracle {
    fn name(&self) -> &'static str {
        "order-preservation"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["order"])
    }
}

/// Every decided name lies in the algorithm's namespace (`N + t − 1`, `N`
/// or `N²`); validity breaches ride along (a name outside the permitted
/// range is the same contract).
pub struct NamespaceOracle;

impl Oracle for NamespaceOracle {
    fn name(&self) -> &'static str {
        "namespace"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["namespace", "validity"])
    }
}

/// The run took the algorithm's exact step count.
pub struct StepCountOracle;

impl Oracle for StepCountOracle {
    fn name(&self) -> &'static str {
        "step-count"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["steps"])
    }
}

/// Every healthy correct process decided within the round budget.
pub struct TerminationOracle;

impl Oracle for TerminationOracle {
    fn name(&self) -> &'static str {
        "termination"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["termination", "missed-termination"])
    }
}

/// No *correct* process produced a transport-rejected send (Byzantine
/// processes may; a correct one doing so is a protocol or harness bug in
/// any budget regime).
pub struct MalformedOracle;

impl Oracle for MalformedOracle {
    fn name(&self) -> &'static str {
        "correct-malformed"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        project(input, &["correct-malformed"])
    }
}

/// The two backends produced bit-equal observables: outcome, rounds,
/// message/bit metrics, the malformed-send ledger and the diagnosis itself.
pub struct CrossBackendOracle;

impl Oracle for CrossBackendOracle {
    fn name(&self) -> &'static str {
        "cross-backend"
    }
    fn check(&self, input: &OracleInput<'_>) -> Vec<Violation> {
        let Some((_, other)) = input.other else {
            return Vec::new();
        };
        let a = input.reference;
        let mut out = Vec::new();
        let mut diverge = |observable: &'static str, left: String, right: String| {
            if left != right {
                out.push(Violation::BackendDivergence {
                    observable,
                    reference: left,
                    other: right,
                });
            }
        };
        diverge(
            "outcome",
            format!("{:?}", a.full_outcome),
            format!("{:?}", other.full_outcome),
        );
        diverge("rounds", a.rounds.to_string(), other.rounds.to_string());
        diverge(
            "messages",
            a.metrics.messages_total().to_string(),
            other.metrics.messages_total().to_string(),
        );
        diverge(
            "bits",
            a.metrics.bits_correct().to_string(),
            other.metrics.bits_correct().to_string(),
        );
        diverge(
            "max-message-bits",
            a.metrics.max_message_bits().to_string(),
            other.metrics.max_message_bits().to_string(),
        );
        diverge(
            "malformed",
            format!("{:?}", a.malformed),
            format!("{:?}", other.malformed),
        );
        diverge(
            "diagnosis",
            format!("{:?}", a.degraded.violations),
            format!("{:?}", other.degraded.violations),
        );
        out
    }
}

/// The full standard suite, in reporting order: the four renaming
/// properties, the step count, correct-process hygiene, and cross-backend
/// bit-equality.
pub fn standard_suite() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(UniquenessOracle),
        Box::new(OrderPreservationOracle),
        Box::new(NamespaceOracle),
        Box::new(TerminationOracle),
        Box::new(StepCountOracle),
        Box::new(MalformedOracle),
        Box::new(CrossBackendOracle),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_schedule;
    use crate::schedule::BudgetRegime;

    fn input_for<'a>(
        schedule: &'a ChaosSchedule,
        reference: &'a DiagnosedRun,
        other: Option<&'a DiagnosedRun>,
    ) -> OracleInput<'a> {
        OracleInput {
            schedule,
            reference,
            reference_backend: BackendKind::Sim,
            other: other.map(|o| (BackendKind::Threaded, o)),
        }
    }

    #[test]
    fn clean_run_satisfies_every_oracle() {
        let schedule = generate_schedule(3, BudgetRegime::AtBudget);
        let sim = schedule.run_on(BackendKind::Sim).unwrap();
        let thr = schedule.run_on(BackendKind::Threaded).unwrap();
        let input = input_for(&schedule, &sim, Some(&thr));
        for oracle in standard_suite() {
            let violations = oracle.check(&input);
            assert!(violations.is_empty(), "{}: {violations:?}", oracle.name());
        }
    }

    #[test]
    fn cross_backend_oracle_flags_divergence() {
        let schedule = generate_schedule(3, BudgetRegime::AtBudget);
        let sim = schedule.run_on(BackendKind::Sim).unwrap();
        let mut forged = sim.clone();
        forged.rounds += 1;
        let input = input_for(&schedule, &sim, Some(&forged));
        let violations = CrossBackendOracle.check(&input);
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::BackendDivergence {
                observable: "rounds",
                ..
            }
        )));
    }

    #[test]
    fn oracles_project_the_runner_diagnosis() {
        // An over-budget schedule that misses termination must surface via
        // the termination oracle and no other property oracle.
        let schedule = ChaosSchedule {
            regime: opr_types::Regime::LogTime,
            n: 7,
            t: 2,
            id_dist: opr_workload::IdDistribution::EvenSpaced,
            id_seed: 4,
            adversary: opr_adversary::AdversarySpec::Silent,
            byzantine: 3,
            run_seed: 2,
            events: Vec::new(),
            payload_cap: None,
        };
        let sim = schedule.run_on(BackendKind::Sim).unwrap();
        let input = input_for(&schedule, &sim, None);
        if sim.degraded.is_clean() {
            // 3 silent processes may still allow termination; nothing to do.
            return;
        }
        let term = TerminationOracle.check(&input);
        let uniq = UniquenessOracle.check(&input);
        assert!(!term.is_empty());
        assert!(uniq.is_empty());
    }

    #[test]
    fn suite_names_are_distinct() {
        let mut names: Vec<&str> = standard_suite().iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
