//! `chaos explain`: replay a repro file with the protocol recorder attached
//! and render every correct process's decision waterfall.
//!
//! The waterfall is built purely from the deterministic layer — the
//! [`RunLog`] event stream and the run's network counters — so explaining
//! the same repro file always prints the same text (the golden test in
//! `tests/` pins it byte-for-byte). Wall-clock spans never appear here.

use crate::repro::Repro;
use opr_obs::{ProtocolEvent, RunLog, ValidityViolation};
use opr_types::RenamingError;
use opr_workload::DiagnosedRun;
use std::fmt::Write as _;

/// A replayed-and-rendered repro: the observed run (events attached) plus
/// the decision waterfall built from it.
#[derive(Clone, Debug)]
pub struct Explained {
    /// The replayed run, with [`DiagnosedRun::events`] populated.
    pub run: DiagnosedRun,
    /// The rendered per-process decision waterfall.
    pub text: String,
}

/// Replays `repro`'s schedule on its reference backend with the recorder
/// attached and renders the decision waterfall.
///
/// # Errors
///
/// Returns [`RenamingError`] only when the schedule cannot start (a
/// corrupt repro file) — the same conditions as
/// [`crate::schedule::ChaosSchedule::run_on`].
pub fn explain_repro(repro: &Repro) -> Result<Explained, RenamingError> {
    let (reference, _) = repro.backend.backends();
    let run = repro.schedule.run_observed(reference, None)?;
    let text = render_waterfall(repro, &run);
    Ok(Explained { run, text })
}

/// Renders the decision waterfall for an observed run of `repro`'s
/// schedule. Deterministic: a pure function of the repro header and the
/// run's deterministic observables.
pub fn render_waterfall(repro: &Repro, run: &DiagnosedRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schedule: {}", repro.schedule.describe());
    let _ = writeln!(
        out,
        "captured: digest '{}' under {} budget on {} (campaign seed {}, run #{})",
        repro.digest, repro.budget, repro.backend, repro.campaign_seed, repro.run_index
    );
    if let Some(metrics) = &repro.metrics {
        let _ = writeln!(
            out,
            "recorded: {} rounds at capture; {}+{} msgs correct+faulty, {} bits correct, max msg {} bits",
            metrics.rounds_executed(),
            metrics.messages_correct(),
            metrics.messages_faulty(),
            metrics.bits_correct(),
            metrics.max_message_bits()
        );
    }
    let reference = repro.backend.backends().0;
    let _ = writeln!(
        out,
        "replayed: {} rounds on {reference:?}; {}+{} msgs correct+faulty, {} bits correct, max msg {} bits",
        run.rounds,
        run.metrics.messages_correct(),
        run.metrics.messages_faulty(),
        run.metrics.bits_correct(),
        run.metrics.max_message_bits()
    );
    let faulty: Vec<usize> = run
        .faulty_mask
        .iter()
        .enumerate()
        .filter_map(|(i, &f)| f.then_some(i))
        .collect();
    let excluded: Vec<u64> = run.excluded.iter().map(|id| id.raw()).collect();
    let _ = writeln!(
        out,
        "faults:   byzantine indices {faulty:?}, transport-excluded ids {excluded:?}, {} malformed sends",
        run.malformed.len()
    );
    let margins = crate::oracle::suite_margins(&repro.schedule, run, reference);
    if !margins.is_empty() {
        let rendered: Vec<String> = margins
            .iter()
            .map(|(name, margin)| format!("{name}={margin}"))
            .collect();
        let _ = writeln!(out, "margins:  {}", rendered.join(", "));
    }
    match &run.events {
        None => {
            out.push_str("\n(no event log recorded)\n");
        }
        Some(log) => render_processes(&mut out, log),
    }
    render_metrics_block(&mut out, run, &margins);
    out
}

/// The deterministic metrics summary appended after the waterfall: the
/// run's counter/gauge fold plus the oracle margins, in stable order.
/// Purely derived from deterministic artefacts, so golden-safe.
fn render_metrics_block(out: &mut String, run: &DiagnosedRun, margins: &[(&'static str, i64)]) {
    let snapshot = run.metrics_snapshot();
    out.push_str("\nmetrics:\n");
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "  {name:<44} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "  {name:<44} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        let _ = writeln!(out, "  {:<44} {}", format!("{name}_count"), hist.count);
        let _ = writeln!(out, "  {:<44} {}", format!("{name}_sum"), hist.sum);
    }
    for (name, margin) in margins {
        let _ = writeln!(
            out,
            "  {:<44} {margin}",
            format!("oracle_margin{{name=\"{name}\"}}")
        );
    }
}

fn render_processes(out: &mut String, log: &RunLog) {
    for plog in &log.processes {
        let decision = plog.events.iter().rev().find_map(|e| match e {
            ProtocolEvent::Decided { step, name } => Some((*step, *name)),
            _ => None,
        });
        let _ = match decision {
            Some((step, name)) => writeln!(
                out,
                "\nprocess id {} -> name {} @ step {}",
                plog.id.raw(),
                name.raw(),
                step
            ),
            None => writeln!(out, "\nprocess id {} -> undecided", plog.id.raw()),
        };
        for event in &plog.events {
            let _ = writeln!(
                out,
                "  step {:>2} | {:<16} | {}",
                event.step(),
                event.kind(),
                describe_event(event)
            );
        }
    }
}

fn describe_violation(violation: &ValidityViolation) -> String {
    match violation {
        ValidityViolation::MissingTimelyId { id } => {
            format!("missing timely id {}", id.raw())
        }
        ValidityViolation::MalformedVector => "malformed vector".to_string(),
        ValidityViolation::InsufficientSpacing {
            prev,
            prev_rank,
            id,
            rank,
            spacing,
        } => format!(
            "ids {}@{:.9} and {}@{:.9} closer than spacing {:.9}",
            prev.raw(),
            prev_rank.value(),
            id.raw(),
            rank.value(),
            spacing
        ),
    }
}

/// One human line per event: the counts, the threshold they were compared
/// against, and which way the decision went.
pub fn describe_event(event: &ProtocolEvent) -> String {
    match event {
        ProtocolEvent::IdSeen { link, id, .. } => {
            format!("id {} arrived on link {}", id.raw(), link.label())
        }
        ProtocolEvent::EchoThreshold {
            id,
            echoes,
            quorum,
            kept,
            ..
        } => format!(
            "id {}: {echoes} echoes vs quorum {quorum} -> {}",
            id.raw(),
            if *kept { "kept" } else { "dropped" }
        ),
        ProtocolEvent::ReadyThreshold {
            id,
            readies,
            quorum,
            weak_quorum,
            timely,
            relayed,
            ..
        } => format!(
            "id {}: {readies} readies vs quorum {quorum} (weak {weak_quorum}) -> {}{}",
            id.raw(),
            if *timely { "timely" } else { "not timely" },
            if *relayed { ", relayed ready" } else { "" }
        ),
        ProtocolEvent::AcceptThreshold {
            id,
            readies,
            quorum,
            accepted,
            ..
        } => format!(
            "id {}: {readies} readies vs quorum {quorum} -> {}",
            id.raw(),
            if *accepted {
                "accepted"
            } else {
                "not accepted"
            }
        ),
        ProtocolEvent::VoteVectorSent { ids, .. } => {
            let list = ids
                .iter()
                .map(|id| id.raw().to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!("broadcast vector over {} ids [{list}]", ids.len())
        }
        ProtocolEvent::VoteAccepted { link, entries, .. } => format!(
            "link {}: {entries}-entry vector passed isValid",
            link.label()
        ),
        ProtocolEvent::VoteRejected {
            link, violation, ..
        } => format!(
            "link {}: vector rejected — {}",
            link.label(),
            describe_violation(violation)
        ),
        ProtocolEvent::IdDropped {
            id, votes, needed, ..
        } => format!(
            "id {}: only {votes} of {needed} needed votes -> dropped",
            id.raw()
        ),
        ProtocolEvent::TrimmedMean {
            id, votes, rank, ..
        } => format!("id {}: {votes} votes -> rank {:.9}", id.raw(), rank.value()),
        ProtocolEvent::EchoCounted {
            link, ids, valid, ..
        } => format!(
            "link {}: {ids}-id echo {}",
            link.label(),
            if *valid {
                "counted"
            } else {
                "invalid, ignored"
            }
        ),
        ProtocolEvent::NameOffset {
            id,
            echoes,
            clamped,
            name,
            ..
        } => format!(
            "id {}: {echoes} echoes, clamped offset {clamped} -> name {}",
            id.raw(),
            name.raw()
        ),
        ProtocolEvent::KingRound {
            phase,
            king,
            king_heard,
            adopted,
            ..
        } => format!(
            "phase {phase}: king on link {} {}, {adopted} keys adopted its bit",
            king.label(),
            if *king_heard { "heard" } else { "silent" }
        ),
        ProtocolEvent::Decided { name, .. } => format!("name {}", name.raw()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BackendChoice;
    use crate::generator::generate_schedule;
    use crate::schedule::BudgetRegime;

    fn sample() -> Repro {
        Repro {
            campaign_seed: 7,
            run_index: 0,
            budget: BudgetRegime::InBudget,
            backend: BackendChoice::Both,
            digest: "clean".into(),
            schedule: generate_schedule(per_seed(), BudgetRegime::InBudget),
            metrics: None,
            fitness: None,
        }
    }

    fn per_seed() -> u64 {
        crate::engine::per_run_seed(7, 0)
    }

    #[test]
    fn explain_is_deterministic_and_covers_every_process() {
        let repro = sample();
        let a = explain_repro(&repro).unwrap();
        let b = explain_repro(&repro).unwrap();
        assert_eq!(a.text, b.text);
        let log = a.run.events.as_ref().expect("recorder attached");
        for plog in &log.processes {
            assert!(
                a.text.contains(&format!("process id {}", plog.id.raw())),
                "missing process {} in:\n{}",
                plog.id.raw(),
                a.text
            );
        }
        assert!(a.text.starts_with("schedule: "), "{}", a.text);
        assert!(a.text.contains("replayed: "), "{}", a.text);
    }

    #[test]
    fn waterfall_surfaces_oracle_margins() {
        let explained = explain_repro(&sample()).unwrap();
        assert!(
            explained.text.contains("margins:  "),
            "no margins line in:\n{}",
            explained.text
        );
        for name in ["namespace=", "termination=", "quorum-edge="] {
            assert!(
                explained.text.contains(name),
                "{name} missing:\n{}",
                explained.text
            );
        }
    }

    #[test]
    fn waterfall_shows_thresholds_and_decisions() {
        let repro = sample();
        let explained = explain_repro(&repro).unwrap();
        assert!(
            explained.text.contains("vs quorum"),
            "no threshold lines in:\n{}",
            explained.text
        );
        assert!(
            explained.text.contains("-> name"),
            "no decision headers in:\n{}",
            explained.text
        );
    }
}
