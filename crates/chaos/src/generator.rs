//! Seeded random schedule generation, aimed at an explicit fault budget.
//!
//! The generator is a pure function of `(seed, budget)`: the same pair
//! always yields the same [`ChaosSchedule`], so a campaign is reproducible
//! from its seed alone and a repro file only has to name the schedule.
//!
//! Budget aiming works backwards from the *effective* fault count `E`
//! (Byzantine actors plus transport-disturbed correct processes): the
//! regime picks `E` relative to `t`, a random split decides how much of it
//! is Byzantine placement versus transport faults, and transport faults are
//! aimed at indices the placement mask marks correct — so the generated
//! schedule lands in the requested [`BudgetRegime`] by construction.

use crate::schedule::{BudgetRegime, ChaosSchedule};
use opr_adversary::AdversarySpec;
use opr_core::fault_placement;
use opr_transport::FaultPlan;
use opr_types::{LinkId, Regime, Round, SystemConfig};
use opr_workload::IdDistribution;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

/// Valid `(n, t)` shapes per regime, kept small so campaigns stay fast while
/// still crossing the interesting resilience thresholds.
fn shape_pool(regime: Regime) -> &'static [(usize, usize)] {
    match regime {
        Regime::LogTime => &[(4, 1), (7, 2), (10, 3)],
        Regime::ConstantTime => &[(4, 1), (9, 2)],
        Regime::TwoStep => &[(4, 1), (11, 2)],
    }
}

/// A payload cap no correct message approaches (ids are 48-bit, sets hold at
/// most `N ≤ 11` of them) — present on a fraction of schedules so the
/// oversized-payload path stays exercised without framing correct traffic.
pub(crate) const GENEROUS_CAP_BITS: u64 = 1 << 20;

/// Generates the deterministic schedule for `(seed, budget)`.
pub fn generate_schedule(seed: u64, budget: BudgetRegime) -> ChaosSchedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6368_616f_732d_6765); // "chaos-ge"

    let regime = *Regime::ALL
        .choose_weighted(&mut rng, |r| match r {
            Regime::LogTime => 3.0,
            Regime::ConstantTime | Regime::TwoStep => 2.0,
        })
        .expect("static non-empty pool");
    let &(n, t) = shape_pool(regime)
        .choose(&mut rng)
        .expect("static non-empty pool");
    let cfg = SystemConfig::new(n, t).expect("pool shapes are valid");
    let rounds = cfg.total_steps(regime) as usize;

    // Effective fault target, then its Byzantine/transport split.
    let effective = match budget {
        BudgetRegime::InBudget => rng.gen_range(0..t),
        BudgetRegime::AtBudget => t,
        BudgetRegime::OverBudget => (t + 1 + rng.gen_range(0..=1usize)).min(n - 2),
    };
    let byzantine = rng.gen_range(0..=effective);
    let disturbed = effective - byzantine;

    let adversary = if byzantine == 0 {
        AdversarySpec::Silent
    } else {
        *AdversarySpec::suite(regime)
            .choose_weighted(&mut rng, |spec| match spec {
                AdversarySpec::Silent => 0.5,
                AdversarySpec::CrashMidway => 1.0,
                _ => 1.5,
            })
            .expect("suites are non-empty with positive weights")
    };

    let run_seed = rng.next_u64();
    let id_seed = rng.next_u64();
    let id_dist = *IdDistribution::ALL
        .choose(&mut rng)
        .expect("static non-empty pool");

    // Aim transport faults at indices the placement leaves correct, so each
    // victim adds exactly one effective fault.
    let mask = fault_placement(n, byzantine, run_seed);
    let correct_indices: Vec<usize> = (0..n).filter(|&i| !mask[i]).collect();
    let victims: Vec<usize> = correct_indices
        .choose_multiple(&mut rng, disturbed)
        .into_iter()
        .copied()
        .collect();

    let mut plan = FaultPlan::new();
    for &victim in &victims {
        plan = match *["crash", "silence", "drops"]
            .choose_weighted(&mut rng, |k| if *k == "crash" { 0.8 } else { 1.1 })
            .expect("static non-empty pool")
        {
            "crash" => plan.crash_from(victim, round_in(&mut rng, rounds)),
            "silence" => {
                let mut p = plan;
                for _ in 0..rng.gen_range(1..=2usize) {
                    p = p.silence_link_from(
                        victim,
                        link_in(&mut rng, n),
                        round_in(&mut rng, rounds),
                    );
                }
                p
            }
            _ => {
                let mut p = plan;
                for _ in 0..rng.gen_range(1..=3usize) {
                    p = p.drop_message(victim, link_in(&mut rng, n), round_in(&mut rng, rounds));
                }
                p
            }
        };
    }
    // Occasional faults aimed at Byzantine senders: they must not shift the
    // budget accounting (the sender is already counted) and give the
    // oracles a chance to catch it if they ever do.
    if byzantine > 0 && rng.gen_bool(0.3) {
        let byz = (0..n).find(|&i| mask[i]).expect("byzantine > 0");
        plan = plan.drop_message(byz, link_in(&mut rng, n), round_in(&mut rng, rounds));
    }

    let payload_cap = rng.gen_bool(0.15).then_some(GENEROUS_CAP_BITS);

    ChaosSchedule {
        regime,
        n,
        t,
        id_dist,
        id_seed,
        adversary,
        byzantine,
        run_seed,
        events: plan.events(),
        payload_cap,
    }
}

fn round_in(rng: &mut StdRng, rounds: usize) -> Round {
    Round::new(rng.gen_range(1..=rounds) as u32)
}

fn link_in(rng: &mut StdRng, n: usize) -> LinkId {
    LinkId::new(rng.gen_range(1..=n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_transport::BackendKind;

    #[test]
    fn generation_is_deterministic_in_seed() {
        for seed in [0u64, 7, 991] {
            for budget in BudgetRegime::ALL {
                assert_eq!(
                    generate_schedule(seed, budget),
                    generate_schedule(seed, budget)
                );
            }
        }
        assert_ne!(
            generate_schedule(1, BudgetRegime::AtBudget),
            generate_schedule(2, BudgetRegime::AtBudget)
        );
    }

    #[test]
    fn schedules_land_in_the_requested_budget_regime() {
        for seed in 0..120u64 {
            for budget in BudgetRegime::ALL {
                let s = generate_schedule(seed, budget);
                assert_eq!(s.budget_regime(), budget, "seed {seed}: {}", s.describe());
            }
        }
    }

    #[test]
    fn events_are_canonical() {
        // Stored events must round-trip through FaultPlan unchanged, or the
        // shrinker's event-level edits would not compose.
        for seed in 0..60u64 {
            let s = generate_schedule(seed, BudgetRegime::OverBudget);
            assert_eq!(
                FaultPlan::from_events(s.events.iter().copied()).events(),
                s.events
            );
        }
    }

    #[test]
    fn generated_schedules_are_runnable() {
        for seed in 0..8u64 {
            for budget in BudgetRegime::ALL {
                let s = generate_schedule(seed, budget);
                s.run_on(BackendKind::Sim)
                    .unwrap_or_else(|e| panic!("seed {seed} {budget}: {e}"));
            }
        }
    }

    #[test]
    fn generator_covers_the_space() {
        use std::collections::BTreeSet;
        let mut regimes = BTreeSet::new();
        let mut adversaries = BTreeSet::new();
        let mut dists = BTreeSet::new();
        let mut capped = false;
        for seed in 0..200u64 {
            let s = generate_schedule(seed, BudgetRegime::AtBudget);
            regimes.insert(format!("{:?}", s.regime));
            adversaries.insert(s.adversary.label());
            dists.insert(s.id_dist.label());
            capped |= s.payload_cap.is_some();
        }
        assert_eq!(regimes.len(), 3);
        assert!(adversaries.len() >= 6, "{adversaries:?}");
        assert_eq!(dists.len(), 4);
        assert!(capped);
    }
}
