#![warn(missing_docs)]
//! Run-level parallel execution with serial observability.
//!
//! Every multi-run driver in this workspace — chaos campaigns, parameter
//! sweeps, experiment tables, soak matrices — executes thousands of
//! *independent* deterministic runs. Each run is exactly reproducible from
//! its inputs and shares no mutable state with any other, so the batch can
//! be spread over worker threads *iff* callers cannot tell the difference:
//! [`RunPool::run_batch`] executes a batch of closures on a fixed set of
//! workers and reassembles the results in submission order, so the caller
//! observes exactly the sequence a serial loop would have produced. The
//! determinism-equivalence suite (`tests/exec_equivalence.rs`) holds the
//! pool to that contract bit-for-bit.
//!
//! The pool is deliberately boring: fixed worker threads and an `mpsc` job
//! queue, built on `std::sync` alone (the build environment has no crates.io
//! access — same constraint that produced `shims/`). Panics inside a task
//! are contained per task ([`TaskResult`]), never poisoning the pool or
//! hanging the batch, and dropping the pool joins every worker.

use opr_metrics::{Counter, Histogram, MetricsRegistry};
use opr_obs::SharedSpanLog;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Wall-clock pool metrics, resolved once at attach time so the per-task
/// path touches only pre-created handles (relaxed atomics, no locks).
#[derive(Clone)]
struct PoolMetrics {
    tasks: Counter,
    queue_wait_ns: Histogram,
    task_ns: Histogram,
    stage_ns: Histogram,
}

/// A task's panic payload, rendered — the one way a batched run can fail
/// that its own return type does not describe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload as a string (`"non-string panic payload"` when the
    /// payload was neither `&str` nor `String`).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// What one batched task produced: its value, or the panic that ended it.
pub type TaskResult<T> = Result<T, TaskPanic>;

type BoxedJob = Box<dyn FnOnce() + Send>;

/// A fixed-size worker pool executing batches of independent closures.
///
/// `jobs ≤ 1` (including 0) degenerates to inline serial execution on the
/// caller's thread — no workers are spawned, and the panic-containment
/// contract is identical. `jobs ≥ 2` spawns exactly `jobs` worker threads
/// sharing one `mpsc` job queue; workers live until the pool is dropped, so
/// repeated batches reuse the same threads.
///
/// # Ordering contract
///
/// [`RunPool::run_batch`] returns results in submission order regardless of
/// which worker ran which task or how long each took. Combined with tasks
/// that are pure functions of their inputs (every run in this workspace),
/// a batch is observationally identical at any worker count.
pub struct RunPool {
    queue: Option<Sender<BoxedJob>>,
    workers: Vec<JoinHandle<()>>,
    /// When attached, each batch records one wall-clock stage span. Wall
    /// timings are observability only — they never affect results or their
    /// order, so the determinism-equivalence contract is untouched.
    spans: Option<SharedSpanLog>,
    /// When attached, each task records queue-wait and execution-time
    /// histograms and each batch a stage histogram — wall-clock plane only.
    metrics: Option<PoolMetrics>,
    stage: AtomicUsize,
}

impl RunPool {
    /// Creates a pool with `jobs` workers (`0` and `1` both mean serial
    /// inline execution).
    pub fn new(jobs: usize) -> Self {
        if jobs <= 1 {
            return RunPool {
                queue: None,
                workers: Vec::new(),
                spans: None,
                metrics: None,
                stage: AtomicUsize::new(0),
            };
        }
        let (tx, rx) = channel::<BoxedJob>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..jobs)
            .map(|k| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("opr-exec-{k}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawning a pool worker")
            })
            .collect();
        RunPool {
            queue: Some(tx),
            workers,
            spans: None,
            metrics: None,
            stage: AtomicUsize::new(0),
        }
    }

    /// Attaches a wall-clock span log; every subsequent batch records one
    /// `pool stage K (N)` span covering submission to the last result.
    pub fn with_spans(mut self, spans: SharedSpanLog) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Attaches a metrics registry; every subsequent task records queue-wait
    /// and execution-time histograms (`opr_pool_queue_wait_ns`,
    /// `opr_pool_task_ns`) plus a task counter, and every batch a stage
    /// duration histogram. These are wall-clock metrics: they never enter
    /// goldens or cross-backend equality.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(PoolMetrics {
            tasks: registry.counter("opr_pool_tasks_total"),
            queue_wait_ns: registry.histogram("opr_pool_queue_wait_ns"),
            task_ns: registry.histogram("opr_pool_task_ns"),
            stage_ns: registry.histogram("opr_pool_stage_ns"),
        });
        self
    }

    /// A serial pool (the degenerate single-worker case) — handy where a
    /// `--jobs` flag defaults to 1.
    pub fn serial() -> Self {
        RunPool::new(1)
    }

    /// The effective parallelism: worker count, or 1 for a serial pool.
    pub fn jobs(&self) -> usize {
        self.workers.len().max(1)
    }

    /// Executes every task and returns their results **in submission
    /// order**. A task that panics yields `Err(TaskPanic)` in its slot; the
    /// remaining tasks run to completion and the pool stays usable.
    pub fn run_batch<T, F>(&self, tasks: Vec<F>) -> Vec<TaskResult<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let observing = self.spans.is_some() || self.metrics.is_some();
        let stage_start = observing.then(|| {
            let stage = self.stage.fetch_add(1, Ordering::Relaxed) as u64;
            (stage, tasks.len() as u64, Instant::now())
        });
        let results = if let Some(pm) = &self.metrics {
            let wrapped: Vec<Box<dyn FnOnce() -> T + Send>> = tasks
                .into_iter()
                .map(|task| {
                    let pm = pm.clone();
                    let submitted = Instant::now();
                    Box::new(move || {
                        pm.queue_wait_ns
                            .record(submitted.elapsed().as_nanos() as u64);
                        let ran = Instant::now();
                        let out = task();
                        pm.task_ns.record(ran.elapsed().as_nanos() as u64);
                        pm.tasks.inc();
                        out
                    }) as Box<dyn FnOnce() -> T + Send>
                })
                .collect();
            self.run_batch_inner(wrapped)
        } else {
            self.run_batch_inner(tasks)
        };
        if let Some((stage, count, start)) = stage_start {
            if let Some(pm) = &self.metrics {
                pm.stage_ns.record(start.elapsed().as_nanos() as u64);
            }
            if let Some(log) = &self.spans {
                log.lock()
                    .unwrap()
                    .record_detailed("pool stage", stage, count, start);
            }
        }
        results
    }

    fn run_batch_inner<T, F>(&self, tasks: Vec<F>) -> Vec<TaskResult<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some(queue) = &self.queue else {
            return tasks.into_iter().map(run_contained).collect();
        };
        let total = tasks.len();
        let (result_tx, result_rx) = channel::<(usize, TaskResult<T>)>();
        for (index, task) in tasks.into_iter().enumerate() {
            let result_tx = result_tx.clone();
            let job: BoxedJob = Box::new(move || {
                // The receiver outlives the batch, so send only fails if the
                // caller's thread already panicked; nothing left to report to.
                let _ = result_tx.send((index, run_contained(task)));
            });
            queue.send(job).expect("workers outlive the pool handle");
        }
        drop(result_tx);
        let mut slots: Vec<Option<TaskResult<T>>> = (0..total).map(|_| None).collect();
        for _ in 0..total {
            let (index, result) = result_rx
                .recv()
                .expect("every submitted task sends exactly one result");
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every slot filled by its task"))
            .collect()
    }
}

impl Drop for RunPool {
    fn drop(&mut self) {
        // Closing the queue ends every worker's recv loop; then join so no
        // detached thread outlives the pool.
        self.queue = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<BoxedJob>>) {
    loop {
        // Hold the lock only for the dequeue, not while running the job.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return,
        }
    }
}

fn run_contained<T, F: FnOnce() -> T>(task: F) -> TaskResult<T> {
    catch_unwind(AssertUnwindSafe(task)).map_err(|payload| TaskPanic {
        message: panic_message(payload.as_ref()),
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn values<T>(results: Vec<TaskResult<T>>) -> Vec<T> {
        results
            .into_iter()
            .map(|r| r.expect("no task panicked"))
            .collect()
    }

    #[test]
    fn reassembles_submission_order_under_adversarial_durations() {
        // Later-submitted tasks finish first: task i sleeps (16 − i) ms, so
        // completion order is the exact reverse of submission order.
        let pool = RunPool::new(4);
        let tasks: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis(16 - i));
                    i
                }
            })
            .collect();
        let results = values(pool.run_batch(tasks));
        assert_eq!(results, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let batch = || (0..64u64).map(|i| move || i * i + 7).collect::<Vec<_>>();
        let serial = values(RunPool::new(1).run_batch(batch()));
        for jobs in [2, 4, 8] {
            let parallel = values(RunPool::new(jobs).run_batch(batch()));
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn panic_surfaces_as_failed_task_not_hung_pool() {
        let pool = RunPool::new(3);
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom in task 1")),
            Box::new(|| 2),
        ];
        let results = pool.run_batch(tasks);
        assert_eq!(results[0], Ok(1));
        assert_eq!(
            results[1],
            Err(TaskPanic {
                message: "boom in task 1".to_string()
            })
        );
        assert_eq!(results[2], Ok(2));
        // The pool survives a panicking batch: the same workers serve the
        // next one.
        assert_eq!(values(pool.run_batch(vec![|| 9u64])), vec![9]);
    }

    #[test]
    fn degenerate_pools_execute_inline() {
        for jobs in [0, 1] {
            let pool = RunPool::new(jobs);
            assert_eq!(pool.jobs(), 1, "jobs={jobs}");
            let caller = std::thread::current().id();
            let results = pool.run_batch(vec![move || std::thread::current().id() == caller]);
            assert_eq!(values(results), vec![true], "jobs={jobs}");
        }
        // And panic containment matches the parallel path.
        let results = RunPool::serial().run_batch(vec![|| -> u64 { panic!("inline boom") }]);
        assert_eq!(results[0].as_ref().unwrap_err().message, "inline boom");
    }

    #[test]
    fn drop_joins_all_workers() {
        static STARTED: AtomicUsize = AtomicUsize::new(0);
        static FINISHED: AtomicUsize = AtomicUsize::new(0);
        let pool = RunPool::new(4);
        let tasks: Vec<_> = (0..8)
            .map(|_| {
                || {
                    STARTED.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    FINISHED.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        let _ = pool.run_batch(tasks);
        drop(pool);
        // After drop returns, no worker is still running a task.
        assert_eq!(STARTED.load(Ordering::SeqCst), 8);
        assert_eq!(FINISHED.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn attached_spans_record_one_stage_per_batch() {
        let spans = opr_obs::shared_span_log();
        let pool = RunPool::new(2).with_spans(Arc::clone(&spans));
        let _ = values(pool.run_batch((0..4u64).map(|i| move || i).collect::<Vec<_>>()));
        let _ = values(pool.run_batch(vec![|| 1u64]));
        let log = spans.lock().unwrap();
        assert_eq!(log.spans().len(), 2);
        assert_eq!(log.spans()[0].label(), "pool stage 0 (4)");
        assert_eq!(log.spans()[1].label(), "pool stage 1 (1)");
    }

    #[test]
    fn attached_metrics_count_tasks_and_waits() {
        let registry = MetricsRegistry::new();
        let pool = RunPool::new(2).with_metrics(&registry);
        let _ = values(pool.run_batch((0..6u64).map(|i| move || i).collect::<Vec<_>>()));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("opr_pool_tasks_total"), 6);
        assert_eq!(snap.histogram("opr_pool_queue_wait_ns").unwrap().count, 6);
        assert_eq!(snap.histogram("opr_pool_task_ns").unwrap().count, 6);
        assert_eq!(snap.histogram("opr_pool_stage_ns").unwrap().count, 1);
        // Serial pools record the same shape.
        let serial = RunPool::serial().with_metrics(&registry);
        let _ = values(serial.run_batch(vec![|| 1u64]));
        assert_eq!(registry.snapshot().counter("opr_pool_tasks_total"), 7);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = RunPool::new(4);
        let results: Vec<TaskResult<u64>> = pool.run_batch(Vec::<fn() -> u64>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn distinct_batches_share_the_fixed_workers() {
        // The pool spawns exactly `jobs` workers once; a batch larger than
        // the worker count still completes, and thread names confirm the
        // work ran on pool workers.
        let pool = RunPool::new(2);
        let tasks: Vec<_> = (0..10)
            .map(|_| {
                || {
                    std::thread::current()
                        .name()
                        .unwrap_or_default()
                        .to_string()
                }
            })
            .collect();
        let names = values(pool.run_batch(tasks));
        assert_eq!(names.len(), 10);
        for name in &names {
            assert!(name.starts_with("opr-exec-"), "{name}");
        }
        let distinct: std::collections::BTreeSet<&String> = names.iter().collect();
        assert!(distinct.len() <= 2);
    }
}
