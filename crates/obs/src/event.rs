//! The deterministic protocol event vocabulary.
//!
//! Every variant carries the communication step it happened in and states a
//! *decision*: which threshold was compared against which count, and which
//! way it went. The stream a correct process emits is a pure function of
//! its delivered messages, so it is bit-identical across execution
//! substrates — the equivalence gates enforce exactly that.

use opr_types::{LinkId, NewName, OriginalId, Rank};

/// Why a received vote vector failed the `isValid` filter (Algorithm 2).
#[derive(Clone, Debug, PartialEq)]
pub enum ValidityViolation {
    /// A locally-timely id is missing from the vector.
    MissingTimelyId {
        /// The timely id the vector does not rank.
        id: OriginalId,
    },
    /// The wire form was malformed (duplicate ids) and never reached the
    /// spacing filter.
    MalformedVector,
    /// Two consecutive timely ids are ranked closer than the spacing δ.
    InsufficientSpacing {
        /// The smaller of the two ids.
        prev: OriginalId,
        /// Its rank in the rejected vector.
        prev_rank: Rank,
        /// The larger of the two ids.
        id: OriginalId,
        /// Its rank in the rejected vector.
        rank: Rank,
        /// The required minimum spacing δ.
        spacing: f64,
    },
}

impl ValidityViolation {
    /// A short stable label for exports (`"missing-timely"`,
    /// `"malformed-vector"`, `"insufficient-spacing"`).
    pub fn kind(&self) -> &'static str {
        match self {
            ValidityViolation::MissingTimelyId { .. } => "missing-timely",
            ValidityViolation::MalformedVector => "malformed-vector",
            ValidityViolation::InsufficientSpacing { .. } => "insufficient-spacing",
        }
    }
}

/// One protocol decision point, recorded by the process that made it.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolEvent {
    /// An original id became visible (flood `Init` in step 1, or a two-step
    /// id announcement in round 1), arriving on `link`.
    IdSeen {
        /// The communication step.
        step: u32,
        /// The link the announcement arrived on.
        link: LinkId,
        /// The announced id.
        id: OriginalId,
    },
    /// Step-2 ECHO count for a candidate id against the `N − t` quorum.
    EchoThreshold {
        /// The communication step.
        step: u32,
        /// The candidate id.
        id: OriginalId,
        /// How many distinct links echoed it.
        echoes: usize,
        /// The `N − t` quorum it was compared against.
        quorum: usize,
        /// Whether the candidate survived (`echoes ≥ quorum`).
        kept: bool,
    },
    /// Step-3 READY count for a candidate id against both thresholds.
    ReadyThreshold {
        /// The communication step.
        step: u32,
        /// The candidate id.
        id: OriginalId,
        /// How many distinct links sent `Ready` for it.
        readies: usize,
        /// The `N − t` quorum for timeliness.
        quorum: usize,
        /// The `N − 2t` weak quorum for relaying.
        weak_quorum: usize,
        /// Whether the id was admitted as timely (`readies ≥ quorum`).
        timely: bool,
        /// Whether this process relays a `Ready` of its own
        /// (`readies ≥ weak_quorum` and no `Ready` sent yet).
        relayed: bool,
    },
    /// Step-4 READY count deciding final acceptance.
    AcceptThreshold {
        /// The communication step.
        step: u32,
        /// The candidate id.
        id: OriginalId,
        /// How many distinct links sent `Ready` for it in total.
        readies: usize,
        /// The `N − t` quorum for acceptance.
        quorum: usize,
        /// Whether the id was accepted (`readies ≥ quorum`).
        accepted: bool,
    },
    /// The vote vector this process broadcast for one AA iteration.
    VoteVectorSent {
        /// The communication step.
        step: u32,
        /// The ids the vector ranks, ascending.
        ids: Vec<OriginalId>,
    },
    /// A received vote vector passed the `isValid` filter.
    VoteAccepted {
        /// The communication step.
        step: u32,
        /// The link the vector arrived on.
        link: LinkId,
        /// How many ids the vector ranks.
        entries: usize,
    },
    /// A received vote vector failed the `isValid` filter.
    VoteRejected {
        /// The communication step.
        step: u32,
        /// The link the vector arrived on.
        link: LinkId,
        /// The first constraint the vector violated.
        violation: ValidityViolation,
    },
    /// An accepted id was dropped from this AA iteration: fewer than
    /// `N − t` valid votes ranked it.
    IdDropped {
        /// The communication step.
        step: u32,
        /// The dropped id.
        id: OriginalId,
        /// How many valid votes ranked it.
        votes: usize,
        /// The `N − t` votes it needed.
        needed: usize,
    },
    /// The trimmed-mean result of one AA iteration for one id
    /// (Algorithm 3: fill to `N`, trim `t` per side, `select_t`, average).
    TrimmedMean {
        /// The communication step.
        step: u32,
        /// The id the votes rank.
        id: OriginalId,
        /// How many valid votes ranked it (before fill-to-`N`).
        votes: usize,
        /// The reduced rank.
        rank: Rank,
    },
    /// A two-step `MultiEcho` was judged against `echo_is_valid`.
    EchoCounted {
        /// The communication step.
        step: u32,
        /// The link the echo arrived on.
        link: LinkId,
        /// How many ids the echo carried.
        ids: usize,
        /// Whether the echo passed validation and was counted.
        valid: bool,
    },
    /// One row of the two-step name table: an accepted id, its raw echo
    /// count, the clamped offset and the resulting name.
    NameOffset {
        /// The communication step.
        step: u32,
        /// The accepted id.
        id: OriginalId,
        /// Raw echo count for the id.
        echoes: usize,
        /// The offset after clamping to the quorum.
        clamped: usize,
        /// The name this row assigns.
        name: NewName,
    },
    /// A phase-king round's outcome at this process.
    KingRound {
        /// The communication step.
        step: u32,
        /// The 1-based phase number.
        phase: u32,
        /// The link the expected king speaks on.
        king: LinkId,
        /// Whether the king's message arrived.
        king_heard: bool,
        /// How many keys adopted the king's bit (unsupported locally).
        adopted: usize,
    },
    /// This process decided its new name.
    Decided {
        /// The communication step.
        step: u32,
        /// The decided name.
        name: NewName,
    },
}

impl ProtocolEvent {
    /// The communication step the event belongs to.
    pub fn step(&self) -> u32 {
        match *self {
            ProtocolEvent::IdSeen { step, .. }
            | ProtocolEvent::EchoThreshold { step, .. }
            | ProtocolEvent::ReadyThreshold { step, .. }
            | ProtocolEvent::AcceptThreshold { step, .. }
            | ProtocolEvent::VoteVectorSent { step, .. }
            | ProtocolEvent::VoteAccepted { step, .. }
            | ProtocolEvent::VoteRejected { step, .. }
            | ProtocolEvent::IdDropped { step, .. }
            | ProtocolEvent::TrimmedMean { step, .. }
            | ProtocolEvent::EchoCounted { step, .. }
            | ProtocolEvent::NameOffset { step, .. }
            | ProtocolEvent::KingRound { step, .. }
            | ProtocolEvent::Decided { step, .. } => step,
        }
    }

    /// A short stable kind label for exports and waterfalls.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolEvent::IdSeen { .. } => "id-seen",
            ProtocolEvent::EchoThreshold { .. } => "echo-threshold",
            ProtocolEvent::ReadyThreshold { .. } => "ready-threshold",
            ProtocolEvent::AcceptThreshold { .. } => "accept-threshold",
            ProtocolEvent::VoteVectorSent { .. } => "vote-vector",
            ProtocolEvent::VoteAccepted { .. } => "vote-accepted",
            ProtocolEvent::VoteRejected { .. } => "vote-rejected",
            ProtocolEvent::IdDropped { .. } => "id-dropped",
            ProtocolEvent::TrimmedMean { .. } => "trimmed-mean",
            ProtocolEvent::EchoCounted { .. } => "echo-counted",
            ProtocolEvent::NameOffset { .. } => "name-offset",
            ProtocolEvent::KingRound { .. } => "king-round",
            ProtocolEvent::Decided { .. } => "decided",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_and_kind_cover_every_variant() {
        let events = [
            ProtocolEvent::IdSeen {
                step: 1,
                link: LinkId::new(2),
                id: OriginalId::new(7),
            },
            ProtocolEvent::Decided {
                step: 8,
                name: NewName::new(3),
            },
        ];
        assert_eq!(events[0].step(), 1);
        assert_eq!(events[0].kind(), "id-seen");
        assert_eq!(events[1].step(), 8);
        assert_eq!(events[1].kind(), "decided");
    }

    #[test]
    fn violation_kinds_are_stable() {
        let v = ValidityViolation::MissingTimelyId {
            id: OriginalId::new(1),
        };
        assert_eq!(v.kind(), "missing-timely");
    }
}
