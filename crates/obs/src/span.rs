//! Wall-clock spans for substrate- and pool-level timing.
//!
//! Spans are the *non-deterministic* half of the telemetry: real durations
//! of rounds and pool tasks. They are kept strictly apart from the protocol
//! event stream — never merged into it, never equality-gated, and excluded
//! from golden renderings — because wall timings differ across backends,
//! machines and runs by nature.
//!
//! Span names are `&'static str` plus up to two numeric qualifiers, so
//! recording a span never allocates (beyond amortised `Vec` growth, which
//! [`SpanLog::with_capacity`] removes entirely — the `obs` bench group gates
//! this at zero allocations per record).

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One named wall-clock interval, relative to its log's epoch.
///
/// The human-readable form is produced on demand by [`Span::label`]; the
/// stored representation is allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// What the interval covers, e.g. `"round"` or `"pool stage"`.
    pub name: &'static str,
    /// Primary qualifier (round number, stage index, epoch...), if any.
    pub index: Option<u64>,
    /// Secondary qualifier (task count, shard index...), if any.
    pub detail: Option<u64>,
    /// Microseconds from the owning [`SpanLog`]'s epoch to the start.
    pub start_micros: u64,
    /// Length of the interval in microseconds.
    pub duration_micros: u64,
}

impl Span {
    /// Render the span's name with its qualifiers, e.g. `"round 3"` or
    /// `"pool stage 0 (4)"`. Allocates; exporters call this, hot paths don't.
    pub fn label(&self) -> String {
        match (self.index, self.detail) {
            (None, None) => self.name.to_string(),
            (Some(i), None) => format!("{} {}", self.name, i),
            (Some(i), Some(d)) => format!("{} {} ({})", self.name, i, d),
            (None, Some(d)) => format!("{} ({})", self.name, d),
        }
    }
}

/// A collection of wall-clock spans sharing one epoch.
#[derive(Clone, Debug)]
pub struct SpanLog {
    epoch: Instant,
    spans: Vec<Span>,
}

impl SpanLog {
    /// A fresh log whose epoch is now.
    pub fn new() -> Self {
        SpanLog {
            epoch: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// A fresh log with room for `capacity` spans before any reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        SpanLog {
            epoch: Instant::now(),
            spans: Vec::with_capacity(capacity),
        }
    }

    /// The log's epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Records an interval from `start` to now under a bare static name.
    #[inline]
    pub fn record_since(&mut self, name: &'static str, start: Instant) {
        self.push(name, None, None, start);
    }

    /// Records an interval with one numeric qualifier (`"round 3"`).
    #[inline]
    pub fn record_indexed(&mut self, name: &'static str, index: u64, start: Instant) {
        self.push(name, Some(index), None, start);
    }

    /// Records an interval with two numeric qualifiers
    /// (`"pool stage 0 (4)"`, `"epoch protocol 2 (1)"`).
    #[inline]
    pub fn record_detailed(&mut self, name: &'static str, index: u64, detail: u64, start: Instant) {
        self.push(name, Some(index), Some(detail), start);
    }

    fn push(
        &mut self,
        name: &'static str,
        index: Option<u64>,
        detail: Option<u64>,
        start: Instant,
    ) {
        let start_micros = start.saturating_duration_since(self.epoch).as_micros() as u64;
        let duration_micros = start.elapsed().as_micros() as u64;
        self.spans.push(Span {
            name,
            index,
            detail,
            start_micros,
            duration_micros,
        });
    }

    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consumes the log, yielding its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::new()
    }
}

/// A shareable span log: the substrate and the pool write from worker
/// threads, the caller reads after the run.
pub type SharedSpanLog = Arc<Mutex<SpanLog>>;

/// Creates a fresh [`SharedSpanLog`] with epoch now.
pub fn shared_span_log() -> SharedSpanLog {
    Arc::new(Mutex::new(SpanLog::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_since_measures_forward_time() {
        let mut log = SpanLog::new();
        let start = Instant::now();
        log.record_indexed("round", 1, start);
        assert_eq!(log.spans().len(), 1);
        let span = &log.spans()[0];
        assert_eq!(span.label(), "round 1");
        // Start may be 0 µs on a fast machine; duration is non-negative by
        // construction. Just check the span is self-consistent.
        assert!(span.start_micros < 1_000_000);
    }

    #[test]
    fn labels_render_qualifiers() {
        let mk = |index, detail| Span {
            name: "pool stage",
            index,
            detail,
            start_micros: 0,
            duration_micros: 0,
        };
        assert_eq!(mk(None, None).label(), "pool stage");
        assert_eq!(mk(Some(2), None).label(), "pool stage 2");
        assert_eq!(mk(Some(2), Some(8)).label(), "pool stage 2 (8)");
        assert_eq!(mk(None, Some(8)).label(), "pool stage (8)");
    }

    #[test]
    fn shared_log_collects_across_clones() {
        let shared = shared_span_log();
        let writer = Arc::clone(&shared);
        let start = Instant::now();
        writer.lock().unwrap().record_since("task", start);
        drop(writer);
        assert_eq!(shared.lock().unwrap().spans().len(), 1);
        let spans = Arc::try_unwrap(shared)
            .map(|m| m.into_inner().unwrap().into_spans())
            .unwrap_or_default();
        assert!(!spans.is_empty());
    }

    #[test]
    fn with_capacity_records_without_growth() {
        let mut log = SpanLog::with_capacity(16);
        let start = Instant::now();
        for i in 0..16 {
            log.record_indexed("round", i, start);
        }
        assert_eq!(log.spans().len(), 16);
    }
}
