//! Wall-clock spans for substrate- and pool-level timing.
//!
//! Spans are the *non-deterministic* half of the telemetry: real durations
//! of rounds and pool tasks. They are kept strictly apart from the protocol
//! event stream — never merged into it, never equality-gated, and excluded
//! from golden renderings — because wall timings differ across backends,
//! machines and runs by nature.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One named wall-clock interval, relative to its log's epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// What the interval covers, e.g. `"round 3"` or `"pool task 17"`.
    pub name: String,
    /// Microseconds from the owning [`SpanLog`]'s epoch to the start.
    pub start_micros: u64,
    /// Length of the interval in microseconds.
    pub duration_micros: u64,
}

/// A collection of wall-clock spans sharing one epoch.
#[derive(Clone, Debug)]
pub struct SpanLog {
    epoch: Instant,
    spans: Vec<Span>,
}

impl SpanLog {
    /// A fresh log whose epoch is now.
    pub fn new() -> Self {
        SpanLog {
            epoch: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// The log's epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Records an interval from `start` to now under `name`.
    pub fn record_since(&mut self, name: impl Into<String>, start: Instant) {
        let start_micros = start.saturating_duration_since(self.epoch).as_micros() as u64;
        let duration_micros = start.elapsed().as_micros() as u64;
        self.spans.push(Span {
            name: name.into(),
            start_micros,
            duration_micros,
        });
    }

    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consumes the log, yielding its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::new()
    }
}

/// A shareable span log: the substrate and the pool write from worker
/// threads, the caller reads after the run.
pub type SharedSpanLog = Arc<Mutex<SpanLog>>;

/// Creates a fresh [`SharedSpanLog`] with epoch now.
pub fn shared_span_log() -> SharedSpanLog {
    Arc::new(Mutex::new(SpanLog::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_since_measures_forward_time() {
        let mut log = SpanLog::new();
        let start = Instant::now();
        log.record_since("round 1", start);
        assert_eq!(log.spans().len(), 1);
        let span = &log.spans()[0];
        assert_eq!(span.name, "round 1");
        // Start may be 0 µs on a fast machine; duration is non-negative by
        // construction. Just check the span is self-consistent.
        assert!(span.start_micros < 1_000_000);
    }

    #[test]
    fn shared_log_collects_across_clones() {
        let shared = shared_span_log();
        let writer = Arc::clone(&shared);
        let start = Instant::now();
        writer.lock().unwrap().record_since("task 0", start);
        drop(writer);
        assert_eq!(shared.lock().unwrap().spans().len(), 1);
        let spans = Arc::try_unwrap(shared)
            .map(|m| m.into_inner().unwrap().into_spans())
            .unwrap_or_default();
        assert!(!spans.is_empty());
    }
}
