//! Recorder sinks for [`ProtocolEvent`]s.
//!
//! The default recorder is a zero-sized no-op: actors hold an
//! `Option<SharedRecorder>` that is `None` unless the run explicitly asks
//! for telemetry, and every emission site goes through [`record_if`], whose
//! event-constructing closure is *never invoked* when no recorder is
//! attached. Disabled runs therefore pay one branch per decision point and
//! zero allocations — the fanout bench's counting allocator pins this.

use std::sync::{Arc, Mutex};

use crate::event::ProtocolEvent;

/// A sink for protocol decision events.
pub trait Recorder {
    /// Whether this recorder keeps events at all. Callers may skip
    /// constructing expensive events when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&mut self, event: ProtocolEvent);
}

/// The zero-cost default: discards everything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: ProtocolEvent) {}
}

/// An in-memory recorder that keeps every event in emission order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemoryRecorder {
    events: Vec<ProtocolEvent>,
}

impl MemoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[ProtocolEvent] {
        &self.events
    }

    /// Consumes the recorder, yielding its events.
    pub fn into_events(self) -> Vec<ProtocolEvent> {
        self.events
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, event: ProtocolEvent) {
        self.events.push(event);
    }
}

/// A shareable recorder handle: one per process, cloned into the actor and
/// kept by the runner for post-run collection. `Mutex` (not `RefCell`)
/// because the threaded backend moves actors onto process threads.
pub type SharedRecorder = Arc<Mutex<MemoryRecorder>>;

/// Creates a fresh [`SharedRecorder`].
pub fn shared_recorder() -> SharedRecorder {
    Arc::new(Mutex::new(MemoryRecorder::new()))
}

/// Records the event produced by `make` iff a recorder is attached.
///
/// The closure is not invoked when `recorder` is `None`, so disabled runs
/// never construct events (and never allocate for their payloads).
#[inline]
pub fn record_if(recorder: Option<&SharedRecorder>, make: impl FnOnce() -> ProtocolEvent) {
    if let Some(shared) = recorder {
        let event = make();
        shared.lock().unwrap().record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_types::NewName;

    fn decided(step: u32) -> ProtocolEvent {
        ProtocolEvent::Decided {
            step,
            name: NewName::new(1),
        }
    }

    #[test]
    fn memory_recorder_keeps_emission_order() {
        let mut rec = MemoryRecorder::new();
        rec.record(decided(1));
        rec.record(decided(2));
        assert!(rec.enabled());
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.events()[0].step(), 1);
        assert_eq!(rec.into_events()[1].step(), 2);
    }

    #[test]
    fn noop_recorder_reports_disabled() {
        let mut noop = NoopRecorder;
        assert!(!noop.enabled());
        noop.record(decided(1));
    }

    #[test]
    fn record_if_never_constructs_when_detached() {
        // The closure must not run: panicking proves zero event construction
        // (and hence zero allocation) on the disabled path.
        record_if(None, || panic!("constructed an event with no recorder"));
    }

    #[test]
    fn record_if_appends_when_attached() {
        let shared = shared_recorder();
        record_if(Some(&shared), || decided(3));
        assert_eq!(shared.lock().unwrap().events().len(), 1);
    }
}
