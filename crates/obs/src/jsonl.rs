//! JSONL exporter: one compact JSON object per merged protocol event.
//!
//! Output is a pure function of the [`RunLog`], so two logs that compare
//! equal render byte-identical JSONL — the cross-backend and cross-jobs
//! equivalence gates compare these bytes directly. Rank values are rendered
//! as fixed-precision *strings* (never raw float literals) so that the
//! output stays parseable by strict integer-only JSON readers.

use std::fmt::Write as _;

use opr_types::Rank;

use crate::event::{ProtocolEvent, ValidityViolation};
use crate::log::RunLog;

/// Renders a rank for export: fixed 9-decimal string, quoted.
pub fn rank_field(rank: Rank) -> String {
    format!("\"{:.9}\"", rank.value())
}

fn push_violation(out: &mut String, violation: &ValidityViolation) {
    match violation {
        ValidityViolation::MissingTimelyId { id } => {
            let _ = write!(out, "{{\"kind\":\"missing-timely\",\"id\":{}}}", id.raw());
        }
        ValidityViolation::MalformedVector => {
            out.push_str("{\"kind\":\"malformed-vector\"}");
        }
        ValidityViolation::InsufficientSpacing {
            prev,
            prev_rank,
            id,
            rank,
            spacing,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"insufficient-spacing\",\"prev\":{},\"prev_rank\":{},\"id\":{},\"rank\":{},\"spacing\":\"{:.9}\"}}",
                prev.raw(),
                rank_field(*prev_rank),
                id.raw(),
                rank_field(*rank),
                spacing
            );
        }
    }
}

fn push_event_fields(out: &mut String, event: &ProtocolEvent) {
    match event {
        ProtocolEvent::IdSeen { link, id, .. } => {
            let _ = write!(out, ",\"link\":{},\"id\":{}", link.label(), id.raw());
        }
        ProtocolEvent::EchoThreshold {
            id,
            echoes,
            quorum,
            kept,
            ..
        } => {
            let _ = write!(
                out,
                ",\"id\":{},\"echoes\":{echoes},\"quorum\":{quorum},\"kept\":{kept}",
                id.raw()
            );
        }
        ProtocolEvent::ReadyThreshold {
            id,
            readies,
            quorum,
            weak_quorum,
            timely,
            relayed,
            ..
        } => {
            let _ = write!(
                out,
                ",\"id\":{},\"readies\":{readies},\"quorum\":{quorum},\"weak_quorum\":{weak_quorum},\"timely\":{timely},\"relayed\":{relayed}",
                id.raw()
            );
        }
        ProtocolEvent::AcceptThreshold {
            id,
            readies,
            quorum,
            accepted,
            ..
        } => {
            let _ = write!(
                out,
                ",\"id\":{},\"readies\":{readies},\"quorum\":{quorum},\"accepted\":{accepted}",
                id.raw()
            );
        }
        ProtocolEvent::VoteVectorSent { ids, .. } => {
            out.push_str(",\"ids\":[");
            for (i, id) in ids.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", id.raw());
            }
            out.push(']');
        }
        ProtocolEvent::VoteAccepted { link, entries, .. } => {
            let _ = write!(out, ",\"link\":{},\"entries\":{entries}", link.label());
        }
        ProtocolEvent::VoteRejected {
            link, violation, ..
        } => {
            let _ = write!(out, ",\"link\":{},\"violation\":", link.label());
            push_violation(out, violation);
        }
        ProtocolEvent::IdDropped {
            id, votes, needed, ..
        } => {
            let _ = write!(
                out,
                ",\"id\":{},\"votes\":{votes},\"needed\":{needed}",
                id.raw()
            );
        }
        ProtocolEvent::TrimmedMean {
            id, votes, rank, ..
        } => {
            let _ = write!(
                out,
                ",\"id\":{},\"votes\":{votes},\"rank\":{}",
                id.raw(),
                rank_field(*rank)
            );
        }
        ProtocolEvent::EchoCounted {
            link, ids, valid, ..
        } => {
            let _ = write!(
                out,
                ",\"link\":{},\"ids\":{ids},\"valid\":{valid}",
                link.label()
            );
        }
        ProtocolEvent::NameOffset {
            id,
            echoes,
            clamped,
            name,
            ..
        } => {
            let _ = write!(
                out,
                ",\"id\":{},\"echoes\":{echoes},\"clamped\":{clamped},\"name\":{}",
                id.raw(),
                name.raw()
            );
        }
        ProtocolEvent::KingRound {
            phase,
            king,
            king_heard,
            adopted,
            ..
        } => {
            let _ = write!(
                out,
                ",\"phase\":{phase},\"king\":{},\"king_heard\":{king_heard},\"adopted\":{adopted}",
                king.label()
            );
        }
        ProtocolEvent::Decided { name, .. } => {
            let _ = write!(out, ",\"name\":{}", name.raw());
        }
    }
}

/// Renders the merged event stream as JSONL: one object per line, ordered
/// by (step, process, seq), trailing newline after every line.
pub fn render_jsonl(log: &RunLog) -> String {
    let mut out = String::new();
    for m in log.merged() {
        let _ = write!(
            out,
            "{{\"step\":{},\"process\":{},\"pid\":{},\"seq\":{},\"kind\":\"{}\"",
            m.event.step(),
            m.process,
            m.id.raw(),
            m.seq,
            m.event.kind()
        );
        push_event_fields(&mut out, &m.event);
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ProcessLog;
    use opr_types::{LinkId, NewName, OriginalId};

    #[test]
    fn renders_one_object_per_line_with_stable_order() {
        let log = RunLog {
            processes: vec![ProcessLog {
                id: OriginalId::new(5),
                events: vec![
                    ProtocolEvent::IdSeen {
                        step: 1,
                        link: LinkId::new(2),
                        id: OriginalId::new(9),
                    },
                    ProtocolEvent::Decided {
                        step: 4,
                        name: NewName::new(2),
                    },
                ],
            }],
        };
        let rendered = render_jsonl(&log);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"step\":1,\"process\":0,\"pid\":5,\"seq\":0,\"kind\":\"id-seen\",\"link\":2,\"id\":9}"
        );
        assert!(lines[1].contains("\"kind\":\"decided\",\"name\":2"));
        assert!(rendered.ends_with('\n'));
    }

    #[test]
    fn ranks_render_as_fixed_precision_strings() {
        let field = rank_field(opr_types::Rank::new(1.5));
        assert_eq!(field, "\"1.500000000\"");
    }
}
