//! Deterministic protocol telemetry for the renaming protocols.
//!
//! Two strictly separated layers:
//!
//! 1. **Protocol events** ([`ProtocolEvent`], [`Recorder`], [`RunLog`]) — a
//!    per-process stream of decision points (threshold crossings, vote
//!    validation, trimmed means, king adoptions, name assignments). The
//!    stream is a pure function of the messages a process receives, so for
//!    a fixed schedule it is bit-identical across the Sim and Threaded
//!    backends and across `--jobs` counts; `tests/backend_equivalence.rs`
//!    and `tests/exec_equivalence.rs` gate exactly that.
//! 2. **Wall-clock spans** ([`Span`], [`SpanLog`]) — real per-round and
//!    per-pool-task timings. Never merged into the deterministic stream,
//!    never equality-gated.
//!
//! Exporters: [`render_jsonl`] (one JSON object per event, machine-diffable)
//! and [`render_trace_json`] (Chrome trace-event JSON, loadable in Perfetto
//! or `chrome://tracing`).
//!
//! Recording is opt-in and zero-cost when off: emission sites use
//! [`record_if`] with an event-building closure that is never invoked
//! without an attached recorder.

#![warn(missing_docs)]

mod event;
mod jsonl;
mod log;
mod perfetto;
mod recorder;
mod span;

pub use event::{ProtocolEvent, ValidityViolation};
pub use jsonl::{rank_field, render_jsonl};
pub use log::{MergedEvent, ProcessLog, RunLog};
pub use perfetto::render_trace_json;
pub use recorder::{
    record_if, shared_recorder, MemoryRecorder, NoopRecorder, Recorder, SharedRecorder,
};
pub use span::{shared_span_log, SharedSpanLog, Span, SpanLog};
