//! Per-run event logs: one ordered event list per correct process, plus a
//! deterministic merged view for exporters.

use opr_types::OriginalId;

use crate::event::ProtocolEvent;

/// The events one correct process emitted, in emission order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProcessLog {
    /// The process's original id.
    pub id: OriginalId,
    /// Its events, in emission order.
    pub events: Vec<ProtocolEvent>,
}

/// One event of the merged run view, tagged with its owner.
#[derive(Clone, Debug, PartialEq)]
pub struct MergedEvent {
    /// Zero-based position of the owning process in the run's correct-actor
    /// order (a stable presentation index, not a protocol identity).
    pub process: usize,
    /// The owning process's original id.
    pub id: OriginalId,
    /// Position of the event within its process's own log.
    pub seq: usize,
    /// The event itself.
    pub event: ProtocolEvent,
}

/// The deterministic protocol event stream of one run.
///
/// Process order follows the run's correct-actor order, which both backends
/// share; every field is a pure function of delivered messages, so two
/// `RunLog`s from the same schedule compare bit-identical across substrates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunLog {
    /// One log per correct process, in correct-actor order.
    pub processes: Vec<ProcessLog>,
}

impl RunLog {
    /// Total number of events across all processes.
    pub fn len(&self) -> usize {
        self.processes.iter().map(|p| p.events.len()).sum()
    }

    /// Whether no process emitted any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A merged, deterministically-ordered view: by step, then process
    /// position, then per-process emission order.
    pub fn merged(&self) -> Vec<MergedEvent> {
        let mut merged: Vec<MergedEvent> = Vec::with_capacity(self.len());
        for (process, log) in self.processes.iter().enumerate() {
            for (seq, event) in log.events.iter().enumerate() {
                merged.push(MergedEvent {
                    process,
                    id: log.id,
                    seq,
                    event: event.clone(),
                });
            }
        }
        merged.sort_by_key(|m| (m.event.step(), m.process, m.seq));
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_types::NewName;

    fn decided(step: u32) -> ProtocolEvent {
        ProtocolEvent::Decided {
            step,
            name: NewName::new(1),
        }
    }

    #[test]
    fn merged_orders_by_step_then_process_then_seq() {
        let log = RunLog {
            processes: vec![
                ProcessLog {
                    id: OriginalId::new(10),
                    events: vec![decided(2), decided(3)],
                },
                ProcessLog {
                    id: OriginalId::new(20),
                    events: vec![decided(1), decided(2)],
                },
            ],
        };
        assert_eq!(log.len(), 4);
        let merged = log.merged();
        let order: Vec<(u32, usize, usize)> = merged
            .iter()
            .map(|m| (m.event.step(), m.process, m.seq))
            .collect();
        assert_eq!(order, vec![(1, 1, 0), (2, 0, 0), (2, 1, 1), (3, 0, 1)]);
        assert_eq!(merged[0].id, OriginalId::new(20));
    }

    #[test]
    fn empty_log_is_empty() {
        assert!(RunLog::default().is_empty());
    }
}
