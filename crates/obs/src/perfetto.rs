//! Chrome trace-event exporter, loadable in Perfetto and `chrome://tracing`.
//!
//! Output is a JSON object `{"traceEvents": [...]}` in the trace-event
//! format. Protocol events become instant events (`"ph":"i"`, thread scope)
//! on pid 1 with one tid per process, at a *synthetic* deterministic
//! timestamp `step·1000 + seq` — lock-step protocols have no meaningful
//! intra-round wall time, and synthetic timestamps keep the export a pure
//! function of the [`RunLog`]. Wall-clock [`Span`]s, when provided, become
//! complete events (`"ph":"X"`) on pid 2 with real microsecond timings; the
//! two pids keep the deterministic and wall-clock layers visually separate.

use std::fmt::Write as _;

use crate::event::{ProtocolEvent, ValidityViolation};
use crate::jsonl::rank_field;
use crate::log::RunLog;
use crate::span::Span;

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn event_args(event: &ProtocolEvent) -> String {
    let mut args = String::from("{");
    let mut sep = "";
    let field = |args: &mut String, sep: &mut &str, name: &str, value: String| {
        let _ = write!(args, "{}\"{}\":{}", sep, name, value);
        *sep = ",";
    };
    match event {
        ProtocolEvent::IdSeen { link, id, .. } => {
            field(&mut args, &mut sep, "link", link.label().to_string());
            field(&mut args, &mut sep, "id", id.raw().to_string());
        }
        ProtocolEvent::EchoThreshold {
            id,
            echoes,
            quorum,
            kept,
            ..
        } => {
            field(&mut args, &mut sep, "id", id.raw().to_string());
            field(&mut args, &mut sep, "echoes", echoes.to_string());
            field(&mut args, &mut sep, "quorum", quorum.to_string());
            field(&mut args, &mut sep, "kept", kept.to_string());
        }
        ProtocolEvent::ReadyThreshold {
            id,
            readies,
            quorum,
            weak_quorum,
            timely,
            relayed,
            ..
        } => {
            field(&mut args, &mut sep, "id", id.raw().to_string());
            field(&mut args, &mut sep, "readies", readies.to_string());
            field(&mut args, &mut sep, "quorum", quorum.to_string());
            field(&mut args, &mut sep, "weak_quorum", weak_quorum.to_string());
            field(&mut args, &mut sep, "timely", timely.to_string());
            field(&mut args, &mut sep, "relayed", relayed.to_string());
        }
        ProtocolEvent::AcceptThreshold {
            id,
            readies,
            quorum,
            accepted,
            ..
        } => {
            field(&mut args, &mut sep, "id", id.raw().to_string());
            field(&mut args, &mut sep, "readies", readies.to_string());
            field(&mut args, &mut sep, "quorum", quorum.to_string());
            field(&mut args, &mut sep, "accepted", accepted.to_string());
        }
        ProtocolEvent::VoteVectorSent { ids, .. } => {
            let list = ids
                .iter()
                .map(|id| id.raw().to_string())
                .collect::<Vec<_>>()
                .join(",");
            field(&mut args, &mut sep, "ids", format!("[{list}]"));
        }
        ProtocolEvent::VoteAccepted { link, entries, .. } => {
            field(&mut args, &mut sep, "link", link.label().to_string());
            field(&mut args, &mut sep, "entries", entries.to_string());
        }
        ProtocolEvent::VoteRejected {
            link, violation, ..
        } => {
            field(&mut args, &mut sep, "link", link.label().to_string());
            field(
                &mut args,
                &mut sep,
                "violation",
                format!("\"{}\"", violation.kind()),
            );
            if let ValidityViolation::InsufficientSpacing {
                prev,
                prev_rank,
                id,
                rank,
                spacing,
            } = violation
            {
                field(&mut args, &mut sep, "prev", prev.raw().to_string());
                field(&mut args, &mut sep, "prev_rank", rank_field(*prev_rank));
                field(&mut args, &mut sep, "id", id.raw().to_string());
                field(&mut args, &mut sep, "rank", rank_field(*rank));
                field(&mut args, &mut sep, "spacing", format!("\"{spacing:.9}\""));
            } else if let ValidityViolation::MissingTimelyId { id } = violation {
                field(&mut args, &mut sep, "id", id.raw().to_string());
            }
        }
        ProtocolEvent::IdDropped {
            id, votes, needed, ..
        } => {
            field(&mut args, &mut sep, "id", id.raw().to_string());
            field(&mut args, &mut sep, "votes", votes.to_string());
            field(&mut args, &mut sep, "needed", needed.to_string());
        }
        ProtocolEvent::TrimmedMean {
            id, votes, rank, ..
        } => {
            field(&mut args, &mut sep, "id", id.raw().to_string());
            field(&mut args, &mut sep, "votes", votes.to_string());
            field(&mut args, &mut sep, "rank", rank_field(*rank));
        }
        ProtocolEvent::EchoCounted {
            link, ids, valid, ..
        } => {
            field(&mut args, &mut sep, "link", link.label().to_string());
            field(&mut args, &mut sep, "ids", ids.to_string());
            field(&mut args, &mut sep, "valid", valid.to_string());
        }
        ProtocolEvent::NameOffset {
            id,
            echoes,
            clamped,
            name,
            ..
        } => {
            field(&mut args, &mut sep, "id", id.raw().to_string());
            field(&mut args, &mut sep, "echoes", echoes.to_string());
            field(&mut args, &mut sep, "clamped", clamped.to_string());
            field(&mut args, &mut sep, "name", name.raw().to_string());
        }
        ProtocolEvent::KingRound {
            phase,
            king,
            king_heard,
            adopted,
            ..
        } => {
            field(&mut args, &mut sep, "phase", phase.to_string());
            field(&mut args, &mut sep, "king", king.label().to_string());
            field(&mut args, &mut sep, "king_heard", king_heard.to_string());
            field(&mut args, &mut sep, "adopted", adopted.to_string());
        }
        ProtocolEvent::Decided { name, .. } => {
            field(&mut args, &mut sep, "name", name.raw().to_string());
        }
    }
    args.push('}');
    args
}

/// Renders a run log (and optionally wall-clock spans) as Chrome
/// trace-event JSON.
pub fn render_trace_json(log: &RunLog, spans: Option<&[Span]>) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut sep = "";
    // Thread-name metadata so Perfetto labels each lane by process id.
    for (process, plog) in log.processes.iter().enumerate() {
        let _ = write!(
            out,
            "{sep}{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"process id:{}\"}}}}",
            process + 1,
            plog.id.raw()
        );
        sep = ",";
    }
    for m in log.merged() {
        let ts = u64::from(m.event.step()) * 1000 + m.seq as u64;
        let _ = write!(
            out,
            "{sep}{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"name\":\"{}\",\"cat\":\"protocol\",\"args\":{}}}",
            m.process + 1,
            escape(m.event.kind()),
            event_args(&m.event)
        );
        sep = ",";
    }
    if let Some(spans) = spans {
        for span in spans {
            let _ = write!(
                out,
                "{sep}{{\"ph\":\"X\",\"pid\":2,\"tid\":1,\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"wall\",\"args\":{{}}}}",
                span.start_micros,
                span.duration_micros,
                escape(&span.label())
            );
            sep = ",";
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ProcessLog;
    use opr_types::{LinkId, NewName, OriginalId};

    #[test]
    fn trace_json_has_metadata_instants_and_spans() {
        let log = RunLog {
            processes: vec![ProcessLog {
                id: OriginalId::new(7),
                events: vec![
                    ProtocolEvent::IdSeen {
                        step: 1,
                        link: LinkId::new(1),
                        id: OriginalId::new(7),
                    },
                    ProtocolEvent::Decided {
                        step: 4,
                        name: NewName::new(1),
                    },
                ],
            }],
        };
        let spans = vec![Span {
            name: "round",
            index: Some(1),
            detail: None,
            start_micros: 10,
            duration_micros: 250,
        }];
        let rendered = render_trace_json(&log, Some(&spans));
        assert!(rendered.starts_with("{\"traceEvents\":["));
        assert!(rendered.ends_with("]}"));
        assert!(rendered.contains("\"thread_name\""));
        assert!(rendered.contains("\"ph\":\"i\""));
        assert!(rendered.contains("\"ts\":1000"));
        assert!(rendered.contains("\"ph\":\"X\""));
        assert!(rendered.contains("\"dur\":250"));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
