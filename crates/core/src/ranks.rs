//! Rank vectors, the `isValid` filter (Algorithm 2) and the per-step
//! approximation (Algorithm 3).

use opr_aa::{reduce, OrderedMultiset};
use opr_obs::ValidityViolation;
use opr_types::{OriginalId, Rank};
use std::collections::{BTreeMap, BTreeSet};

/// A process's current rank for every id it tracks — the paper's `ranks`
/// sparse array. Iteration is always in ascending id order.
///
/// # Example
///
/// ```
/// use opr_core::RankVector;
/// use opr_types::OriginalId;
/// use std::collections::BTreeSet;
///
/// let accepted: BTreeSet<OriginalId> =
///     [5u64, 9, 2].iter().map(|&x| OriginalId::new(x)).collect();
/// let delta = 1.01;
/// let ranks = RankVector::from_accepted(&accepted, delta);
/// // Ranks are the 1-based positions in id order, stretched by δ.
/// assert_eq!(ranks.get(OriginalId::new(2)).unwrap().value(), delta);
/// assert_eq!(ranks.get(OriginalId::new(9)).unwrap().value(), 3.0 * delta);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RankVector {
    entries: BTreeMap<OriginalId, Rank>,
}

impl RankVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Initial ranks after id selection (Algorithm 1, lines 26–28): the
    /// 1-based position of each accepted id, stretched by `delta`.
    pub fn from_accepted(accepted: &BTreeSet<OriginalId>, delta: f64) -> Self {
        let entries = accepted
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, Rank::from_position(i + 1, delta)))
            .collect();
        RankVector { entries }
    }

    /// The rank of `id`, if tracked.
    pub fn get(&self, id: OriginalId) -> Option<Rank> {
        self.entries.get(&id).copied()
    }

    /// Sets the rank of `id`.
    pub fn insert(&mut self, id: OriginalId, rank: Rank) {
        self.entries.insert(id, rank);
    }

    /// Whether `id` is tracked.
    pub fn contains(&self, id: OriginalId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Number of tracked ids.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no ids are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(id, rank)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (OriginalId, Rank)> + '_ {
        self.entries.iter().map(|(&id, &r)| (id, r))
    }

    /// Serializes for the wire (ascending id order).
    pub fn to_wire(&self) -> Vec<(OriginalId, Rank)> {
        self.iter().collect()
    }

    /// Parses a received vote vector. Returns `None` if the sender supplied
    /// duplicate ids — such a message is malformed and treated as invalid.
    pub fn from_wire(entries: &[(OriginalId, Rank)]) -> Option<Self> {
        let mut map = BTreeMap::new();
        for &(id, rank) in entries {
            if map.insert(id, rank).is_some() {
                return None;
            }
        }
        Some(RankVector { entries: map })
    }

    /// The `isValid` check (Algorithm 2): this vector is an acceptable vote
    /// with respect to the receiver's `timely` set iff it ranks **every**
    /// timely id and consecutive timely ids are spaced by at least
    /// `spacing` (= δ) in id order.
    ///
    /// Consecutive spacing implies the paper's all-pairs condition by
    /// transitivity. Rank comparisons use [`Rank::EPS`] tolerance so
    /// correct votes are never rejected over floating-point dust
    /// (Lemma IV.4 must hold in the implementation, not only on paper).
    pub fn is_valid(&self, timely: &BTreeSet<OriginalId>, spacing: f64) -> bool {
        self.check_valid(timely, spacing).is_ok()
    }

    /// [`is_valid`](RankVector::is_valid), reporting *which* constraint a
    /// rejected vector violated (the first one encountered in id order) —
    /// the telemetry layer attaches this to `vote-rejected` events.
    pub fn check_valid(
        &self,
        timely: &BTreeSet<OriginalId>,
        spacing: f64,
    ) -> Result<(), ValidityViolation> {
        let mut prev: Option<(OriginalId, Rank)> = None;
        for &id in timely {
            let Some(rank) = self.get(id) else {
                return Err(ValidityViolation::MissingTimelyId { id });
            };
            if let Some((prev_id, prev_rank)) = prev {
                if !prev_rank.spaced_at_least(rank, spacing) {
                    return Err(ValidityViolation::InsufficientSpacing {
                        prev: prev_id,
                        prev_rank,
                        id,
                        rank,
                        spacing,
                    });
                }
            }
            prev = Some((id, rank));
        }
        Ok(())
    }

    /// The largest rank tracked, if any.
    pub fn max_rank(&self) -> Option<Rank> {
        self.entries.values().max().copied()
    }
}

impl FromIterator<(OriginalId, Rank)> for RankVector {
    fn from_iter<I: IntoIterator<Item = (OriginalId, Rank)>>(iter: I) -> Self {
        RankVector {
            entries: iter.into_iter().collect(),
        }
    }
}

/// One voting step (Algorithm 3, `approximate`): for each accepted id,
/// gather the validated votes, drop ids with fewer than `N − t` votes, pad
/// each multiset to `N` votes with our own rank, trim `t` per side, select
/// and average.
///
/// Returns the new rank vector together with the surviving accepted set.
///
/// # Panics
///
/// Panics if `my_ranks` is missing an accepted id that survives the vote
/// threshold — an internal-invariant breach (correct processes always rank
/// their whole accepted set).
pub fn approximate(
    my_ranks: &RankVector,
    accepted: &BTreeSet<OriginalId>,
    valid_votes: &[RankVector],
    n: usize,
    t: usize,
) -> (RankVector, BTreeSet<OriginalId>) {
    approximate_observed(my_ranks, accepted, valid_votes, n, t, |_, _, _| {})
}

/// [`approximate`], reporting each id's fate to `observe`: the number of
/// valid votes that ranked it, and `Some(rank)` with the trimmed mean if it
/// survived the `N − t` vote threshold, `None` if it was discarded.
pub fn approximate_observed(
    my_ranks: &RankVector,
    accepted: &BTreeSet<OriginalId>,
    valid_votes: &[RankVector],
    n: usize,
    t: usize,
    mut observe: impl FnMut(OriginalId, usize, Option<Rank>),
) -> (RankVector, BTreeSet<OriginalId>) {
    // Bucket every vote's entries onto the accepted ids in one sorted merge
    // per vote (both sides iterate in ascending id order), instead of one
    // B-tree probe per (id, vote) pair.
    let accepted_ids: Vec<OriginalId> = accepted.iter().copied().collect();
    let mut buckets: Vec<Vec<Rank>> =
        vec![Vec::with_capacity(valid_votes.len()); accepted_ids.len()];
    for vote in valid_votes {
        let mut idx = 0usize;
        for (id, rank) in vote.iter() {
            while idx < accepted_ids.len() && accepted_ids[idx] < id {
                idx += 1;
            }
            if idx == accepted_ids.len() {
                break;
            }
            if accepted_ids[idx] == id {
                buckets[idx].push(rank);
            }
        }
    }
    let mut new_ranks = RankVector::new();
    let mut new_accepted = BTreeSet::new();
    for (id, bucket) in accepted_ids.into_iter().zip(buckets) {
        let raw_votes = bucket.len();
        if raw_votes < n - t {
            observe(id, raw_votes, None);
            continue; // discard this id (Algorithm 3, line 08)
        }
        let own = my_ranks
            .get(id)
            .expect("correct process must rank every accepted id");
        let mut votes = OrderedMultiset::from_vec(bucket);
        votes.fill_to(n, own);
        let rank = reduce(&votes, t);
        observe(id, raw_votes, Some(rank));
        new_ranks.insert(id, rank);
        new_accepted.insert(id);
    }
    (new_ranks, new_accepted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u64]) -> BTreeSet<OriginalId> {
        raw.iter().map(|&x| OriginalId::new(x)).collect()
    }

    fn vector(pairs: &[(u64, f64)]) -> RankVector {
        pairs
            .iter()
            .map(|&(id, r)| (OriginalId::new(id), Rank::new(r)))
            .collect()
    }

    #[test]
    fn from_accepted_assigns_stretched_positions() {
        let delta = 1.0 + 1.0 / 39.0;
        let ranks = RankVector::from_accepted(&ids(&[100, 7, 42]), delta);
        assert_eq!(ranks.get(OriginalId::new(7)), Some(Rank::new(delta)));
        assert_eq!(ranks.get(OriginalId::new(42)), Some(Rank::new(2.0 * delta)));
        assert_eq!(
            ranks.get(OriginalId::new(100)),
            Some(Rank::new(3.0 * delta))
        );
        assert_eq!(ranks.len(), 3);
    }

    #[test]
    fn own_initial_ranks_are_always_valid() {
        // Lemma IV.4 base case: ranks built by from_accepted pass isValid
        // against any subset of the accepted set.
        let delta = 1.0 + 1.0 / 33.0;
        let accepted = ids(&[1, 5, 9, 12, 30]);
        let ranks = RankVector::from_accepted(&accepted, delta);
        assert!(ranks.is_valid(&accepted, delta));
        assert!(ranks.is_valid(&ids(&[1, 9, 30]), delta));
        assert!(ranks.is_valid(&BTreeSet::new(), delta));
    }

    #[test]
    fn is_valid_rejects_missing_timely_id() {
        let ranks = vector(&[(1, 1.0), (3, 2.5)]);
        assert!(!ranks.is_valid(&ids(&[1, 2, 3]), 1.0));
    }

    #[test]
    fn is_valid_rejects_insufficient_spacing() {
        let ranks = vector(&[(1, 1.0), (2, 1.5)]);
        assert!(!ranks.is_valid(&ids(&[1, 2]), 1.0));
        // And accepts exact spacing.
        let ok = vector(&[(1, 1.0), (2, 2.0)]);
        assert!(ok.is_valid(&ids(&[1, 2]), 1.0));
    }

    #[test]
    fn check_valid_names_the_violated_constraint() {
        let ranks = vector(&[(1, 1.0), (3, 2.5)]);
        assert_eq!(
            ranks.check_valid(&ids(&[1, 2, 3]), 1.0),
            Err(ValidityViolation::MissingTimelyId {
                id: OriginalId::new(2)
            })
        );
        let tight = vector(&[(1, 1.0), (2, 1.5)]);
        match tight.check_valid(&ids(&[1, 2]), 1.0) {
            Err(ValidityViolation::InsufficientSpacing {
                prev,
                prev_rank,
                id,
                rank,
                spacing,
            }) => {
                assert_eq!(prev, OriginalId::new(1));
                assert_eq!(prev_rank, Rank::new(1.0));
                assert_eq!(id, OriginalId::new(2));
                assert_eq!(rank, Rank::new(1.5));
                assert_eq!(spacing, 1.0);
            }
            other => panic!("expected spacing violation, got {other:?}"),
        }
        assert_eq!(tight.check_valid(&ids(&[1]), 1.0), Ok(()));
    }

    #[test]
    fn approximate_observed_reports_vote_counts_and_fates() {
        let (n, t) = (4usize, 1usize);
        let accepted = ids(&[1, 2]);
        let mine = vector(&[(1, 1.0), (2, 2.0)]);
        let votes = vec![
            vector(&[(1, 1.0), (2, 2.0)]),
            vector(&[(1, 1.1), (2, 2.1)]),
            vector(&[(1, 0.9)]),
            vector(&[(1, 1.0)]),
        ];
        let mut seen = Vec::new();
        let (_, new_accepted) =
            approximate_observed(&mine, &accepted, &votes, n, t, |id, count, rank| {
                seen.push((id.raw(), count, rank.is_some()));
            });
        assert_eq!(seen, vec![(1, 4, true), (2, 2, false)]);
        assert_eq!(new_accepted.len(), 1);
    }

    #[test]
    fn is_valid_rejects_inverted_order() {
        // Larger id with smaller rank: spacing is negative.
        let ranks = vector(&[(1, 5.0), (2, 1.0)]);
        assert!(!ranks.is_valid(&ids(&[1, 2]), 1.0));
    }

    #[test]
    fn is_valid_checks_containment_even_for_singleton_timely() {
        // Stricter than the paper's pair-only loop, harmless for correct
        // senders (their votes rank the whole accepted ⊇ timely set).
        let ranks = vector(&[(1, 1.0)]);
        assert!(ranks.is_valid(&ids(&[1]), 1.0));
        assert!(!ranks.is_valid(&ids(&[2]), 1.0));
    }

    #[test]
    fn from_wire_rejects_duplicates() {
        let id = OriginalId::new(4);
        let wire = vec![(id, Rank::new(1.0)), (id, Rank::new(2.0))];
        assert!(RankVector::from_wire(&wire).is_none());
        let ok = vec![(id, Rank::new(1.0)), (OriginalId::new(5), Rank::new(2.0))];
        assert_eq!(RankVector::from_wire(&ok).unwrap().len(), 2);
    }

    #[test]
    fn wire_roundtrip_preserves_order() {
        let v = vector(&[(9, 3.0), (1, 1.0), (5, 2.0)]);
        let wire = v.to_wire();
        assert!(wire.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(RankVector::from_wire(&wire).unwrap(), v);
    }

    #[test]
    fn approximate_unanimous_votes_are_fixed_point() {
        let (n, t) = (4usize, 1usize);
        let accepted = ids(&[1, 2, 3, 4]);
        let mine = RankVector::from_accepted(&accepted, 1.01);
        let votes = vec![mine.clone(), mine.clone(), mine.clone(), mine.clone()];
        let (new_ranks, new_accepted) = approximate(&mine, &accepted, &votes, n, t);
        assert_eq!(new_accepted, accepted);
        for (id, rank) in new_ranks.iter() {
            assert!(rank.distance(mine.get(id).unwrap()) < 1e-12);
        }
    }

    #[test]
    fn approximate_drops_ids_below_vote_threshold() {
        let (n, t) = (4usize, 1usize);
        let accepted = ids(&[1, 2]);
        let mine = vector(&[(1, 1.0), (2, 2.0)]);
        // Only 2 votes rank id 2 (need N−t = 3).
        let votes = vec![
            vector(&[(1, 1.0), (2, 2.0)]),
            vector(&[(1, 1.1), (2, 2.1)]),
            vector(&[(1, 0.9)]),
            vector(&[(1, 1.0)]),
        ];
        let (new_ranks, new_accepted) = approximate(&mine, &accepted, &votes, n, t);
        assert!(new_accepted.contains(&OriginalId::new(1)));
        assert!(!new_accepted.contains(&OriginalId::new(2)));
        assert!(!new_ranks.contains(OriginalId::new(2)));
    }

    #[test]
    fn approximate_outputs_stay_in_correct_range() {
        let (n, t) = (4usize, 1usize);
        let accepted = ids(&[7]);
        let mine = vector(&[(7, 5.0)]);
        // Three correct-ish votes in [4.9, 5.1], one Byzantine outlier.
        let votes = vec![
            vector(&[(7, 4.9)]),
            vector(&[(7, 5.0)]),
            vector(&[(7, 5.1)]),
            vector(&[(7, 1000.0)]),
        ];
        let (new_ranks, _) = approximate(&mine, &accepted, &votes, n, t);
        let out = new_ranks.get(OriginalId::new(7)).unwrap();
        assert!(out >= Rank::new(4.9) && out <= Rank::new(5.1), "{out}");
    }

    #[test]
    fn approximate_preserves_delta_spacing_between_timely_ids() {
        // Lemma A.3: if all valid votes space two ids by ≥ δ, the averages
        // stay spaced by ≥ δ.
        let (n, t) = (4usize, 1usize);
        let delta = 1.0;
        let accepted = ids(&[1, 2]);
        let mine = vector(&[(1, 1.0), (2, 2.5)]);
        let votes = vec![
            vector(&[(1, 1.0), (2, 2.5)]),
            vector(&[(1, 1.4), (2, 2.4)]),
            vector(&[(1, 0.8), (2, 1.9)]),
            vector(&[(1, 1.2), (2, 2.2)]),
        ];
        for v in &votes {
            assert!(v.is_valid(&accepted, delta));
        }
        let (new_ranks, _) = approximate(&mine, &accepted, &votes, n, t);
        let a = new_ranks.get(OriginalId::new(1)).unwrap();
        let b = new_ranks.get(OriginalId::new(2)).unwrap();
        assert!(a.spaced_at_least(b, delta), "spacing violated: {a} vs {b}");
    }
}
