//! Invariant probes: per-process observations the experiments aggregate.
//!
//! The lemma-validation experiment (T4) and the convergence figure (F1) need
//! to see *inside* correct processes: their `timely`/`accepted` sets and the
//! evolution of their rank vectors per voting step. Correct actors write
//! snapshots into a shared, simulator-thread-local sink
//! ([`SharedProcessProbe`]); the runner aggregates the sinks into
//! [`Alg1Probe`] / [`TwoStepProbe`] after the run.

use crate::ranks::RankVector;
use opr_types::{NewName, OriginalId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// One correct process's view at the end of a step of Algorithm 1.
#[derive(Clone, Debug, PartialEq)]
pub struct VotingSnapshot {
    /// The communication step this snapshot was taken after (4 = end of id
    /// selection, 5.. = voting steps).
    pub step: u32,
    /// The process's rank vector.
    pub ranks: RankVector,
    /// The process's `timely` set (constant after step 4).
    pub timely: BTreeSet<OriginalId>,
    /// The process's `accepted` set (may shrink during voting).
    pub accepted: BTreeSet<OriginalId>,
}

/// Sink one correct Algorithm 1 process writes into.
#[derive(Clone, Debug, Default)]
pub struct ProcessProbe {
    /// Snapshots, in step order.
    pub snapshots: Vec<VotingSnapshot>,
    /// Votes rejected by `isValid` (or malformed) at this process.
    pub rejected_votes: u64,
    /// The communication step the process produced its output at (differs
    /// from the schedule end only under the early-output extension).
    pub decided_at_step: Option<u32>,
}

/// Shared handle to a [`ProcessProbe`]. `Arc<Mutex<…>>` so actors stay
/// `Send` and probes work on the threaded substrate; on the sim backend the
/// lock is uncontended and effectively free.
pub type SharedProcessProbe = Arc<Mutex<ProcessProbe>>;

/// Creates a fresh shared probe.
pub fn shared_probe() -> SharedProcessProbe {
    Arc::new(Mutex::new(ProcessProbe::default()))
}

/// Aggregated observations of all correct processes in one Algorithm 1 run.
#[derive(Clone, Debug, Default)]
pub struct Alg1Probe {
    /// One entry per correct process, in the order their ids were supplied.
    pub processes: Vec<ProcessProbe>,
}

impl Alg1Probe {
    /// Sizes of the final `accepted` sets, one per correct process.
    pub fn accepted_sizes(&self) -> Vec<usize> {
        self.processes
            .iter()
            .filter_map(|p| p.snapshots.last().map(|s| s.accepted.len()))
            .collect()
    }

    /// Sizes of the `timely` sets (taken at the earliest snapshot).
    pub fn timely_sizes(&self) -> Vec<usize> {
        self.processes
            .iter()
            .filter_map(|p| p.snapshots.first().map(|s| s.timely.len()))
            .collect()
    }

    /// Lemma IV.1 cross-check: every id timely at *some* correct process is
    /// accepted at *every* correct process (checked on the post-id-selection
    /// snapshots). Returns the number of violating (id, process) pairs.
    pub fn containment_violations(&self) -> usize {
        let firsts: Vec<&VotingSnapshot> = self
            .processes
            .iter()
            .filter_map(|p| p.snapshots.first())
            .collect();
        let timely_union: BTreeSet<OriginalId> = firsts
            .iter()
            .flat_map(|s| s.timely.iter().copied())
            .collect();
        firsts
            .iter()
            .map(|s| timely_union.difference(&s.accepted).count())
            .sum()
    }

    /// For each voting step, the largest cross-process rank spread over the
    /// ids in the union of timely sets — the measured `Δ_r` series of
    /// Lemma IV.8 / experiment F1. Index 0 is the initial (post-step-4)
    /// spread `Δ₅`.
    pub fn spread_series(&self) -> Vec<f64> {
        let timely_union: BTreeSet<OriginalId> = self
            .processes
            .iter()
            .filter_map(|p| p.snapshots.first())
            .flat_map(|s| s.timely.iter().copied())
            .collect();
        let steps = self
            .processes
            .iter()
            .map(|p| p.snapshots.len())
            .min()
            .unwrap_or(0);
        (0..steps)
            .map(|k| {
                let mut max_spread: f64 = 0.0;
                for &id in &timely_union {
                    let ranks: Vec<f64> = self
                        .processes
                        .iter()
                        .filter_map(|p| p.snapshots[k].ranks.get(id))
                        .map(|r| r.value())
                        .collect();
                    if ranks.len() >= 2 {
                        let lo = ranks.iter().copied().fold(f64::INFINITY, f64::min);
                        let hi = ranks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        max_spread = max_spread.max(hi - lo);
                    }
                }
                max_spread
            })
            .collect()
    }

    /// Total `isValid` rejections across correct processes.
    pub fn total_rejected_votes(&self) -> u64 {
        self.processes.iter().map(|p| p.rejected_votes).sum()
    }

    /// The step each correct process decided at (schedule end unless the
    /// early-output extension fired earlier).
    pub fn decision_steps(&self) -> Vec<Option<u32>> {
        self.processes.iter().map(|p| p.decided_at_step).collect()
    }

    /// The latest decision step across correct processes, if all decided.
    pub fn last_decision_step(&self) -> Option<u32> {
        self.processes
            .iter()
            .map(|p| p.decided_at_step)
            .collect::<Option<Vec<u32>>>()
            .and_then(|steps| steps.into_iter().max())
    }
}

/// One correct process's view at the end of Algorithm 4.
#[derive(Clone, Debug, Default)]
pub struct TwoStepProcessProbe {
    /// The locally-estimated new names for every accepted id (the paper
    /// stores these "only for clarity of the proofs" — we store them for
    /// exactly that purpose: checking Lemmas VI.1 and VI.2).
    pub newid: BTreeMap<OriginalId, NewName>,
    /// The process's `timely` set.
    pub timely: BTreeSet<OriginalId>,
    /// Echo messages rejected by the validity check.
    pub rejected_echoes: u64,
}

/// Shared handle for a [`TwoStepProcessProbe`].
pub type SharedTwoStepProbe = Arc<Mutex<TwoStepProcessProbe>>;

/// Creates a fresh shared two-step probe.
pub fn shared_two_step_probe() -> SharedTwoStepProbe {
    Arc::new(Mutex::new(TwoStepProcessProbe::default()))
}

/// Aggregated observations of one Algorithm 4 run.
#[derive(Clone, Debug, Default)]
pub struct TwoStepProbe {
    /// One entry per correct process.
    pub processes: Vec<TwoStepProcessProbe>,
}

impl TwoStepProbe {
    /// The measured `Δ` of Lemma VI.1: the largest discrepancy between any
    /// two correct processes' estimates of the same *correct* id's new name.
    pub fn max_discrepancy(&self, correct_ids: &BTreeSet<OriginalId>) -> i64 {
        let mut max_delta = 0i64;
        for &id in correct_ids {
            let estimates: Vec<i64> = self
                .processes
                .iter()
                .filter_map(|p| p.newid.get(&id))
                .map(|n| n.raw())
                .collect();
            if let (Some(&lo), Some(&hi)) = (estimates.iter().min(), estimates.iter().max()) {
                max_delta = max_delta.max(hi - lo);
            }
        }
        max_delta
    }

    /// Lemma VI.2 check: within each correct process's table, consecutive
    /// correct ids are at least `N − t` apart. Returns the smallest observed
    /// gap (or `i64::MAX` when fewer than two correct ids exist).
    pub fn min_correct_gap(&self, correct_ids: &BTreeSet<OriginalId>) -> i64 {
        let mut min_gap = i64::MAX;
        for p in &self.processes {
            let names: Vec<i64> = correct_ids
                .iter()
                .filter_map(|id| p.newid.get(id))
                .map(|n| n.raw())
                .collect();
            for w in names.windows(2) {
                min_gap = min_gap.min(w[1] - w[0]);
            }
        }
        min_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_types::Rank;

    fn snapshot(
        step: u32,
        pairs: &[(u64, f64)],
        timely: &[u64],
        accepted: &[u64],
    ) -> VotingSnapshot {
        VotingSnapshot {
            step,
            ranks: pairs
                .iter()
                .map(|&(id, r)| (OriginalId::new(id), Rank::new(r)))
                .collect(),
            timely: timely.iter().map(|&x| OriginalId::new(x)).collect(),
            accepted: accepted.iter().map(|&x| OriginalId::new(x)).collect(),
        }
    }

    #[test]
    fn spread_series_tracks_max_over_timely_union() {
        let probe = Alg1Probe {
            processes: vec![
                ProcessProbe {
                    snapshots: vec![
                        snapshot(4, &[(1, 1.0), (2, 2.0)], &[1, 2], &[1, 2]),
                        snapshot(5, &[(1, 1.1), (2, 2.1)], &[1, 2], &[1, 2]),
                    ],
                    rejected_votes: 1,
                    decided_at_step: None,
                },
                ProcessProbe {
                    snapshots: vec![
                        snapshot(4, &[(1, 1.5), (2, 2.2)], &[1, 2], &[1, 2]),
                        snapshot(5, &[(1, 1.2), (2, 2.15)], &[1, 2], &[1, 2]),
                    ],
                    rejected_votes: 0,
                    decided_at_step: None,
                },
            ],
        };
        let series = probe.spread_series();
        assert_eq!(series.len(), 2);
        assert!((series[0] - 0.5).abs() < 1e-12);
        assert!((series[1] - 0.1).abs() < 1e-9);
        assert_eq!(probe.total_rejected_votes(), 1);
        assert_eq!(probe.accepted_sizes(), vec![2, 2]);
        assert_eq!(probe.timely_sizes(), vec![2, 2]);
        assert_eq!(probe.containment_violations(), 0);
    }

    #[test]
    fn containment_violation_detected() {
        let probe = Alg1Probe {
            processes: vec![
                ProcessProbe {
                    snapshots: vec![snapshot(4, &[], &[1, 9], &[1, 9])],
                    rejected_votes: 0,
                    decided_at_step: None,
                },
                ProcessProbe {
                    // Missing id 9 from accepted although it is timely at
                    // the other process.
                    snapshots: vec![snapshot(4, &[], &[1], &[1])],
                    rejected_votes: 0,
                    decided_at_step: None,
                },
            ],
        };
        assert_eq!(probe.containment_violations(), 1);
    }

    #[test]
    fn two_step_discrepancy_and_gap() {
        let mk = |pairs: &[(u64, i64)]| TwoStepProcessProbe {
            newid: pairs
                .iter()
                .map(|&(id, n)| (OriginalId::new(id), NewName::new(n)))
                .collect(),
            timely: BTreeSet::new(),
            rejected_echoes: 0,
        };
        let probe = TwoStepProbe {
            processes: vec![mk(&[(1, 10), (2, 20)]), mk(&[(1, 12), (2, 19)])],
        };
        let correct: BTreeSet<OriginalId> = [1u64, 2].iter().map(|&x| OriginalId::new(x)).collect();
        assert_eq!(probe.max_discrepancy(&correct), 2);
        assert_eq!(probe.min_correct_gap(&correct), 7);
    }

    #[test]
    fn empty_probes_are_benign() {
        let probe = Alg1Probe::default();
        assert!(probe.spread_series().is_empty());
        assert_eq!(probe.containment_violations(), 0);
        let ts = TwoStepProbe::default();
        assert_eq!(ts.max_discrepancy(&BTreeSet::new()), 0);
        assert_eq!(ts.min_correct_gap(&BTreeSet::new()), i64::MAX);
    }
}
