//! Algorithm 4: 2-step order-preserving renaming for `N > 2t² + t`.

use crate::messages::TwoStepMsg;
use crate::probe::SharedTwoStepProbe;
use opr_obs::{record_if, ProtocolEvent, SharedRecorder};
use opr_rbcast::{for_each_slot, IdInterner, IdSlotSet};
use opr_sim::{Actor, Inbox, Outbox};
use opr_types::{LinkId, NewName, OriginalId, Regime, Round, SystemConfig};
use std::collections::{BTreeMap, BTreeSet};

/// A correct process running Algorithm 4.
///
/// Step 1: broadcast own id; remember which id each link announced. Step 2:
/// broadcast the `timely` set as a `MultiEcho`; count validated echoes per
/// id; compute new names as cumulative offsets `min(counter, N − t)` over
/// the sorted accepted set.
///
/// The per-link validity check (`isValid`, Algorithm 4) bounds Byzantine
/// influence: an echo is counted only if (a) the sending link announced an
/// id in step 1, (b) the echo carries at most `N` ids, and (c) it shares at
/// least `N − t` ids with the receiver's own `timely` set.
#[derive(Clone, Debug)]
pub struct TwoStepRenaming {
    cfg: SystemConfig,
    my_id: OriginalId,
    clamp_offsets: bool,
    /// `linkid[lnk]` — the id announced on each link in step 1 (the paper's
    /// `linkid` array; `None` is the paper's `⊥`).
    link_id: BTreeMap<LinkId, OriginalId>,
    timely: BTreeSet<OriginalId>,
    /// `timely` as a slot bitset over [`TwoStepRenaming::interner`]: what
    /// step 2 broadcasts, and the word-AND side of the `isValid` overlap
    /// check.
    timely_set: IdSlotSet<OriginalId>,
    decided: Option<NewName>,
    probe: Option<SharedTwoStepProbe>,
    recorder: Option<SharedRecorder>,
}

impl TwoStepRenaming {
    /// Creates a correct process with original id `my_id`.
    ///
    /// # Errors
    ///
    /// Returns [`opr_types::ConfigError::RegimeViolated`] unless
    /// `N > 2t² + t`.
    pub fn new(cfg: SystemConfig, my_id: OriginalId) -> Result<Self, opr_types::ConfigError> {
        Self::with_clamp(cfg, my_id, true)
    }

    /// Like [`new`](Self::new) but with the `min(counter, N − t)` offset
    /// clamp made optional — ablation A2. The clamp is what stops Byzantine
    /// processes from skewing *correct* ids' offsets by echoing them to only
    /// some receivers (Lemma VI.2's discussion); disabling it lets the
    /// half-echo adversary break order preservation. Never disable outside
    /// experiments.
    ///
    /// # Errors
    ///
    /// Returns [`opr_types::ConfigError::RegimeViolated`] unless
    /// `N > 2t² + t`.
    pub fn with_clamp(
        cfg: SystemConfig,
        my_id: OriginalId,
        clamp_offsets: bool,
    ) -> Result<Self, opr_types::ConfigError> {
        cfg.require(Regime::TwoStep)?;
        let interner = IdInterner::new();
        Ok(TwoStepRenaming {
            cfg,
            my_id,
            clamp_offsets,
            link_id: BTreeMap::new(),
            timely: BTreeSet::new(),
            timely_set: IdSlotSet::new(&interner),
            decided: None,
            probe: None,
            recorder: None,
        })
    }

    /// Attaches a probe sink recording the final name table.
    pub fn attach_probe(&mut self, probe: SharedTwoStepProbe) {
        self.probe = Some(probe);
    }

    /// Rebases onto a shared per-run [`IdInterner`], so co-participants'
    /// `MultiEcho` bitsets arrive pre-interned and validate/count through
    /// word operations. Call before round 1 (the runner does); unshared
    /// processes interoperate bit-identically through the decode fallback.
    pub fn share_interner(&mut self, interner: IdInterner<OriginalId>) {
        self.timely_set = IdSlotSet::new(&interner);
    }

    /// The interner this process's echo bitsets are relative to.
    pub fn interner(&self) -> &IdInterner<OriginalId> {
        self.timely_set.interner()
    }

    /// Attaches a telemetry recorder capturing id announcements, echo
    /// validation verdicts and the name-offset table (see
    /// [`opr_obs::ProtocolEvent`]).
    pub fn attach_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = Some(recorder);
    }

    /// The process's original id.
    pub fn my_id(&self) -> OriginalId {
        self.my_id
    }

    /// The `isValid` check of Algorithm 4 for an incoming `MultiEcho`: the
    /// timely-overlap condition is a word-parallel AND + popcount against
    /// this process's own timely bitset.
    fn echo_is_valid(&self, link: LinkId, ids: &IdSlotSet<OriginalId>) -> bool {
        if !self.link_id.contains_key(&link) || ids.len() > self.cfg.n() {
            return false;
        }
        let words = ids.words_in(self.interner());
        let common: usize = words
            .iter()
            .zip(self.timely_set.words())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum();
        common >= self.cfg.quorum()
    }
}

impl Actor for TwoStepRenaming {
    type Msg = TwoStepMsg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<TwoStepMsg> {
        match round.number() {
            1 => Outbox::Broadcast(TwoStepMsg::Id(self.my_id)),
            2 => Outbox::Broadcast(TwoStepMsg::MultiEcho(self.timely_set.clone())),
            _ => Outbox::Silent,
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<TwoStepMsg>) {
        match round.number() {
            1 => {
                for (link, msg) in inbox.messages() {
                    if let TwoStepMsg::Id(id) = msg {
                        record_if(self.recorder.as_ref(), || ProtocolEvent::IdSeen {
                            step: 1,
                            link,
                            id: *id,
                        });
                        self.link_id.insert(link, *id);
                        self.timely.insert(*id);
                        self.timely_set.insert(id);
                    }
                }
            }
            2 => {
                // Valid echoes bump flat per-slot counters via word walks;
                // ids only decode (and sort) once, for the name table.
                let mut counts: Vec<u16> = Vec::new();
                let mut rejected = 0u64;
                for (link, msg) in inbox.messages() {
                    if let TwoStepMsg::MultiEcho(ids) = msg {
                        let valid = self.echo_is_valid(link, ids);
                        record_if(self.recorder.as_ref(), || ProtocolEvent::EchoCounted {
                            step: 2,
                            link,
                            ids: ids.len(),
                            valid,
                        });
                        if valid {
                            let words = ids.words_in(self.interner());
                            if counts.len() < words.len() * opr_rbcast::WORD_BITS {
                                counts.resize(words.len() * opr_rbcast::WORD_BITS, 0);
                            }
                            for_each_slot(&words, |slot| counts[slot] += 1);
                        } else {
                            rejected += 1;
                        }
                    }
                }
                // Compute new names: cumulative clamped offsets over the
                // sorted accepted set (Algorithm 4, lines 18–22).
                let interner = self.interner();
                let mut accepted: Vec<(OriginalId, usize)> = counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(slot, &c)| (interner.value_of(slot as u32), c as usize))
                    .collect();
                accepted.sort_by_key(|&(id, _)| id);
                let clamp = self.cfg.quorum();
                let mut accum: i64 = 0;
                let mut newid: BTreeMap<OriginalId, NewName> = BTreeMap::new();
                for &(id, raw) in &accepted {
                    let offset = if self.clamp_offsets {
                        raw.min(clamp) as i64
                    } else {
                        raw as i64
                    };
                    accum += offset;
                    record_if(self.recorder.as_ref(), || ProtocolEvent::NameOffset {
                        step: 2,
                        id,
                        echoes: raw,
                        clamped: offset as usize,
                        name: NewName::new(accum),
                    });
                    newid.insert(id, NewName::new(accum));
                }
                self.decided = newid.get(&self.my_id).copied();
                if let Some(name) = self.decided {
                    record_if(self.recorder.as_ref(), || ProtocolEvent::Decided {
                        step: 2,
                        name,
                    });
                }
                if let Some(probe) = &self.probe {
                    let mut p = probe.lock().unwrap();
                    p.newid = newid;
                    p.timely = self.timely.clone();
                    p.rejected_echoes = rejected;
                }
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<NewName> {
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::shared_two_step_probe;
    use opr_sim::{Network, Topology};
    use opr_types::RenamingOutcome;

    fn run_correct_only(cfg: SystemConfig, raw_ids: &[u64], seed: u64) -> RenamingOutcome {
        assert_eq!(raw_ids.len(), cfg.n());
        let actors: Vec<Box<dyn Actor<Msg = TwoStepMsg, Output = NewName>>> = raw_ids
            .iter()
            .map(|&x| {
                Box::new(TwoStepRenaming::new(cfg, OriginalId::new(x)).unwrap())
                    as Box<dyn Actor<Msg = TwoStepMsg, Output = NewName>>
            })
            .collect();
        let mut net = Network::new(actors, Topology::seeded(cfg.n(), seed));
        let report = net.run(2);
        assert!(report.completed, "2-step algorithm must decide in 2 rounds");
        RenamingOutcome::new(
            raw_ids
                .iter()
                .enumerate()
                .map(|(i, &x)| (OriginalId::new(x), net.output_of(i))),
        )
    }

    #[test]
    fn fault_free_names_are_multiples_of_n() {
        // With no faults every id is echoed exactly N times, clamped to
        // N − t; names are (N−t), 2(N−t), … in id order.
        let cfg = SystemConfig::new(4, 1).unwrap();
        let outcome = run_correct_only(cfg, &[40, 10, 30, 20], 1);
        assert!(outcome.verify(16).is_empty());
        assert_eq!(outcome.name_of(OriginalId::new(10)), Some(NewName::new(3)));
        assert_eq!(outcome.name_of(OriginalId::new(20)), Some(NewName::new(6)));
        assert_eq!(outcome.name_of(OriginalId::new(40)), Some(NewName::new(12)));
    }

    #[test]
    fn namespace_stays_within_n_squared() {
        let cfg = SystemConfig::new(11, 2).unwrap(); // 11 > 2t²+t = 10
        let ids: Vec<u64> = (1..=11).map(|i| i * 11).collect();
        let outcome = run_correct_only(cfg, &ids, 4);
        assert!(outcome.verify(121).is_empty());
        assert!(outcome.max_name().unwrap().raw() <= 121);
    }

    #[test]
    fn rejects_insufficient_resilience() {
        let cfg = SystemConfig::new(21, 3).unwrap(); // 21 ≤ 2·9+3
        assert!(TwoStepRenaming::new(cfg, OriginalId::new(1)).is_err());
    }

    #[test]
    fn probe_records_tables() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let probe = shared_two_step_probe();
        let mut first = TwoStepRenaming::new(cfg, OriginalId::new(5)).unwrap();
        first.attach_probe(probe.clone());
        let mut actors: Vec<Box<dyn Actor<Msg = TwoStepMsg, Output = NewName>>> =
            vec![Box::new(first)];
        for id in [6u64, 7, 8] {
            actors.push(Box::new(
                TwoStepRenaming::new(cfg, OriginalId::new(id)).unwrap(),
            ));
        }
        let mut net = Network::new(actors, Topology::seeded(4, 2));
        net.run(2);
        let p = probe.lock().unwrap();
        assert_eq!(p.newid.len(), 4);
        assert_eq!(p.timely.len(), 4);
        assert_eq!(p.rejected_echoes, 0);
    }

    #[test]
    fn recorder_captures_echo_counts_and_name_table() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let recorder = opr_obs::shared_recorder();
        let mut first = TwoStepRenaming::new(cfg, OriginalId::new(5)).unwrap();
        first.attach_recorder(recorder.clone());
        let mut actors: Vec<Box<dyn Actor<Msg = TwoStepMsg, Output = NewName>>> =
            vec![Box::new(first)];
        for id in [6u64, 7, 8] {
            actors.push(Box::new(
                TwoStepRenaming::new(cfg, OriginalId::new(id)).unwrap(),
            ));
        }
        let mut net = Network::new(actors, Topology::seeded(4, 2));
        assert!(net.run(2).completed);
        let events = recorder.lock().unwrap().clone().into_events();
        assert_eq!(events.iter().filter(|e| e.kind() == "id-seen").count(), 4);
        // All 4 echoes validated, 4 name-table rows, one decision.
        assert!(events.iter().all(|e| e.kind() != "echo-counted"
            || matches!(e, ProtocolEvent::EchoCounted { valid: true, .. })));
        assert_eq!(
            events.iter().filter(|e| e.kind() == "echo-counted").count(),
            4
        );
        assert_eq!(
            events.iter().filter(|e| e.kind() == "name-offset").count(),
            4
        );
        // Fault-free: every id echoed 4 times, clamped to N−t = 3.
        assert!(events.iter().any(|e| matches!(
            e,
            ProtocolEvent::NameOffset {
                echoes: 4,
                clamped: 3,
                ..
            }
        )));
        assert_eq!(events.iter().filter(|e| e.kind() == "decided").count(), 1);
    }

    #[test]
    fn echo_validity_rules() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let mut p = TwoStepRenaming::new(cfg, OriginalId::new(1)).unwrap();
        // Simulate step-1 state: links 1..=4 announced ids 1..=4.
        for l in 1..=4usize {
            p.link_id.insert(LinkId::new(l), OriginalId::new(l as u64));
            p.timely.insert(OriginalId::new(l as u64));
            p.timely_set.insert(&OriginalId::new(l as u64));
        }
        // Echoes arrive on a *foreign* interner, as from an unshared peer.
        let theirs = IdInterner::new();
        let set =
            |raw: &[u64]| IdSlotSet::from_values(&theirs, raw.iter().map(|&x| OriginalId::new(x)));
        let good = set(&[1, 2, 3, 4]);
        assert!(p.echo_is_valid(LinkId::new(1), &good));
        // Unknown link (announced nothing in step 1).
        let mut q = p.clone();
        q.link_id.remove(&LinkId::new(2));
        assert!(!q.echo_is_valid(LinkId::new(2), &good));
        // Oversized echo.
        let oversized = set(&[1, 2, 3, 4, 5]);
        assert!(!p.echo_is_valid(LinkId::new(1), &oversized));
        // Too little overlap with timely: needs ≥ N−t = 3 common ids.
        let disjoint = set(&[10, 11, 12, 13]);
        assert!(!p.echo_is_valid(LinkId::new(1), &disjoint));
        let two_common = set(&[1, 2, 10, 11]);
        assert!(!p.echo_is_valid(LinkId::new(1), &two_common));
        let three_common = set(&[1, 2, 3, 10]);
        assert!(p.echo_is_valid(LinkId::new(1), &three_common));
        // Same checks with a shared interner exercise the borrowed-word path.
        let mut s = TwoStepRenaming::new(cfg, OriginalId::new(1)).unwrap();
        s.share_interner(theirs.clone());
        for l in 1..=4usize {
            s.link_id.insert(LinkId::new(l), OriginalId::new(l as u64));
            s.timely_set.insert(&OriginalId::new(l as u64));
        }
        assert!(s.echo_is_valid(LinkId::new(1), &good));
        assert!(!s.echo_is_valid(LinkId::new(1), &two_common));
    }
}
