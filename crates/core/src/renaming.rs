//! Algorithm 1: order-preserving Byzantine renaming.

use crate::messages::Alg1Msg;
use crate::probe::{SharedProcessProbe, VotingSnapshot};
use crate::ranks::{approximate_observed, RankVector};
use opr_obs::{record_if, ProtocolEvent, SharedRecorder, ValidityViolation};
use opr_rbcast::{EchoReadyFlood, FloodObserver, IdInterner};
use opr_sim::{Actor, Inbox, Outbox};
use opr_types::{LinkId, NewName, OriginalId, Regime, Round, SystemConfig};
use std::collections::BTreeSet;

/// Maps flood threshold decisions onto recorder events (ids only — the
/// flood itself is value-generic and knows nothing about telemetry).
struct RecorderFloodObserver<'a> {
    recorder: Option<&'a SharedRecorder>,
}

impl FloodObserver<OriginalId> for RecorderFloodObserver<'_> {
    /// Without a recorder every callback is a no-op, so the flood can skip
    /// the slot→value decode that exists only to feed observers.
    fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    fn id_seen(&mut self, step: u32, link: LinkId, value: &OriginalId) {
        let id = *value;
        record_if(self.recorder, || ProtocolEvent::IdSeen { step, link, id });
    }

    fn echo_threshold(
        &mut self,
        step: u32,
        value: &OriginalId,
        echoes: usize,
        quorum: usize,
        kept: bool,
    ) {
        let id = *value;
        record_if(self.recorder, || ProtocolEvent::EchoThreshold {
            step,
            id,
            echoes,
            quorum,
            kept,
        });
    }

    fn ready_threshold(
        &mut self,
        step: u32,
        value: &OriginalId,
        readies: usize,
        quorum: usize,
        weak_quorum: usize,
        timely: bool,
        relayed: bool,
    ) {
        let id = *value;
        record_if(self.recorder, || ProtocolEvent::ReadyThreshold {
            step,
            id,
            readies,
            quorum,
            weak_quorum,
            timely,
            relayed,
        });
    }

    fn accept_threshold(
        &mut self,
        step: u32,
        value: &OriginalId,
        readies: usize,
        quorum: usize,
        accepted: bool,
    ) {
        let id = *value;
        record_if(self.recorder, || ProtocolEvent::AcceptThreshold {
            step,
            id,
            readies,
            quorum,
            accepted,
        });
    }
}

/// A correct process running Algorithm 1.
///
/// Steps 1–4 run the id-selection flood; steps 5 to
/// [`SystemConfig::total_steps`] run validated approximate-agreement voting;
/// at the final step the process decides `Round(ranks[my_id])`.
///
/// The `regime` selects the voting schedule:
/// [`Regime::LogTime`] (`3⌈log t⌉ + 3` voting steps, `N > 3t`) or
/// [`Regime::ConstantTime`] (4 voting steps, `N > t² + 2t`, strong
/// renaming). [`Alg1Tweaks`] exposes the knobs the margin and ablation
/// experiments turn.
#[derive(Clone, Debug)]
pub struct OrderPreservingRenaming {
    cfg: SystemConfig,
    my_id: OriginalId,
    total_steps: u32,
    delta: f64,
    tweaks: Alg1Tweaks,
    flood: EchoReadyFlood<OriginalId>,
    timely: BTreeSet<OriginalId>,
    accepted: BTreeSet<OriginalId>,
    ranks: RankVector,
    decided: Option<NewName>,
    probe: Option<SharedProcessProbe>,
    recorder: Option<SharedRecorder>,
}

/// Experimental knobs on Algorithm 1.
///
/// The defaults are the paper's algorithm; every deviation exists to power a
/// specific experiment:
///
/// * `extra_voting_steps` / `voting_steps_override` — margin studies and the
///   schedule-ablation experiment (A3): the paper's Lemma IV.9 constants are
///   loose at small `t`, and truncating the schedule shows where order
///   preservation actually starts failing.
/// * `disable_validation` — ablation A1: without the `isValid` filter
///   (Algorithm 2), Byzantine vote vectors with overlapping/inverted rank
///   intervals enter the approximation and order preservation collapses —
///   empirically demonstrating the paper's central design point.
/// * `early_output` — a safe early-deciding extension (in the spirit of
///   Alistarh et al. \[1\]): a process outputs as soon as one voting step
///   delivers *unanimous* valid votes equal to its own rank vector. At that
///   point at least `N − 2t ≥ t + 1` correct processes hold exactly this
///   vector, so every correct vote multiset for every id contains at least
///   `N − t` copies of the common value; the `t`-per-side trim removes every
///   divergent vote, making the common vector a fixed point at *every*
///   correct process — the eventual decision is already determined. The
///   process keeps broadcasting until the schedule ends (so it never starves
///   others of votes); only its *output* happens early.
/// * `delta_override` — ablation on the stretch factor δ.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Alg1Tweaks {
    /// Additional voting steps beyond the schedule.
    pub extra_voting_steps: u32,
    /// Replace the schedule's voting-step count entirely (before `extra` is
    /// added).
    pub voting_steps_override: Option<u32>,
    /// Skip the `isValid` vote filter (ablation A1). Breaks order
    /// preservation under the pair-squeeze adversary — never use outside
    /// experiments.
    pub disable_validation: bool,
    /// Output as soon as the decision is provably frozen (see above).
    pub early_output: bool,
    /// Replace the stretch factor `δ = 1 + 1/(3(N+t))`.
    pub delta_override: Option<f64>,
}

impl OrderPreservingRenaming {
    /// Creates a correct process with original id `my_id`.
    ///
    /// # Errors
    ///
    /// Returns [`opr_types::ConfigError::RegimeViolated`] if the
    /// configuration does not satisfy the regime's resilience precondition.
    ///
    /// # Panics
    ///
    /// Panics if `regime` is [`Regime::TwoStep`] — that is
    /// [`crate::TwoStepRenaming`]'s job.
    pub fn new(
        cfg: SystemConfig,
        regime: Regime,
        my_id: OriginalId,
    ) -> Result<Self, opr_types::ConfigError> {
        Self::with_extra_steps(cfg, regime, my_id, 0)
    }

    /// Like [`new`](Self::new) but runs `extra` additional voting steps —
    /// used by the experiments that study the convergence margin at regime
    /// boundaries (the paper's Lemma IV.9 / V.2 constants are loose for
    /// small `t`; see EXPERIMENTS.md).
    pub fn with_extra_steps(
        cfg: SystemConfig,
        regime: Regime,
        my_id: OriginalId,
        extra: u32,
    ) -> Result<Self, opr_types::ConfigError> {
        cfg.require(regime)?;
        Ok(Self::new_unchecked(
            cfg,
            regime,
            my_id,
            Alg1Tweaks {
                extra_voting_steps: extra,
                ..Alg1Tweaks::default()
            },
        ))
    }

    /// Full-control constructor with [`Alg1Tweaks`].
    ///
    /// # Errors
    ///
    /// Returns [`opr_types::ConfigError::RegimeViolated`] if the
    /// configuration does not satisfy the regime's resilience precondition.
    pub fn with_tweaks(
        cfg: SystemConfig,
        regime: Regime,
        my_id: OriginalId,
        tweaks: Alg1Tweaks,
    ) -> Result<Self, opr_types::ConfigError> {
        cfg.require(regime)?;
        Ok(Self::new_unchecked(cfg, regime, my_id, tweaks))
    }

    /// Like [`with_tweaks`](Self::with_tweaks) but skips the resilience
    /// precondition — used by the resilience-boundary experiment (T5) to
    /// observe *how* the algorithm fails when `N ≤ 3t`. Never use this in a
    /// deployment.
    pub fn new_unchecked(
        cfg: SystemConfig,
        regime: Regime,
        my_id: OriginalId,
        tweaks: Alg1Tweaks,
    ) -> Self {
        assert!(
            regime != Regime::TwoStep,
            "use TwoStepRenaming for the 2-step algorithm"
        );
        let voting = tweaks
            .voting_steps_override
            .unwrap_or_else(|| cfg.voting_steps(regime))
            + tweaks.extra_voting_steps;
        OrderPreservingRenaming {
            cfg,
            my_id,
            total_steps: 4 + voting,
            delta: tweaks.delta_override.unwrap_or_else(|| cfg.delta()),
            tweaks,
            flood: EchoReadyFlood::new(cfg.n(), cfg.t(), Some(my_id)),
            timely: BTreeSet::new(),
            accepted: BTreeSet::new(),
            ranks: RankVector::new(),
            decided: None,
            probe: None,
            recorder: None,
        }
    }

    /// Attaches a probe sink recording per-step snapshots.
    pub fn attach_probe(&mut self, probe: SharedProcessProbe) {
        self.probe = Some(probe);
    }

    /// Rebases the id-selection flood onto a shared per-run [`IdInterner`],
    /// so co-participants' `Echo`/`Ready` bitsets arrive pre-interned and
    /// accumulate without decoding. Call before round 1 (the runner does,
    /// right after construction); sharing is purely a fast path — unshared
    /// processes interoperate bit-identically.
    pub fn share_interner(&mut self, interner: IdInterner<OriginalId>) {
        self.flood =
            EchoReadyFlood::with_interner(self.cfg.n(), self.cfg.t(), Some(self.my_id), interner);
    }

    /// Attaches a telemetry recorder capturing every decision point (see
    /// [`opr_obs::ProtocolEvent`]). Unattached processes pay one branch per
    /// decision and zero allocations.
    pub fn attach_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = Some(recorder);
    }

    /// The process's original id.
    pub fn my_id(&self) -> OriginalId {
        self.my_id
    }

    /// Total communication steps this process will run.
    pub fn total_steps(&self) -> u32 {
        self.total_steps
    }

    fn record_snapshot(&self, step: u32) {
        if let Some(probe) = &self.probe {
            probe.lock().unwrap().snapshots.push(VotingSnapshot {
                step,
                ranks: self.ranks.clone(),
                timely: self.timely.clone(),
                accepted: self.accepted.clone(),
            });
        }
    }
}

impl Actor for OrderPreservingRenaming {
    type Msg = Alg1Msg;
    type Output = NewName;

    fn send(&mut self, round: Round) -> Outbox<Alg1Msg> {
        let r = round.number();
        if r <= 4 {
            match self.flood.send(r) {
                Some(msg) => Outbox::Broadcast(Alg1Msg::Flood(msg)),
                None => Outbox::Silent,
            }
        } else if r <= self.total_steps {
            record_if(self.recorder.as_ref(), || ProtocolEvent::VoteVectorSent {
                step: r,
                ids: self.ranks.iter().map(|(id, _)| id).collect(),
            });
            Outbox::Broadcast(Alg1Msg::Votes(self.ranks.to_wire()))
        } else {
            Outbox::Silent
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<Alg1Msg>) {
        let r = round.number();
        if r <= 4 {
            // Id-selection phase: forward flood messages, ignore anything
            // else (a Byzantine process may send Votes early; they are
            // meaningless before step 5). The flood borrows straight out of
            // the shared broadcast payloads — no per-receiver rebuild.
            let mut observer = RecorderFloodObserver {
                recorder: self.recorder.as_ref(),
            };
            self.flood.deliver_observed(
                r,
                inbox.messages().filter_map(|(link, msg)| match msg {
                    Alg1Msg::Flood(f) => Some((link, f)),
                    Alg1Msg::Votes(_) => None,
                }),
                &mut observer,
            );
            if r == 4 {
                let result = self
                    .flood
                    .result()
                    .expect("flood finishes at step 4")
                    .clone();
                self.timely = result.timely;
                self.accepted = result.accepted;
                self.ranks = RankVector::from_accepted(&self.accepted, self.delta);
                self.record_snapshot(4);
            }
        } else if r <= self.total_steps {
            // Voting step: validate, approximate.
            let spacing = self.delta;
            let mut valid_votes: Vec<RankVector> = Vec::new();
            let mut rejected = 0u64;
            for (link, msg) in inbox.messages() {
                if let Alg1Msg::Votes(wire) = msg {
                    let verdict = match RankVector::from_wire(wire) {
                        Some(rv) if self.tweaks.disable_validation => Ok(rv),
                        Some(rv) => rv
                            .check_valid(&self.timely, spacing)
                            .map(|()| rv)
                            .map_err(Some),
                        None => Err(None),
                    };
                    match verdict {
                        Ok(rv) => {
                            record_if(self.recorder.as_ref(), || ProtocolEvent::VoteAccepted {
                                step: r,
                                link,
                                entries: rv.len(),
                            });
                            valid_votes.push(rv);
                        }
                        Err(violation) => {
                            record_if(self.recorder.as_ref(), || ProtocolEvent::VoteRejected {
                                step: r,
                                link,
                                violation: violation.unwrap_or(ValidityViolation::MalformedVector),
                            });
                            rejected += 1;
                        }
                    }
                }
            }
            if let Some(probe) = &self.probe {
                probe.lock().unwrap().rejected_votes += rejected;
            }
            // Early-output rule (see Alg1Tweaks::early_output): a unanimous
            // valid quorum equal to our own vector freezes the decision at
            // every correct process.
            let frozen = self.tweaks.early_output
                && self.decided.is_none()
                && valid_votes.len() >= self.cfg.quorum()
                && valid_votes.iter().all(|v| *v == self.ranks);
            let recorder = self.recorder.as_ref();
            let needed = self.cfg.quorum();
            let (new_ranks, new_accepted) = approximate_observed(
                &self.ranks,
                &self.accepted,
                &valid_votes,
                self.cfg.n(),
                self.cfg.t(),
                |id, votes, rank| match rank {
                    Some(rank) => record_if(recorder, || ProtocolEvent::TrimmedMean {
                        step: r,
                        id,
                        votes,
                        rank,
                    }),
                    None => record_if(recorder, || ProtocolEvent::IdDropped {
                        step: r,
                        id,
                        votes,
                        needed,
                    }),
                },
            );
            self.ranks = new_ranks;
            self.accepted = new_accepted;
            self.record_snapshot(r);
            if frozen || r == self.total_steps {
                // Corollary IV.5 guarantees the own id survives voting in
                // any legal regime; outside the regime (T5 boundary runs)
                // it can be lost, which surfaces as a termination failure.
                if self.decided.is_none() {
                    self.decided = self.ranks.get(self.my_id).map(|rank| rank.round_to_name());
                    if let Some(name) = self.decided {
                        record_if(self.recorder.as_ref(), || ProtocolEvent::Decided {
                            step: r,
                            name,
                        });
                        if let Some(probe) = &self.probe {
                            probe.lock().unwrap().decided_at_step = Some(r);
                        }
                    }
                }
            }
        }
    }

    fn output(&self) -> Option<NewName> {
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::shared_probe;
    use opr_sim::{Network, Topology};
    use opr_types::RenamingOutcome;

    fn run_correct_only(
        cfg: SystemConfig,
        regime: Regime,
        raw_ids: &[u64],
        seed: u64,
    ) -> RenamingOutcome {
        assert_eq!(raw_ids.len(), cfg.n());
        let actors: Vec<Box<dyn Actor<Msg = Alg1Msg, Output = NewName>>> = raw_ids
            .iter()
            .map(|&x| {
                Box::new(OrderPreservingRenaming::new(cfg, regime, OriginalId::new(x)).unwrap())
                    as Box<dyn Actor<Msg = Alg1Msg, Output = NewName>>
            })
            .collect();
        let mut net = Network::new(actors, Topology::seeded(cfg.n(), seed));
        let report = net.run(cfg.total_steps(regime));
        assert!(report.completed, "must decide at the final step");
        assert_eq!(report.rounds_executed, cfg.total_steps(regime));
        RenamingOutcome::new(
            raw_ids
                .iter()
                .enumerate()
                .map(|(i, &x)| (OriginalId::new(x), net.output_of(i))),
        )
    }

    #[test]
    fn fault_free_run_renames_cleanly() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let outcome = run_correct_only(cfg, Regime::LogTime, &[40, 10, 30, 20], 3);
        assert!(outcome
            .verify(cfg.namespace_bound(Regime::LogTime))
            .is_empty());
        // With no faults, everyone sees the same 4 ids: names are the exact
        // ranks 1..4.
        assert_eq!(outcome.name_of(OriginalId::new(10)), Some(NewName::new(1)));
        assert_eq!(outcome.name_of(OriginalId::new(40)), Some(NewName::new(4)));
    }

    #[test]
    fn constant_time_regime_runs_eight_steps() {
        let cfg = SystemConfig::new(16, 3).unwrap();
        let ids: Vec<u64> = (0..16).map(|i| 1000 + 7 * i).collect();
        let outcome = run_correct_only(cfg, Regime::ConstantTime, &ids, 5);
        // Strong renaming: namespace is exactly N.
        assert!(outcome.verify(16).is_empty());
    }

    #[test]
    fn log_time_step_count_matches_formula() {
        for (n, t) in [(4usize, 1usize), (7, 2), (13, 4)] {
            let cfg = SystemConfig::new(n, t).unwrap();
            let p = OrderPreservingRenaming::new(cfg, Regime::LogTime, OriginalId::new(1)).unwrap();
            assert_eq!(
                p.total_steps(),
                3 * opr_types::math::ceil_log2(t) + 7,
                "N={n} t={t}"
            );
        }
    }

    #[test]
    fn probe_records_all_voting_steps() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let probe = shared_probe();
        let mut p = OrderPreservingRenaming::new(cfg, Regime::LogTime, OriginalId::new(5)).unwrap();
        p.attach_probe(probe.clone());
        let actors: Vec<Box<dyn Actor<Msg = Alg1Msg, Output = NewName>>> = vec![
            Box::new(p),
            Box::new(
                OrderPreservingRenaming::new(cfg, Regime::LogTime, OriginalId::new(6)).unwrap(),
            ),
            Box::new(
                OrderPreservingRenaming::new(cfg, Regime::LogTime, OriginalId::new(7)).unwrap(),
            ),
            Box::new(
                OrderPreservingRenaming::new(cfg, Regime::LogTime, OriginalId::new(8)).unwrap(),
            ),
        ];
        let mut net = Network::new(actors, Topology::seeded(4, 9));
        net.run(7);
        // Snapshot at step 4 + one per voting step (5, 6, 7).
        assert_eq!(probe.lock().unwrap().snapshots.len(), 4);
        assert_eq!(probe.lock().unwrap().snapshots[0].step, 4);
        assert_eq!(probe.lock().unwrap().rejected_votes, 0);
    }

    #[test]
    fn recorder_captures_the_decision_waterfall() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let recorder = opr_obs::shared_recorder();
        let mut p = OrderPreservingRenaming::new(cfg, Regime::LogTime, OriginalId::new(5)).unwrap();
        p.attach_recorder(recorder.clone());
        let mut actors: Vec<Box<dyn Actor<Msg = Alg1Msg, Output = NewName>>> = vec![Box::new(p)];
        for id in [6u64, 7, 8] {
            actors.push(Box::new(
                OrderPreservingRenaming::new(cfg, Regime::LogTime, OriginalId::new(id)).unwrap(),
            ));
        }
        let mut net = Network::new(actors, Topology::seeded(4, 9));
        assert!(net.run(7).completed);
        let events = recorder.lock().unwrap().clone().into_events();
        let kinds: BTreeSet<&str> = events.iter().map(|e| e.kind()).collect();
        // Flood decisions, vote validation, per-id means and the decision
        // all show up; a fault-free run rejects and drops nothing.
        for expected in [
            "id-seen",
            "echo-threshold",
            "ready-threshold",
            "accept-threshold",
            "vote-vector",
            "vote-accepted",
            "trimmed-mean",
            "decided",
        ] {
            assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
        }
        assert!(!kinds.contains("vote-rejected"));
        assert!(!kinds.contains("id-dropped"));
        // 4 announcements seen, one Decided event at the final step.
        assert_eq!(events.iter().filter(|e| e.kind() == "id-seen").count(), 4);
        let decided: Vec<_> = events.iter().filter(|e| e.kind() == "decided").collect();
        assert_eq!(decided.len(), 1);
        assert_eq!(decided[0].step(), 7);
        // Threshold events carry the real quorum arithmetic: N−t = 3.
        assert!(events.iter().any(|e| matches!(
            e,
            opr_obs::ProtocolEvent::EchoThreshold {
                echoes: 4,
                quorum: 3,
                kept: true,
                ..
            }
        )));
    }

    #[test]
    fn rejects_wrong_regime_for_config() {
        let cfg = SystemConfig::new(10, 3).unwrap(); // 10 ≤ 3²+2·3
        assert!(
            OrderPreservingRenaming::new(cfg, Regime::ConstantTime, OriginalId::new(1)).is_err()
        );
    }

    #[test]
    #[should_panic(expected = "TwoStepRenaming")]
    fn rejects_two_step_regime() {
        let cfg = SystemConfig::new(22, 3).unwrap();
        let _ = OrderPreservingRenaming::new(cfg, Regime::TwoStep, OriginalId::new(1));
    }

    #[test]
    fn zero_fault_configuration_works() {
        let cfg = SystemConfig::new(3, 0).unwrap();
        let outcome = run_correct_only(cfg, Regime::LogTime, &[9, 1, 5], 2);
        assert!(outcome.verify(3).is_empty());
    }
}
