#![warn(missing_docs)]
//! The paper's contribution: order-preserving renaming algorithms for
//! synchronous systems with Byzantine faults.
//!
//! # Algorithms
//!
//! * [`OrderPreservingRenaming`] — **Algorithm 1**: a 4-step id-selection
//!   phase (via [`opr_rbcast::EchoReadyFlood`]) followed by per-id validated
//!   Byzantine approximate agreement. Two voting schedules, selected by
//!   [`Regime`](opr_types::Regime):
//!   - `LogTime` (`N > 3t`): `3⌈log₂ t⌉ + 3` voting steps, namespace
//!     `N + t − 1`, total `3⌈log t⌉ + 7` steps;
//!   - `ConstantTime` (`N > t² + 2t`): 4 voting steps, *strong* namespace
//!     `N`, total 8 steps (Theorem V.3).
//! * [`TwoStepRenaming`] — **Algorithm 4** (`N > 2t² + t`): two
//!   communication steps, echo counting with clamped offsets, namespace
//!   `N²`.
//!
//! # Key mechanisms
//!
//! * [`ranks::RankVector::is_valid`] — the `isValid` filter (Algorithm 2)
//!   that makes approximate agreement order-preserving: a received vote
//!   vector is accepted only if it ranks every locally-timely id, δ-spaced
//!   in id order.
//! * [`ranks::approximate`] — one voting step (Algorithm 3): per-id vote
//!   multisets, fill-to-`N` with own votes, trim `t` per side, `select_t`,
//!   average.
//!
//! # Running a protocol
//!
//! The [`runner`] module executes a full system (correct actors plus
//! caller-supplied Byzantine actors) on the simulator and returns the
//! [`RenamingOutcome`](opr_types::RenamingOutcome), the network metrics and
//! the invariant probes the experiments consume. Most users go through the
//! higher-level `opr-workload` harness instead.
//!
//! ```
//! use opr_core::runner::{run_alg1, Alg1Options};
//! use opr_types::{OriginalId, Regime, SystemConfig};
//!
//! let cfg = SystemConfig::new(4, 1)?;
//! let ids: Vec<OriginalId> = [30u64, 10, 20].iter().map(|&x| x.into()).collect();
//! // One silent Byzantine process (factory returns None ⇒ silent).
//! let result = run_alg1(cfg, Regime::LogTime, &ids, 1, |_env| None, Alg1Options::default())?;
//! let m = cfg.namespace_bound(Regime::LogTime);
//! assert!(result.outcome.verify(m).is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod messages;
pub mod probe;
pub mod ranks;
pub mod renaming;
pub mod runner;
pub mod two_step;

pub use messages::{Alg1Msg, TwoStepMsg};
pub use probe::{Alg1Probe, TwoStepProbe, VotingSnapshot};
pub use ranks::RankVector;
pub use renaming::{Alg1Tweaks, OrderPreservingRenaming};
pub use runner::{
    fault_placement, run_alg1, run_alg1_observed, run_two_step, run_two_step_clamped,
    run_two_step_observed, run_two_step_with, AdversaryEnv, Alg1Options, ObservedRun, RunResult,
    TwoStepOptions,
};
pub use two_step::TwoStepRenaming;
